"""Benchmarks A1–A3 — the ablation studies of DESIGN.md §4.

A1: without §III's atomicity guarantee, torn values corrupt SSSP.
A2: the propagation delay ``d`` degrades intra-iteration reuse
    (stale reads rise; iterations drift toward the BSP count).
A3: dispatch policy (Fig. 1 block vs round-robin) changes the conflict
    mix but not correctness.
"""

from repro.experiments import run_delay_sweep, run_dispatch_study, run_torn_study

SCALE = 9


def test_a1_torn_values_corrupt_sssp(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_torn_study(scale=SCALE, seeds=(0, 1, 2, 3, 4)),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_a1_torn", result.render())
    corrupted = [row for row in result.rows if row["corrupted"]]
    assert corrupted, "torn values must corrupt at least one run"


def test_a2_delay_sweep(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_delay_sweep(scale=SCALE, delays=(1, 4, 16, 64), seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_a2_delay", result.render())
    rows = result.rows
    # stale reads rise monotonically with d
    stale = [row["mean stale reads"] for row in rows]
    assert stale == sorted(stale)
    assert stale[-1] > stale[0]
    # iteration counts never decrease as reuse degrades
    iters = [row["mean iterations"] for row in rows]
    assert iters[-1] >= iters[0]


def test_a3_dispatch_policy(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_dispatch_study(scale=SCALE, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    record_table("ablation_a3_dispatch", result.render())
    assert len(result.rows) == 4
    # every configuration converged (driver raises otherwise); conflict
    # mixes differ between the two policies on at least one algorithm
    by_algo = {}
    for row in result.rows:
        by_algo.setdefault(row["algorithm"], []).append(row["mean conflicts"])
    assert any(len(set(v)) > 1 for v in by_algo.values())
