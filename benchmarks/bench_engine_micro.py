"""Micro-benchmarks of the framework's hot paths (pytest-benchmark).

These track the wall-clock cost of the substrate itself — CSR
construction, dispatch planning, the racy store, and one engine
iteration per algorithm — so substrate regressions are visible
independently of the virtual-time experiment numbers.
"""

import numpy as np
import pytest

from repro.algorithms import PageRank, SSSP, WeaklyConnectedComponents
from repro.engine import DispatchPolicy, EngineConfig, make_plan, run
from repro.graph import DiGraph, generators


@pytest.fixture(scope="module")
def medium_graph():
    return generators.rmat(10, 8.0, seed=3)


def test_csr_construction(benchmark):
    rng = np.random.default_rng(0)
    n, m = 4096, 40_000
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    g = benchmark(lambda: DiGraph(n, src, dst))
    assert g.num_edges == m


def test_rmat_generation(benchmark):
    g = benchmark(lambda: generators.rmat(10, 8.0, seed=1))
    assert g.num_vertices == 1024


def test_dispatch_block(benchmark):
    active = np.arange(10_000)
    plan = benchmark(lambda: make_plan(active, 16))
    assert len(plan.slots) == 10_000


def test_dispatch_round_robin_with_jitter(benchmark):
    active = np.arange(10_000)

    def build():
        rng = np.random.default_rng(0)
        return make_plan(active, 16, policy=DispatchPolicy.ROUND_ROBIN,
                         jitter=0.5, rng=rng)

    plan = benchmark(build)
    assert len(plan.slots) == 10_000


@pytest.mark.parametrize(
    "factory,label",
    [
        (WeaklyConnectedComponents, "wcc"),
        (lambda: PageRank(epsilon=1e-2), "pagerank"),
        (lambda: SSSP(source=0), "sssp"),
    ],
    ids=["wcc", "pagerank", "sssp"],
)
def test_nondet_engine_full_run(benchmark, medium_graph, factory, label):
    def go():
        return run(factory(), medium_graph, mode="nondeterministic",
                   config=EngineConfig(threads=8, seed=0))

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged


def test_deterministic_engine_full_run(benchmark, medium_graph):
    def go():
        return run(WeaklyConnectedComponents(), medium_graph, mode="deterministic")

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged


def test_sync_engine_full_run(benchmark, medium_graph):
    def go():
        return run(WeaklyConnectedComponents(), medium_graph, mode="sync",
                   config=EngineConfig(threads=8))

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged


def test_union_find_reference(benchmark, medium_graph):
    from repro.graph import weakly_connected_components

    labels = benchmark(lambda: weakly_connected_components(medium_graph))
    assert labels.shape == (medium_graph.num_vertices,)


def test_vectorized_substrate_speedup(benchmark, medium_graph):
    """E7-ish: the NumPy fast path vs the object BSP engine (bit-exact)."""
    import numpy as np

    from repro.algorithms import VWCC
    from repro.engine import run_vectorized

    result = benchmark(lambda: run_vectorized(VWCC(), medium_graph))
    obj = run(WeaklyConnectedComponents(), medium_graph, mode="sync",
              config=EngineConfig(threads=8))
    assert np.array_equal(result.result(), obj.result())


def test_telemetry_enabled_full_run(benchmark, medium_graph):
    """Cost of a live sink (buffered, no file I/O) on a full NE run."""
    from repro.obs import Telemetry

    def go():
        return run(PageRank(epsilon=1e-2), medium_graph, mode="nondeterministic",
                   config=EngineConfig(threads=8, seed=0), telemetry=Telemetry())

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged


@pytest.mark.perfsmoke
def test_disabled_telemetry_overhead_floor():
    """Acceptance: telemetry=None must cost <2% on the hot path.

    The disabled path does strictly less work than an enabled sink (one
    pointer comparison per iteration vs span construction + buffering),
    so bounding disabled-vs-enabled from above bounds the disabled
    overhead too: if telemetry=None were paying anything per access it
    would show up here.  Min-of-5 timings to shed scheduler noise.
    """
    import time as _time

    from repro.obs import Telemetry

    graph = generators.rmat(10, 8.0, seed=3)

    def timed(sink_factory):
        best = float("inf")
        for _ in range(5):
            sink = sink_factory()
            t0 = _time.perf_counter()
            res = run(PageRank(epsilon=1e-2), graph, mode="nondeterministic",
                      config=EngineConfig(threads=8, seed=0), telemetry=sink)
            best = min(best, _time.perf_counter() - t0)
            assert res.converged
        return best

    timed(lambda: None)  # warmup
    t_disabled = timed(lambda: None)
    t_enabled = timed(Telemetry)
    assert t_disabled <= t_enabled * 1.10, (
        f"telemetry=None run took {t_disabled:.3f}s vs {t_enabled:.3f}s with a "
        f"live sink — the disabled path must not do per-access work"
    )


@pytest.mark.perfsmoke
def test_disabled_recorder_overhead_floor():
    """Acceptance: record=None must add no per-update cost.

    Same argument as the telemetry floor above: a disabled recorder does
    strictly less work than an enabled one (one pointer check at the
    commit barrier vs deriving full race provenance from the access
    log), so if ``record=None`` were paying anything per edge access the
    disabled time would exceed the enabled time here.  Min-of-5 timings
    to shed scheduler noise.
    """
    import time as _time

    from repro.obs import Recorder

    graph = generators.rmat(10, 8.0, seed=3)

    def timed(recorder_factory):
        best = float("inf")
        for _ in range(5):
            rec = recorder_factory()
            t0 = _time.perf_counter()
            res = run(PageRank(epsilon=1e-2), graph, mode="nondeterministic",
                      config=EngineConfig(threads=8, seed=0), record=rec)
            best = min(best, _time.perf_counter() - t0)
            assert res.converged
        return best

    timed(lambda: None)  # warmup
    t_disabled = timed(lambda: None)
    t_enabled = timed(Recorder)
    assert t_disabled <= t_enabled * 1.10, (
        f"record=None run took {t_disabled:.3f}s vs {t_enabled:.3f}s with the "
        f"flight recorder — the disabled path must not do per-update work"
    )


@pytest.mark.perfsmoke
def test_metrics_attached_overhead_floor():
    """Acceptance: an attached MetricsRegistry costs ≤ 1.05× a bare run.

    The registry records at iteration granularity only (a handful of
    counter/gauge/histogram updates per iteration, never per edge), and
    no exporter runs during the loop — so attaching one must stay in
    the noise.  Min-of-5 timings of the same run, same-process ratio.
    """
    import time as _time

    from repro.obs import MetricsRegistry

    graph = generators.rmat(10, 8.0, seed=3)

    def timed(metrics_factory):
        best = float("inf")
        for _ in range(5):
            metrics = metrics_factory()
            t0 = _time.perf_counter()
            res = run(PageRank(epsilon=1e-2), graph, mode="nondeterministic",
                      config=EngineConfig(threads=8, seed=0), metrics=metrics)
            best = min(best, _time.perf_counter() - t0)
            assert res.converged
        return best

    timed(lambda: None)  # warmup
    t_bare = timed(lambda: None)
    t_attached = timed(MetricsRegistry)
    assert t_attached <= t_bare * 1.05 + 0.010, (
        f"run with a MetricsRegistry attached took {t_attached:.3f}s vs "
        f"{t_bare:.3f}s bare — metrics recording must stay at iteration "
        f"granularity"
    )


def test_vectorized_pagerank_scale12(benchmark):
    """Large-scale baseline the object engines cannot reach comfortably."""
    from repro.algorithms import VPageRank
    from repro.engine import run_vectorized
    from repro.graph import generators

    big = generators.rmat(12, 8.0, seed=5)

    def go():
        return run_vectorized(VPageRank(epsilon=1e-3), big)

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged
