"""Micro-benchmarks of the framework's hot paths (pytest-benchmark).

These track the wall-clock cost of the substrate itself — CSR
construction, dispatch planning, the racy store, and one engine
iteration per algorithm — so substrate regressions are visible
independently of the virtual-time experiment numbers.
"""

import numpy as np
import pytest

from repro.algorithms import PageRank, SSSP, WeaklyConnectedComponents
from repro.engine import DispatchPolicy, EngineConfig, make_plan, run
from repro.graph import DiGraph, generators


@pytest.fixture(scope="module")
def medium_graph():
    return generators.rmat(10, 8.0, seed=3)


def test_csr_construction(benchmark):
    rng = np.random.default_rng(0)
    n, m = 4096, 40_000
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    g = benchmark(lambda: DiGraph(n, src, dst))
    assert g.num_edges == m


def test_rmat_generation(benchmark):
    g = benchmark(lambda: generators.rmat(10, 8.0, seed=1))
    assert g.num_vertices == 1024


def test_dispatch_block(benchmark):
    active = np.arange(10_000)
    plan = benchmark(lambda: make_plan(active, 16))
    assert len(plan.slots) == 10_000


def test_dispatch_round_robin_with_jitter(benchmark):
    active = np.arange(10_000)

    def build():
        rng = np.random.default_rng(0)
        return make_plan(active, 16, policy=DispatchPolicy.ROUND_ROBIN,
                         jitter=0.5, rng=rng)

    plan = benchmark(build)
    assert len(plan.slots) == 10_000


@pytest.mark.parametrize(
    "factory,label",
    [
        (WeaklyConnectedComponents, "wcc"),
        (lambda: PageRank(epsilon=1e-2), "pagerank"),
        (lambda: SSSP(source=0), "sssp"),
    ],
    ids=["wcc", "pagerank", "sssp"],
)
def test_nondet_engine_full_run(benchmark, medium_graph, factory, label):
    def go():
        return run(factory(), medium_graph, mode="nondeterministic",
                   config=EngineConfig(threads=8, seed=0))

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged


def test_deterministic_engine_full_run(benchmark, medium_graph):
    def go():
        return run(WeaklyConnectedComponents(), medium_graph, mode="deterministic")

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged


def test_sync_engine_full_run(benchmark, medium_graph):
    def go():
        return run(WeaklyConnectedComponents(), medium_graph, mode="sync",
                   config=EngineConfig(threads=8))

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged


def test_union_find_reference(benchmark, medium_graph):
    from repro.graph import weakly_connected_components

    labels = benchmark(lambda: weakly_connected_components(medium_graph))
    assert labels.shape == (medium_graph.num_vertices,)


def test_vectorized_substrate_speedup(benchmark, medium_graph):
    """E7-ish: the NumPy fast path vs the object BSP engine (bit-exact)."""
    import numpy as np

    from repro.algorithms import VWCC
    from repro.engine import run_vectorized

    result = benchmark(lambda: run_vectorized(VWCC(), medium_graph))
    obj = run(WeaklyConnectedComponents(), medium_graph, mode="sync",
              config=EngineConfig(threads=8))
    assert np.array_equal(result.result(), obj.result())


def test_vectorized_pagerank_scale12(benchmark):
    """Large-scale baseline the object engines cannot reach comfortably."""
    from repro.algorithms import VPageRank
    from repro.engine import run_vectorized
    from repro.graph import generators

    big = generators.rmat(12, 8.0, seed=5)

    def go():
        return run_vectorized(VPageRank(epsilon=1e-3), big)

    result = benchmark.pedantic(go, rounds=1, iterations=1)
    assert result.converged
