"""Benchmarks for the future-work extensions (DESIGN.md §7 additions).

E1: push mode — atomic vs racy combine on delta-PageRank (the push-mode
    sufficient condition's warning, quantified).
E2: pure asynchronous model — work and fidelity vs the barriered engine.
E3: convergence speed — Theorem 1 chain bound across a schedule grid.
E4: distributed delay model — staleness/iteration cost of NUMA and
    cluster topologies with unchanged results.
E5: error envelope vs ε (precision / range of errors, future work #2).
"""

import numpy as np

from repro.algorithms import BFS, PageRank, PushPageRankDelta, WeaklyConnectedComponents, reference
from repro.analysis import epsilon_error_study
from repro.engine import AtomicityPolicy, DelayModel, EngineConfig, run, run_push
from repro.experiments.common import format_table
from repro.graph import load_dataset

SCALE = 9


def _graph():
    return load_dataset("web-google-mini", scale=SCALE, seed=7)


def test_e1_push_combine_atomicity(benchmark, record_table):
    graph = _graph()
    ref = reference.pagerank_reference(graph)

    def study():
        rows = []
        for label, policy, p_lost in (
            ("atomic combine", AtomicityPolicy.CACHE_LINE, 0.0),
            ("racy combine (p=0.3)", AtomicityPolicy.NONE, 0.3),
            ("racy combine (p=0.7)", AtomicityPolicy.NONE, 0.7),
        ):
            res = run_push(
                PushPageRankDelta(epsilon=1e-7), graph, threads=8, seed=1,
                atomicity=policy, torn_probability=p_lost,
            )
            rows.append({
                "combine": label,
                "lost pushes": res.conflicts.lost_writes,
                "max error": float(np.max(np.abs(res.result() - ref))),
            })
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    record_table("extension_e1_push", format_table(rows, title="E1 — push-mode combine atomicity"))
    assert rows[0]["max error"] < 1e-3
    assert rows[1]["max error"] > rows[0]["max error"]
    assert rows[2]["lost pushes"] > rows[1]["lost pushes"] > 0


def test_e2_pure_async_vs_barriered(benchmark, record_table):
    graph = _graph()
    truth = reference.wcc_reference(graph)

    def study():
        rows = []
        for mode in ("nondeterministic", "pure-async"):
            res = run(WeaklyConnectedComponents(), graph, mode=mode,
                      config=EngineConfig(threads=8, seed=0))
            rows.append({
                "engine": mode,
                "tasks": res.total_updates,
                "exact": bool(np.array_equal(res.result(), truth)),
            })
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    record_table("extension_e2_pure_async", format_table(rows, title="E2 — barriered vs pure async"))
    assert all(r["exact"] for r in rows)
    a, b = rows[0]["tasks"], rows[1]["tasks"]
    assert max(a, b) <= 6 * min(a, b)  # comparable work (GRACE)


def test_e3_chain_bound(benchmark, record_table):
    from repro.theory import measure_convergence_speed

    graph = _graph()

    def study():
        return measure_convergence_speed(
            lambda: BFS(source=0), graph,
            threads_list=(2, 4, 8), delays=(1.0, 4.0, 16.0), seeds=(0, 1),
        )

    report = benchmark.pedantic(study, rounds=1, iterations=1)
    record_table(
        "extension_e3_speed",
        format_table(report.rows(), title="E3 — BFS convergence speed grid"),
    )
    assert report.check_chain_bound()


def test_e4_delay_topologies(benchmark, record_table):
    graph = _graph()
    truth = reference.wcc_reference(graph)
    topologies = [
        ("flat", DelayModel.uniform(2.0)),
        ("numa", DelayModel.numa(4, intra=2.0, inter=8.0)),
        ("cluster", DelayModel.distributed(2, intra=2.0, network=64.0)),
    ]

    def study():
        rows = []
        for name, model in topologies:
            res = run(WeaklyConnectedComponents(), graph, mode="nondeterministic",
                      config=EngineConfig(threads=8, delay_model=model, seed=3))
            rows.append({
                "topology": name,
                "iterations": res.num_iterations,
                "stale reads": res.conflicts.stale_reads,
                "exact": bool(np.array_equal(res.result(), truth)),
            })
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    record_table("extension_e4_topologies", format_table(rows, title="E4 — delay topologies"))
    assert all(r["exact"] for r in rows)
    stale = [r["stale reads"] for r in rows]
    assert stale[0] < stale[1] < stale[2]


def test_e5_error_envelope(benchmark, record_table):
    graph = _graph()
    ref = reference.pagerank_reference(graph)

    def study():
        return epsilon_error_study(
            lambda e: PageRank(epsilon=e), graph, ref,
            epsilons=(1e-1, 1e-2, 1e-3), seeds=(0, 1, 2), top_k=25,
        )

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    record_table("extension_e5_errors", format_table(rows, title="E5 — PageRank error envelope vs epsilon"))
    by = {(r["config"], r["epsilon"]): r for r in rows}
    for config in ("DE", "8NE"):
        assert by[(config, 1e-3)]["worst max_abs"] < by[(config, 1e-1)]["worst max_abs"]


def test_e6_chromatic_baseline(benchmark, record_table):
    """E6: the deterministic-*parallel* alternative (§VI related work).

    Chromatic scheduling scales where the external deterministic
    scheduler cannot, but pays per-color barriers and the coloring
    itself; nondeterministic execution keeps its edge — the ordering
    NE < chromatic < DE the paper's related-work discussion predicts.
    """
    graph = _graph()

    def study():
        from repro.perf import estimate_time

        rows = []
        de = run(WeaklyConnectedComponents(), graph, mode="deterministic")
        rows.append({"scheduler": "external deterministic (DE)",
                     "threads": 1, "virtual_ms": estimate_time(de) * 1e3})
        for threads in (4, 8, 16):
            ch = run(WeaklyConnectedComponents(), graph, mode="chromatic",
                     config=EngineConfig(threads=threads))
            rows.append({"scheduler": f"chromatic ({ch.extra['num_colors']} colors)",
                         "threads": threads, "virtual_ms": estimate_time(ch) * 1e3})
            ne = run(WeaklyConnectedComponents(), graph, mode="nondeterministic",
                     config=EngineConfig(threads=threads, seed=0))
            rows.append({"scheduler": "nondeterministic (arch)",
                         "threads": threads, "virtual_ms": estimate_time(ne) * 1e3})
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    record_table("extension_e6_chromatic",
                 format_table(rows, title="E6 — scheduler comparison (WCC, web-google-mini)"))
    de_time = rows[0]["virtual_ms"]
    for threads in (4, 8, 16):
        ch = next(r for r in rows if r["threads"] == threads and "chromatic" in r["scheduler"])
        ne = next(r for r in rows if r["threads"] == threads and "nondeterministic" in r["scheduler"])
        assert ne["virtual_ms"] < ch["virtual_ms"] < de_time
