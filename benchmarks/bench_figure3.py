"""Benchmark F3 — regenerate Fig. 3 (computing times, DE vs NE).

Runs the full 16-panel grid (4 algorithms × 4 stand-in graphs; DE
baseline plus NE at 4/8/16 threads priced under all three §III
atomicity methods) and asserts the paper's qualitative shape claims:

* architecture support ≤ compiler support ≤ explicit locking;
* NE (architecture) beats the deterministic baseline on every panel,
  with speedups in the paper's "up to ~3x and beyond" territory;
* NE performance scales with threads from 4 to 8 on most panels
  (sub-linear, with a few exceptions — §V-B's wording);
* NE with explicit locking — the suboptimal synchronization design —
  still beats DE at 16 threads on some panels.

Absolute times are virtual (see DESIGN.md §2); only shape is asserted.
"""

from repro.experiments import run_figure3
from repro.experiments.common import PAPER_THREADS

SCALE = 9


def test_figure3_grid(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_figure3(scale=SCALE, threads_list=PAPER_THREADS),
        rounds=1,
        iterations=1,
    )
    record_table("figure3", result.render())

    algorithms = result.algorithms()
    graphs = result.graphs()
    assert len(algorithms) == 4 and len(graphs) == 4

    lock_beats_de_at_16 = 0
    scaling_improvements = 0
    panels = 0
    for algo in algorithms:
        for graph in graphs:
            panels += 1
            de = result.cell(algo, graph, "DE", 4).virtual_seconds
            arch = {
                p: result.cell(algo, graph, "NE", p, "cache-line").virtual_seconds
                for p in PAPER_THREADS
            }
            comp = {
                p: result.cell(algo, graph, "NE", p, "atomic-relaxed").virtual_seconds
                for p in PAPER_THREADS
            }
            lock = {
                p: result.cell(algo, graph, "NE", p, "lock").virtual_seconds
                for p in PAPER_THREADS
            }
            # (1) per-thread-count policy ordering, every panel
            for p in PAPER_THREADS:
                assert arch[p] < comp[p] < lock[p], (algo, graph, p)
            # (2) NE-arch wins against DE at the best thread count
            assert min(arch.values()) < de, (algo, graph)
            # (3) lock is the worst NE method and slower than DE at 4 threads
            #     on most panels; count its 16-thread crossings of DE
            if lock[16] < de:
                lock_beats_de_at_16 += 1
            # (4) scaling 4 -> 8 improves NE-arch (count; allow exceptions)
            if arch[8] < arch[4]:
                scaling_improvements += 1

    assert panels == 16
    # "in some cases ... explicit locking/unlocking are even better than
    # the original deterministic executions when giving enough cores"
    assert lock_beats_de_at_16 >= 4
    # scaling holds on the clear majority of panels ("a few exceptions")
    assert scaling_improvements >= 12


def test_figure3_speedup_band(benchmark):
    """NE-arch best speedups land within the paper's order of magnitude
    (they report up to ~3.3x; virtual-time reproduction allows 2x-20x)."""
    result = benchmark.pedantic(
        lambda: run_figure3(scale=SCALE, threads_list=(8,)), rounds=1, iterations=1
    )
    speedups = []
    for algo in result.algorithms():
        for graph in result.graphs():
            de = result.cell(algo, graph, "DE", 4).virtual_seconds
            ne = result.cell(algo, graph, "NE", 8, "cache-line").virtual_seconds
            speedups.append(de / ne)
    best = max(speedups)
    assert 2.0 <= best <= 20.0
    assert min(speedups) > 1.0
