"""Repair-vs-recompute trajectory of the delta-accumulative engine.

Two entry points:

* ``python benchmarks/bench_incremental.py`` — runs the incremental
  suite (rmat 12/14 PageRank, three 0.1%-edge mutation batches against
  a standing delta result) and appends a timestamped entry to
  ``BENCH_incremental.json`` at the repo root.  Each batch cell records
  the incremental repair cost (splice + reconvergence iterations)
  against a full vectorized recompute of the same mutated graph.
* ``pytest benchmarks/bench_incremental.py -m perfsmoke`` — tier-2
  floor: a 0.1%-edge repair must cost at most half of a full recompute
  measured in the *same run*, so a loaded CI host cannot flake it.
"""

from __future__ import annotations

import pathlib
import time

import numpy as np
import pytest

from repro.algorithms import PageRank
from repro.engine import EngineConfig, run
from repro.graph import generators
from repro.graph.mutations import apply_batches, generate_batches

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_incremental.json"


def main() -> dict:
    from repro.experiments.benchtrack import run_bench

    written = run_bench(
        ("incremental",),
        progress=lambda m: print(f"{m} ...", flush=True),
    )
    payload = written["incremental"]
    print(f"wrote {OUTPUT} ({len(payload['entries'])} entries)")
    results = payload["entries"][-1]["results"]
    for scale, row in results["scales"].items():
        for name, cell in row["algorithms"].items():
            print(f"  scale {scale} {name:9s} "
                  f"repair {cell['repair_mean_seconds']:7.4f}s  "
                  f"recompute {cell['recompute_mean_seconds']:7.4f}s  "
                  f"speedup {cell['speedup']:.2f}x")
    return payload


@pytest.mark.perfsmoke
def test_small_batch_repair_beats_recompute():
    """Tier-2 floor: repairing a 0.1%-edge batch costs at most half a
    full recompute.

    rmat-12 PageRank.  Both sides are measured seconds apart in the same
    process — the ratio cancels host load, so there is no absolute
    wall-clock term to flake on a slow runner.  Measured ~6-12x speedup
    on a single-core container; the 2x floor (0.5 ratio) flags only a
    real regression (e.g. repair accidentally re-seeding the whole
    graph), not scheduler noise.
    """
    from repro.obs import Telemetry

    graph = generators.rmat(12, 8.0, seed=3)
    batches = generate_batches(graph, 2, 0.001, seed=7)
    factory = lambda: PageRank(epsilon=1e-3)  # noqa: E731

    sink = Telemetry()
    res = run(factory(), graph, mode="delta",
              config=EngineConfig(threads=4, seed=0),
              telemetry=sink, mutations=batches)
    assert res.converged
    muts = res.extra["mutations"]
    assert len(muts) == 2
    walls = {s.iteration: s.wall_time_s for s in sink.spans}
    repair_costs = []
    for i, m in enumerate(muts):
        lo = m["at_iteration"]
        hi = (muts[i + 1]["at_iteration"] if i + 1 < len(muts)
              else res.num_iterations)
        repair_costs.append(
            m["repair_seconds"]
            + sum(walls.get(it, 0.0) for it in range(lo, hi)))
    repair_mean = float(np.mean(repair_costs))

    mutated, _ = apply_batches(graph, batches)
    t0 = time.perf_counter()
    rec = run(factory(), mutated, mode="nondeterministic",
              vectorized="require", config=EngineConfig(threads=4, seed=0))
    recompute_s = time.perf_counter() - t0
    assert rec.converged

    assert repair_mean <= recompute_s * 0.5, (
        f"0.1%-batch repair averaged {repair_mean:.4f}s vs "
        f"{recompute_s:.4f}s full recompute — ratio "
        f"{repair_mean / recompute_s:.2f} exceeds the 0.5 floor"
    )


if __name__ == "__main__":
    main()
