"""Perf trajectory of the vectorized nondeterministic fast path.

Two entry points:

* ``python benchmarks/bench_nondet_fast.py`` — measures the object
  engine against the vectorized engine for every paper algorithm at
  rmat scales 8/10/12 and writes ``BENCH_nondet.json`` at the repo
  root (wall times, updates/s, speedups).  The object engine is skipped
  above ``--object-max-scale`` (default 10) except for one PageRank
  reference point, because it is the very cost the fast path removes.
* ``pytest benchmarks/bench_nondet_fast.py -m perfsmoke`` — tier-2
  smoke floor: the fast path must hold ≥5× over the object engine at
  scale 10 (the JSON artifact targets ≥10×; the floor is deliberately
  looser so CI noise does not flake it).

Both paths benchmark *identical work*: the engines are bit-for-bit
equivalent (see tests/test_nondet_vectorized.py), so a speedup here is
pure execution-strategy gain, not a semantics change.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.algorithms import BFS, SSSP, PageRank, SpMV, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.graph import generators

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_nondet.json"

ALGORITHMS = {
    "wcc": WeaklyConnectedComponents,
    "pagerank": lambda: PageRank(epsilon=1e-3),
    "sssp": lambda: SSSP(source=0),
    "bfs": lambda: BFS(source=0),
    "spmv": SpMV,
}

SCALES = (8, 10, 12)
CONFIG = dict(threads=8, seed=0, jitter=0.5)


def _timed(factory, graph, *, vectorized):
    t0 = time.perf_counter()
    res = run(
        factory(),
        graph,
        mode="nondeterministic",
        config=EngineConfig(**CONFIG),
        vectorized="require" if vectorized else False,
    )
    elapsed = time.perf_counter() - t0
    updates = sum(s.num_active for s in res.iterations)
    return {
        "seconds": elapsed,
        "iterations": res.num_iterations,
        "updates": updates,
        "updates_per_s": updates / elapsed if elapsed > 0 else float("inf"),
        "converged": res.converged,
    }


def measure(scale: int, *, object_engine: bool = True) -> dict:
    graph = generators.rmat(scale, 8.0, seed=3)
    row: dict = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "algorithms": {},
    }
    for name, factory in ALGORITHMS.items():
        cell = {"vectorized": _timed(factory, graph, vectorized=True)}
        if object_engine:
            cell["object"] = _timed(factory, graph, vectorized=False)
            cell["speedup"] = (
                cell["object"]["seconds"] / cell["vectorized"]["seconds"]
            )
        row["algorithms"][name] = cell
    return row


def main(object_max_scale: int = 10) -> dict:
    payload = {
        "config": CONFIG,
        "graph": "rmat(scale, 8.0, seed=3)",
        "scales": {},
    }
    for scale in SCALES:
        print(f"scale {scale} ...", flush=True)
        payload["scales"][str(scale)] = measure(
            scale, object_engine=scale <= object_max_scale
        )
    # One object-engine reference point at the largest scale (PageRank
    # only): documents the gap the fast path closes.
    top = payload["scales"][str(SCALES[-1])]
    if "object" not in top["algorithms"]["pagerank"]:
        graph = generators.rmat(SCALES[-1], 8.0, seed=3)
        cell = top["algorithms"]["pagerank"]
        cell["object"] = _timed(ALGORITHMS["pagerank"], graph, vectorized=False)
        cell["speedup"] = cell["object"]["seconds"] / cell["vectorized"]["seconds"]
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    for scale, row in payload["scales"].items():
        for name, cell in row["algorithms"].items():
            spd = cell.get("speedup")
            spd_txt = f"{spd:8.1f}x" if spd is not None else "       -"
            print(
                f"  scale {scale} {name:9s} vec {cell['vectorized']['seconds']:7.3f}s"
                f"  obj {cell.get('object', {}).get('seconds', float('nan')):8.3f}s"
                f"  {spd_txt}"
            )
    return payload


@pytest.mark.perfsmoke
def test_vectorized_speedup_floor_scale10():
    """Tier-2 floor: ≥5× over the object engine at rmat scale 10."""
    row = measure(10)
    for name, cell in row["algorithms"].items():
        assert cell["vectorized"]["converged"]
        assert cell["speedup"] >= 5.0, (
            f"{name}: vectorized fast path only "
            f"{cell['speedup']:.1f}x over the object engine"
        )


@pytest.mark.perfsmoke
def test_scale12_pagerank_completes_in_seconds():
    """The headline capability: scale-12 PageRank in seconds, not minutes."""
    graph = generators.rmat(12, 8.0, seed=3)
    cell = _timed(ALGORITHMS["pagerank"], graph, vectorized=True)
    assert cell["converged"]
    assert cell["seconds"] < 30.0


if __name__ == "__main__":
    main()
