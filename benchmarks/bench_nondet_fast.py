"""Perf trajectory of the vectorized nondeterministic fast path.

Two entry points:

* ``python benchmarks/bench_nondet_fast.py`` — measures the object
  engine against the vectorized engine for every paper algorithm at
  rmat scales 8/10/12 and appends a timestamped trajectory entry to
  ``BENCH_nondet.json`` at the repo root (wall times, updates/s,
  speedups; see repro.experiments.benchtrack).  The object engine is
  skipped above ``object_max_scale`` (default 10), because it is the
  very cost the fast path removes.
* ``pytest benchmarks/bench_nondet_fast.py -m perfsmoke`` — tier-2
  smoke floor: the fast path must hold ≥5× over the object engine at
  scale 10 (the JSON artifact targets ≥10×; the floor is deliberately
  looser so CI noise does not flake it).

Both paths benchmark *identical work*: the engines are bit-for-bit
equivalent (see tests/test_nondet_vectorized.py), so a speedup here is
pure execution-strategy gain, not a semantics change.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.algorithms import BFS, SSSP, PageRank, SpMV, WeaklyConnectedComponents
from repro.engine import EngineConfig, run
from repro.graph import generators

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_nondet.json"

ALGORITHMS = {
    "wcc": WeaklyConnectedComponents,
    "pagerank": lambda: PageRank(epsilon=1e-3),
    "sssp": lambda: SSSP(source=0),
    "bfs": lambda: BFS(source=0),
    "spmv": SpMV,
}

SCALES = (8, 10, 12)
CONFIG = dict(threads=8, seed=0, jitter=0.5)


def _timed(factory, graph, *, vectorized, direction="pull"):
    t0 = time.perf_counter()
    res = run(
        factory(),
        graph,
        mode="nondeterministic",
        config=EngineConfig(**CONFIG),
        vectorized="require" if vectorized else False,
        direction=direction,
    )
    elapsed = time.perf_counter() - t0
    updates = sum(s.num_active for s in res.iterations)
    return {
        "seconds": elapsed,
        "iterations": res.num_iterations,
        "updates": updates,
        "updates_per_s": updates / elapsed if elapsed > 0 else float("inf"),
        "converged": res.converged,
    }


def measure(scale: int, *, object_engine: bool = True) -> dict:
    graph = generators.rmat(scale, 8.0, seed=3)
    row: dict = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "algorithms": {},
    }
    for name, factory in ALGORITHMS.items():
        cell = {"vectorized": _timed(factory, graph, vectorized=True)}
        if object_engine:
            cell["object"] = _timed(factory, graph, vectorized=False)
            cell["speedup"] = (
                cell["object"]["seconds"] / cell["vectorized"]["seconds"]
            )
        row["algorithms"][name] = cell
    return row


def main(object_max_scale: int = 10) -> dict:
    """Append one ``nondet`` trajectory entry to BENCH_nondet.json.

    Delegates to :mod:`repro.experiments.benchtrack` so the standalone
    script and ``repro bench --suite nondet`` produce identical entries
    (append-only trajectory; a pre-trajectory snapshot is adopted as
    entry 0).
    """
    from repro.experiments.benchtrack import run_bench

    written = run_bench(
        ("nondet",),
        progress=lambda m: print(f"{m} ...", flush=True),
        scales=SCALES,
        object_max_scale=object_max_scale,
    )
    payload = written["nondet"]
    print(f"wrote {OUTPUT} ({len(payload['entries'])} entries)")
    results = payload["entries"][-1]["results"]
    for scale, row in results["scales"].items():
        for name, cell in row["algorithms"].items():
            spd = cell.get("speedup")
            spd_txt = f"{spd:8.1f}x" if spd is not None else "       -"
            print(
                f"  scale {scale} {name:9s} vec {cell['vectorized']['seconds']:7.3f}s"
                f"  obj {cell.get('object', {}).get('seconds', float('nan')):8.3f}s"
                f"  {spd_txt}"
            )
    return payload


@pytest.mark.perfsmoke
def test_vectorized_speedup_floor_scale10():
    """Tier-2 floor: ≥5× over the object engine at rmat scale 10."""
    row = measure(10)
    for name, cell in row["algorithms"].items():
        assert cell["vectorized"]["converged"]
        assert cell["speedup"] >= 5.0, (
            f"{name}: vectorized fast path only "
            f"{cell['speedup']:.1f}x over the object engine"
        )


@pytest.mark.perfsmoke
def test_direction_auto_floor_scale12_bfs():
    """Tier-2 floor for the direction-optimizing hybrid: ``auto`` must
    stay within 10% of the better of pull-only and push-only on scale-12
    BFS, measured in the same process back-to-back so host load cancels.
    The heuristic is allowed to be imperfect; it is not allowed to make
    the run materially slower than either fixed direction.
    """
    graph = generators.rmat(12, 8.0, seed=3)
    cells = {
        d: _timed(ALGORITHMS["bfs"], graph, vectorized=True, direction=d)
        for d in ("pull", "push", "auto")
    }
    assert all(c["converged"] for c in cells.values())
    best = min(cells["pull"]["seconds"], cells["push"]["seconds"])
    assert cells["auto"]["seconds"] <= best / 0.9, (
        f"auto {cells['auto']['seconds']:.3f}s fell below 0.9x of the best "
        f"fixed direction ({best:.3f}s; pull {cells['pull']['seconds']:.3f}s, "
        f"push {cells['push']['seconds']:.3f}s)"
    )


@pytest.mark.perfsmoke
def test_scale12_pagerank_throughput_floor():
    """The headline capability: scale-12 PageRank stays in the same
    throughput regime as scale 10.

    Deliberately *relative*: both measurements come from the same
    process seconds apart, so a loaded or slow CI host scales both
    sides equally.  An absolute wall-clock ceiling would flake under
    load without catching real regressions.  A genuine asymptotic
    regression (e.g. an accidental O(V·E) step) collapses scale-12
    updates/s by far more than the 4x slack.
    """
    cell10 = _timed(
        ALGORITHMS["pagerank"], generators.rmat(10, 8.0, seed=3),
        vectorized=True)
    cell12 = _timed(
        ALGORITHMS["pagerank"], generators.rmat(12, 8.0, seed=3),
        vectorized=True)
    assert cell10["converged"] and cell12["converged"]
    assert cell12["updates_per_s"] >= cell10["updates_per_s"] / 4.0, (
        f"scale-12 throughput {cell12['updates_per_s']:.0f} updates/s fell "
        f"more than 4x below scale-10 ({cell10['updates_per_s']:.0f})"
    )


if __name__ == "__main__":
    main()
