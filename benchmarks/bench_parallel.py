"""Scaling trajectory of the shared-memory process backend.

Two entry points:

* ``python benchmarks/bench_parallel.py`` — runs PageRank at rmat
  scales 10/12 under ``vectorized="require"`` and ``backend="process"``
  for 1/2/4/8 workers and appends a timestamped entry to
  ``BENCH_parallel.json`` at the repo root (see
  repro.experiments.benchtrack for the trajectory format).  Every entry
  embeds a host fingerprint: on a single-core container the curve
  documents backend *overhead* (fork + barrier + shared-memory traffic),
  and only on a multi-core host does it become a speedup curve.
* ``pytest benchmarks/bench_parallel.py -m perfsmoke`` — tier-2 floor:
  the process backend's overhead over the single-process vectorized
  engine must stay bounded by a *ratio* measured in the same run, so a
  loaded CI host cannot flake it.

``config.threads`` is the worker count and is part of the racy
schedule, so each cell compares the two execution strategies under the
same model configuration (their outputs are bit-identical — see
tests/test_nondet_parallel.py).
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.algorithms import PageRank
from repro.engine import EngineConfig, run
from repro.graph import generators

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_parallel.json"


def _timed(graph, *, threads, backend=None):
    config = EngineConfig(threads=threads, seed=0, jitter=0.5)
    t0 = time.perf_counter()
    res = run(PageRank(epsilon=1e-3), graph, mode="nondeterministic",
              config=config, backend=backend,
              vectorized="require" if backend is None else False)
    elapsed = time.perf_counter() - t0
    assert res.converged
    return elapsed


def main() -> dict:
    from repro.experiments.benchtrack import run_bench

    written = run_bench(
        ("parallel",),
        progress=lambda m: print(f"{m} ...", flush=True),
    )
    payload = written["parallel"]
    print(f"wrote {OUTPUT} ({len(payload['entries'])} entries)")
    results = payload["entries"][-1]["results"]
    for scale, row in results["scales"].items():
        for name, cell in row["algorithms"].items():
            for p, stat in cell["workers"].items():
                print(f"  scale {scale} {name:9s} P={p}: "
                      f"vec {stat['vectorized']['seconds']:7.3f}s  "
                      f"proc {stat['process']['seconds']:7.3f}s  "
                      f"speedup {stat['speedup']:.2f}x")
            curve = "  ".join(f"P={p}: {s:.2f}" for p, s in
                              cell["scaling"].items())
            print(f"  scale {scale} {name:9s} scaling vs "
                  f"P={list(cell['scaling'])[0]}: {curve}")
    return payload


@pytest.mark.perfsmoke
def test_process_backend_overhead_bounded():
    """Tier-2 floor: process-backend overhead stays a bounded *ratio*.

    rmat-12 PageRank, 2 workers.  The baseline (single-process
    vectorized, same threads=2 schedule) is measured seconds earlier in
    the same process, so host load cancels out of the ratio — no
    absolute wall-clock term that would flake on a slow runner.  On a
    single-core host the backend pays fork + 3-barriers-per-round +
    shared-memory traffic with zero parallel win; measured ~2.7x there,
    so 8x headroom flags only a real regression (e.g. an accidental
    per-iteration segment rebuild), not scheduler noise.
    """
    graph = generators.rmat(12, 8.0, seed=3)
    t_vec = _timed(graph, threads=2)
    t_proc = _timed(graph, threads=2, backend="process")
    assert t_proc <= t_vec * 8.0, (
        f"process backend (P=2) took {t_proc:.3f}s vs {t_vec:.3f}s "
        f"single-process — overhead ratio {t_proc / t_vec:.1f}x exceeds "
        f"the 8x floor"
    )


@pytest.mark.perfsmoke
def test_process_backend_reuses_pool_across_iterations():
    """The shared-memory segment and workers are created once per run.

    A per-iteration pool rebuild would put fork() on the iteration hot
    path; bound the cost of extra iterations relative to a short run in
    the same process.  PageRank at eps 1e-2 vs 1e-3 differ only in
    iteration count, so the ratio isolates per-iteration cost from
    startup cost.
    """
    graph = generators.rmat(10, 8.0, seed=3)

    def timed(eps):
        config = EngineConfig(threads=2, seed=0, jitter=0.5)
        t0 = time.perf_counter()
        res = run(PageRank(epsilon=eps), graph, mode="nondeterministic",
                  config=config, backend="process")
        elapsed = time.perf_counter() - t0
        assert res.converged
        return elapsed, res.num_iterations

    t_short, n_short = timed(1e-2)
    t_long, n_long = timed(1e-3)
    assert n_long > n_short
    # Startup (fork + segment create) amortises: the long run may cost
    # proportionally more iterations, but not more than ~2x the
    # per-iteration rate of the short run plus its startup.
    per_iter_short = t_short / n_short
    assert t_long <= t_short + per_iter_short * (n_long - n_short) * 2.0 + \
        per_iter_short * n_short, (
        f"long run ({n_long} iters, {t_long:.3f}s) cost far more per "
        f"iteration than the short run ({n_short} iters, {t_short:.3f}s): "
        f"is the pool being rebuilt per iteration?"
    )


@pytest.mark.perfsmoke
def test_warm_pool_reuse_across_runs_is_cheaper():
    """Tier-2 floor for cross-run pool reuse.

    A second ``run()`` on the same (graph, program, P) engine must hit
    the warm pool (``pool_reused=True``) and skip fork + segment
    creation: its wall time stays within 1.5x of the cold run's
    post-startup cost, i.e. strictly below the cold run itself plus a
    safety margin measured in the same process.
    """
    from repro.engine import ParallelEngine

    graph = generators.rmat(10, 8.0, seed=3)
    engine = ParallelEngine()
    try:
        config = EngineConfig(threads=2, seed=0, jitter=0.5)

        def timed():
            t0 = time.perf_counter()
            res = engine.run(PageRank(epsilon=1e-3), graph, config)
            return time.perf_counter() - t0, res

        t_cold, cold = timed()
        t_warm, warm = timed()
        assert cold.extra["pool_reused"] is False
        assert warm.extra["pool_reused"] is True
        assert t_warm <= t_cold * 1.5, (
            f"warm run took {t_warm:.3f}s vs {t_cold:.3f}s cold — pool "
            f"reuse should at minimum not cost more than a cold start"
        )
    finally:
        engine.close()


if __name__ == "__main__":
    main()
