"""Perf floor for the fault-tolerance layer's disabled path.

The engines consult the supervisor behind a single
``if supervisor is not None`` per iteration — the same contract as
``telemetry=`` and ``record=``.  This floor keeps that promise honest:
a run with no fault-tolerance kwargs must not be slower than the same
run under an (idle) supervised loop, which does strictly more work
(empty-plan checks, the in-memory restart token, digest bookkeeping
when a watchdog is armed).
"""

import time

import pytest

from repro.engine import EngineConfig, run
from repro.algorithms import PageRank
from repro.graph import generators


@pytest.mark.perfsmoke
def test_disabled_supervisor_overhead_floor():
    """Acceptance: a disabled FaultPlan/watchdog costs one pointer check.

    The disabled path (``supervisor=None``) does strictly less per
    iteration than a supervised run with an empty fault plan (hook
    dispatch, restart-token maintenance), so bounding disabled-vs-
    enabled from above bounds the disabled overhead too.  Min-of-5
    timings to shed scheduler noise.
    """
    graph = generators.rmat(10, 8.0, seed=3)

    def timed(**robust_kwargs):
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            res = run(PageRank(epsilon=1e-2), graph, mode="nondeterministic",
                      config=EngineConfig(threads=8, seed=0), **robust_kwargs)
            best = min(best, time.perf_counter() - t0)
            assert res.converged
        return best

    t_disabled = timed()
    # empty plan: no fault ever fires, but every hook is consulted and
    # the restart token is refreshed at every barrier
    t_enabled = timed(faults=[])
    # 1.25x, not 1.10x: both sides are ~0.5s min-of-5 measurements and a
    # busy host (e.g. right after the tier-1 suite in the same CI box)
    # jitters them by >10%; a real per-access cost on the disabled path
    # would show up as a multiple, not a quarter.
    assert t_disabled <= t_enabled * 1.25, (
        f"supervisor=None run ({t_disabled:.3f}s) slower than supervised "
        f"idle run ({t_enabled:.3f}s): the disabled path is paying more "
        f"than its advertised pointer check"
    )


@pytest.mark.perfsmoke
def test_recovered_run_overhead_is_bounded():
    """One crash + restart must stay in the same cost class as two runs
    (restore from the barrier token is array copies, not recomputation)."""
    graph = generators.rmat(10, 8.0, seed=3)

    def timed(**robust_kwargs):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            res = run(PageRank(epsilon=1e-2), graph, mode="nondeterministic",
                      config=EngineConfig(threads=8, seed=0), **robust_kwargs)
            best = min(best, time.perf_counter() - t0)
            assert res.converged
        return best

    from repro.robust import DegradationPolicy

    t_clean = timed()
    t_crashed = timed(faults="crash@3",
                      policy=DegradationPolicy(backoff_s=0.0))
    # Pure ratio against a baseline measured seconds earlier in the same
    # process: a loaded CI host slows both sides equally, so no absolute
    # slack term is needed (one crash at iteration 3 re-runs a prefix of
    # the 20-odd iterations — well under 3x even with restart overhead).
    assert t_crashed <= t_clean * 3.0, (
        f"crash recovery cost blew up: clean {t_clean:.3f}s vs "
        f"recovered {t_crashed:.3f}s"
    )
