"""Benchmark T1 — regenerate Table I (graphs used in the experiments).

Times the dataset construction and emits the reproduced Table I next to
the paper's original numbers, asserting the |E|/|V| fidelity of each
stand-in.
"""

import pytest

from repro.experiments import run_table1
from repro.graph.datasets import PAPER_DATASETS


SCALE = 10


def test_table1_rows(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_table1(scale=SCALE), rounds=1, iterations=1
    )
    record_table("table1", result.render())
    assert len(result.rows) == 4
    # |E|/|V| of each stand-in within 2.5x of the paper's ratio — the
    # structural knob the substitution promises to preserve.
    for row in result.rows:
        ratio = row["E/V"]
        paper = row["paper E/V"]
        assert paper / 2.5 <= ratio <= paper * 2.5, row


@pytest.mark.parametrize("name", list(PAPER_DATASETS))
def test_dataset_build_time(benchmark, name):
    spec = PAPER_DATASETS[name]
    graph = benchmark(lambda: spec.build(scale=SCALE, seed=7))
    assert graph.num_vertices == 1 << SCALE
