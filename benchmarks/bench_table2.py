"""Benchmark T2 — regenerate Table II (difference degrees, same config).

Five PageRank runs per configuration (DE with float-precision noise;
NE at 4/8/16 virtual threads) on the web-Google stand-in, for
ε ∈ {0.1, 0.01, 0.001}, averaged over the C(5,2) pairs.

Shape claims asserted (§V-C):
* nondeterministic variation reaches more significant pages than the
  deterministic float-precision noise (NE degrees < DE degrees);
* tightening ε moves NE variation toward less significant pages
  (NE self-degrees grow as ε shrinks);
* more cores push variation toward more significant pages (16NE degree
  below 4NE degree, per ε, with slack for small-sample noise).
"""

import numpy as np

from repro.experiments import PAPER_EPSILONS, run_table2

SCALE = 9
RUNS = 5


def test_table2(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_table2(scale=SCALE, runs=RUNS, epsilons=PAPER_EPSILONS),
        rounds=1,
        iterations=1,
    )
    record_table("table2", result.render())
    table = result.table()

    ne_labels = ["4NE vs. 4NE", "8NE vs. 8NE", "16NE vs. 16NE"]
    for eps in PAPER_EPSILONS:
        de = table[eps]["DE vs. DE"]
        for label in ne_labels:
            assert table[eps][label] < de, (eps, label)

    # smaller epsilon => larger NE self-degree (variation less significant)
    for label in ne_labels:
        degrees = [table[eps][label] for eps in sorted(PAPER_EPSILONS, reverse=True)]
        assert degrees[-1] > degrees[0], (label, degrees)

    # more cores => variation at more significant pages, averaged over eps
    mean_4 = np.mean([table[eps]["4NE vs. 4NE"] for eps in PAPER_EPSILONS])
    mean_16 = np.mean([table[eps]["16NE vs. 16NE"] for eps in PAPER_EPSILONS])
    assert mean_16 <= mean_4 * 1.25  # slack: 5-run averages are noisy
