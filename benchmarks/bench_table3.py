"""Benchmark T3 — regenerate Table III (difference degrees across configs).

The same 5-run-per-configuration corpus as Table II, compared across
configurations (DE vs kNE, kNE vs k'NE), each cell averaging 25 ordered
pairs.

Shape claims asserted (§V-C):
* tightening ε moves cross-configuration variation toward less
  significant pages (degrees grow);
* cross-configuration degrees never exceed the trivial ceiling |V| and
  stay below the DE self-agreement (different schedules disagree sooner
  than float noise does);
* the most significant pages agree across every configuration (the
  identical prefix is nonempty at tight ε) — the paper's usability
  argument for nondeterministic PageRank.
"""

import numpy as np

from repro.experiments import PAPER_EPSILONS, run_table3

SCALE = 9
RUNS = 5


def test_table3(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_table3(scale=SCALE, runs=RUNS, epsilons=PAPER_EPSILONS),
        rounds=1,
        iterations=1,
    )
    record_table("table3", result.render())
    table = result.table()
    n_vertices = 1 << SCALE

    cross_labels = [
        "DE vs. 4NE",
        "DE vs. 8NE",
        "DE vs. 16NE",
        "4NE vs. 8NE",
        "4NE vs. 16NE",
        "8NE vs. 16NE",
    ]
    for eps in PAPER_EPSILONS:
        for label in cross_labels:
            assert 0 <= table[eps][label] <= n_vertices

    # smaller epsilon => larger cross-config degrees, for each pairing
    # (allow one noisy exception out of six)
    improved = 0
    for label in cross_labels:
        loose = table[max(PAPER_EPSILONS)][label]
        tight = table[min(PAPER_EPSILONS)][label]
        if tight > loose:
            improved += 1
    assert improved >= 5, {l: (table[max(PAPER_EPSILONS)][l], table[min(PAPER_EPSILONS)][l]) for l in cross_labels}

    # top of the ranking identical across every run of every config at
    # the tightest epsilon
    tight_study = result.studies[min(PAPER_EPSILONS)]
    assert tight_study.identical_prefix() >= 1
