"""Shared benchmark plumbing.

Every experiment benchmark renders its paper-shaped table to stdout
(visible with ``pytest benchmarks/ -s``) and persists it under
``benchmarks/results/`` so the artifacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Callable: persist and echo a rendered experiment table."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
