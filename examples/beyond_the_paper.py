#!/usr/bin/env python
"""The paper's future-work section, executed.

§VII lists four open directions; this example walks each one as built
in this library:

1. **Push mode** — push-mode BFS and delta-PageRank with atomic
   combines, the push-mode sufficient condition, and the lost-update
   failure when the combine is not atomic.
2. **Pure asynchronous model** — the barrier-free executor, compared
   against the barriered one in tasks executed and result fidelity.
3. **Convergence speed** — measured iteration counts against the
   deterministic and synchronous baselines, with the Theorem 1 chain
   bound checked.
4. **Distributed systems** — the relaxed delay model: the same WCC run
   on a flat machine, a 2-socket NUMA box, and a 4-machine cluster.

Run:  python examples/beyond_the_paper.py
"""

import numpy as np

from repro import EngineConfig, WeaklyConnectedComponents, run
from repro.algorithms import BFS, PushBFS, PushPageRankDelta, reference
from repro.analysis import error_report
from repro.engine import AtomicityPolicy, DelayModel, run_push
from repro.graph import generators
from repro.theory import check_push_program, measure_convergence_speed


def push_mode(graph) -> None:
    print("=" * 72)
    print("1. Push mode: accumulators + atomic combines")
    print("=" * 72)
    print(check_push_program(PushBFS(source=0)).render())
    print()
    truth = reference.bfs_reference(graph, 0)
    res = run_push(PushBFS(source=0), graph, threads=8, seed=1)
    print(f"PushBFS: exact={np.array_equal(res.result(), truth)} "
          f"({res.conflicts.write_write} contended combines, all delivered)")

    ref = reference.pagerank_reference(graph)
    good = run_push(PushPageRankDelta(epsilon=1e-7), graph, threads=8, seed=1)
    bad = run_push(PushPageRankDelta(epsilon=1e-7), graph, threads=8, seed=1,
                   atomicity=AtomicityPolicy.NONE, torn_probability=0.5)
    print(f"Delta-PageRank, atomic combine:     max error "
          f"{np.max(np.abs(good.result() - ref)):.2e}")
    print(f"Delta-PageRank, racy combine:       max error "
          f"{np.max(np.abs(bad.result() - ref)):.2e} "
          f"({bad.conflicts.lost_writes} contributions lost)")
    print()


def pure_async(graph) -> None:
    print("=" * 72)
    print("2. Pure asynchronous model: no barriers")
    print("=" * 72)
    truth = reference.wcc_reference(graph)
    barriered = run(WeaklyConnectedComponents(), graph, mode="nondeterministic",
                    config=EngineConfig(threads=8, seed=0))
    pure = run(WeaklyConnectedComponents(), graph, mode="pure-async",
               config=EngineConfig(threads=8, seed=0))
    for name, res in (("barriered NE", barriered), ("pure async", pure)):
        print(f"{name:13s} tasks={res.total_updates:5d} "
              f"exact={np.array_equal(res.result(), truth)}")
    print("(GRACE's observation: comparable work with and without barriers)")
    print()


def convergence_speed(graph) -> None:
    print("=" * 72)
    print("3. Convergence speed vs the DE / BSP baselines")
    print("=" * 72)
    report = measure_convergence_speed(
        lambda: BFS(source=0), graph,
        threads_list=(2, 8), delays=(1.0, 8.0), seeds=(0, 1),
    )
    print(f"BFS: DE={report.deterministic_iterations} iterations, "
          f"SYNC={report.synchronous_iterations}, "
          f"NE range=[{report.min_iterations()}, {report.max_iterations()}]")
    print(f"Theorem 1 chain bound (NE <= SYNC + 1): {report.check_chain_bound()}")
    print()


def distributed(graph) -> None:
    print("=" * 72)
    print("4. Relaxed system model: NUMA and distributed delays")
    print("=" * 72)
    truth = reference.wcc_reference(graph)
    topologies = [
        ("flat machine (d=2)", DelayModel.uniform(2.0)),
        ("2-socket NUMA (2/8)", DelayModel.numa(4, intra=2.0, inter=8.0)),
        ("4-machine cluster (2/64)", DelayModel.distributed(2, intra=2.0, network=64.0)),
    ]
    for name, model in topologies:
        res = run(WeaklyConnectedComponents(), graph, mode="nondeterministic",
                  config=EngineConfig(threads=8, delay_model=model, seed=3))
        rep = error_report(res.result(), truth, top_k=10)
        print(f"{name:26s} iterations={res.num_iterations:2d} "
              f"stale_reads={res.conflicts.stale_reads:5d} "
              f"exact={rep.max_abs == 0.0}")
    print("Theorems 1 and 2 survive the relaxation — only the cost changes.")


def main() -> None:
    graph = generators.rmat(9, 7.0, seed=11)
    print(f"graph: {graph}\n")
    push_mode(graph)
    pure_async(graph)
    convergence_speed(graph)
    distributed(graph)


if __name__ == "__main__":
    main()
