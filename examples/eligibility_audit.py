#!/usr/bin/env python
"""Auditing algorithms — including your own — for nondeterministic eligibility.

Demonstrates the three layers of the library's answer to the paper's
title question:

1. **Declared traits** → Theorem 1 / Theorem 2 verdicts
   (``check_program``), over the whole algorithm zoo including two
   cautionary counterexamples.
2. **Empirical monotonicity probe**: does the claimed monotone direction
   survive an actual execution trace?
3. **Post-run audit**: after a nondeterministic run, cross-check the
   observed conflict log against the declared conflict profile, and the
   convergence outcome against the verdict.

Finally it defines a brand-new user algorithm inline (degree-weighted
heat diffusion) and walks it through the same pipeline — the workflow a
downstream user would follow before flipping their scheduler to
nondeterministic.

Run:  python examples/eligibility_audit.py
"""

from typing import Mapping

import numpy as np

from repro import (
    AntiParity,
    BFS,
    ConflictProfile,
    ConvergenceKind,
    EdgeIncrementCounter,
    EngineConfig,
    FieldSpec,
    MaxLabelPropagation,
    Monotonicity,
    PageRank,
    SpMV,
    SSSP,
    UpdateContext,
    VertexProgram,
    WeaklyConnectedComponents,
    check_program,
    probe_monotonicity,
    run,
)
from repro.engine import AlgorithmTraits
from repro.theory import audit_run
from repro.graph import generators


class HeatDiffusion(VertexProgram):
    """A user-defined fixed-point program: heat spreads along out-edges.

    Each vertex relaxes toward the average of its in-edge mailboxes plus
    a source term; edge mailboxes carry the sender's temperature scaled
    by 1/out-degree.  Pull mode, single writer per edge → read–write
    conflicts only; converges synchronously (contraction) → Theorem 1.
    """

    def __init__(self, alpha: float = 0.7, epsilon: float = 1e-6):
        self.alpha = alpha
        self.epsilon = epsilon
        self.traits = AlgorithmTraits(
            name="HeatDiffusion",
            conflict_profile=ConflictProfile.READ_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.NONE,
            convergence_kind=ConvergenceKind.APPROXIMATE,
            family="fixed-point iteration",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"temp": FieldSpec(np.float64, 1.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"flow": FieldSpec(np.float64, 0.0)}

    def update(self, ctx: UpdateContext) -> None:
        _, in_eids = ctx.in_edges()
        inflow = sum(ctx.read_edge(e, "flow") for e in in_eids.tolist())
        new_temp = (1.0 - self.alpha) + self.alpha * inflow / max(ctx.in_degree, 1)
        old = float(ctx.get("temp"))
        ctx.set("temp", new_temp)
        if abs(new_temp - old) < self.epsilon or ctx.out_degree == 0:
            return
        share = new_temp  # receiver averages, so send the raw temperature
        for eid in ctx.out_edges()[1].tolist():
            ctx.write_edge(eid, "flow", share)


def main() -> None:
    graph = generators.rmat(9, 7.0, seed=5)

    print("=" * 72)
    print("1. Verdicts for the built-in algorithm zoo")
    print("=" * 72)
    zoo = [
        PageRank(),
        SpMV(),
        WeaklyConnectedComponents(),
        MaxLabelPropagation(),
        SSSP(source=0),
        BFS(source=0),
        EdgeIncrementCounter(target=3),
        AntiParity(),
    ]
    for program in zoo:
        print(check_program(program).render())
        print("-" * 72)

    print()
    print("=" * 72)
    print("2. Empirical monotonicity probes (deterministic trace)")
    print("=" * 72)
    for program in (WeaklyConnectedComponents(), MaxLabelPropagation(), PageRank()):
        probe = probe_monotonicity(program, graph, max_iterations=100)
        claim = program.traits.monotonicity
        print(
            f"{program.traits.name:10s} claimed={claim.value:10s} "
            f"observed={probe.observed.value:10s} "
            f"consistent={probe.consistent_with(claim)}"
        )

    print()
    print("=" * 72)
    print("3. Post-run audits of nondeterministic executions")
    print("=" * 72)
    for program_factory in (WeaklyConnectedComponents, lambda: PageRank(epsilon=1e-3)):
        result = run(
            program_factory(),
            graph,
            mode="nondeterministic",
            config=EngineConfig(threads=8, seed=1),
        )
        issues = audit_run(result)
        print(
            f"{result.program.traits.name:10s} converged={result.converged} "
            f"conflicts(RW/WW)={result.conflicts.read_write}/"
            f"{result.conflicts.write_write} audit={'CLEAN' if not issues else issues}"
        )
    # The oscillating counterexample: not eligible, and indeed never stops.
    result = run(
        AntiParity(),
        graph,
        mode="nondeterministic",
        config=EngineConfig(threads=8, seed=1, max_iterations=60),
    )
    print(
        f"{'AntiParity':10s} converged={result.converged} "
        f"(capped at {result.num_iterations} iterations — as the "
        f"NOT-ESTABLISHED verdict warned)"
    )

    print()
    print("=" * 72)
    print("4. Your own algorithm through the same pipeline")
    print("=" * 72)
    mine = HeatDiffusion()
    print(check_program(mine).render())
    de = run(HeatDiffusion(), graph, mode="deterministic")
    ne = run(HeatDiffusion(), graph, mode="nondeterministic",
             config=EngineConfig(threads=8, seed=2))
    gap = float(np.max(np.abs(de.result() - ne.result())))
    print(
        f"\nHeatDiffusion: DE {de.num_iterations} iters vs NE {ne.num_iterations} iters; "
        f"max result gap {gap:.2e}; NE audit: {audit_run(ne) or 'CLEAN'}"
    )


if __name__ == "__main__":
    main()
