#!/usr/bin/env python
"""GraphChi's storage story: shards, sliding windows, and out-of-core runs.

The paper's experiments run on GraphChi — "large-scale graph computation
on just a PC" — whose defining mechanism is the Parallel Sliding Windows
disk layout.  This example:

1. builds a stand-in graph and preprocesses it into PSW shards on disk;
2. reloads the shards and verifies the layout invariants;
3. executes WCC out-of-core, interval by interval, showing the I/O
   accounting and that results are bit-identical to the in-memory
   deterministic engine (the paper excludes I/O time from its Fig. 3
   for exactly this separation of concerns);
4. shows the window-size / shard-count trade-off.

Run:  python examples/out_of_core.py
"""

import tempfile

import numpy as np

from repro import run
from repro.algorithms import BFS, WeaklyConnectedComponents
from repro.graph import load_dataset
from repro.storage import OutOfCoreRunner, ShardedGraph


def main() -> None:
    graph = load_dataset("soc-livejournal1-mini", scale=10, seed=7)
    print(f"graph: {graph}\n")

    print("--- preprocessing into PSW shards ---")
    sharded = ShardedGraph(graph, num_shards=4)
    sharded.validate()
    for shard in sharded.shards:
        lo, hi = shard.interval
        print(f"shard {shard.index}: dst interval [{lo:4d}, {hi:4d}), "
              f"{shard.num_edges:6d} edges (sorted by src)")

    with tempfile.TemporaryDirectory() as tmp:
        sharded.save(tmp)
        reloaded = ShardedGraph.load(tmp)
        reloaded.validate()
        print(f"\nround-trip through {tmp}: graph equal = {reloaded.graph == graph}")

    print("\n--- out-of-core execution (deterministic semantics) ---")
    in_memory = run(WeaklyConnectedComponents(), graph, mode="deterministic")
    ooc = OutOfCoreRunner(sharded)
    result = ooc.run(WeaklyConnectedComponents())
    identical = np.array_equal(result.result(), in_memory.result())
    print(f"converged={result.converged} in {result.num_iterations} iterations; "
          f"bit-identical to in-memory Gauss-Seidel: {identical}")
    io = result.extra["io"]
    print(f"I/O: {io['interval_loads']} interval loads, "
          f"{io['bytes_read']/1024:.1f} KiB read, "
          f"{io['bytes_written']/1024:.1f} KiB written")

    print("\n--- shard count vs resident window ---")
    for k in (1, 2, 4, 8, 16):
        runner = OutOfCoreRunner(ShardedGraph(graph, k))
        runner.run(BFS(source=0))
        per_load = runner.io.bytes_read / max(1, runner.io.interval_loads)
        print(f"{k:3d} shards: {runner.io.interval_loads:4d} loads, "
              f"{per_load/1024:8.1f} KiB resident per load")


if __name__ == "__main__":
    main()
