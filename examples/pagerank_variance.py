#!/usr/bin/env python
"""§V-C in miniature: run-to-run variation of nondeterministic PageRank.

Reproduces the Tables II/III methodology on the web-Google stand-in:
five independent runs per configuration (DE with float-precision noise,
and NE at 4/8/16 virtual threads), difference degrees within and across
configurations, at two convergence thresholds.

Watch for the paper's three observations:
  * NE variation reaches more significant pages than DE's float noise;
  * smaller ε pushes variation toward less significant pages;
  * the very top of the ranking agrees across every configuration.

Run:  python examples/pagerank_variance.py   (takes a minute or two)
"""

from repro.experiments.table2 import build_study
from repro.graph import load_dataset


def main() -> None:
    graph = load_dataset("web-google-mini", scale=9, seed=7)
    print(f"graph: {graph}\n")

    for epsilon in (0.01, 0.001):
        study = build_study(graph, epsilon, runs=5)
        print(f"=== epsilon = {epsilon} ===")
        print("Within-configuration average difference degrees (Table II rows):")
        for label, degree in study.table2().items():
            print(f"  {label:16s} {degree:8.1f}")
        print("Cross-configuration average difference degrees (Table III rows):")
        for label, degree in study.table3().items():
            print(f"  {label:16s} {degree:8.1f}")
        prefix = study.identical_prefix()
        print(
            f"All 20 runs agree on the top {prefix} pages "
            f"(of {graph.num_vertices}) — the paper's usability argument.\n"
        )


if __name__ == "__main__":
    main()
