#!/usr/bin/env python
"""§V-C in miniature: run-to-run variation of nondeterministic PageRank.

Reproduces the Tables II/III methodology on the web-Google stand-in:
five independent runs per configuration (DE with float-precision noise,
and NE at 4/8/16 virtual threads), difference degrees within and across
configurations, at two convergence thresholds.

Watch for the paper's three observations:
  * NE variation reaches more significant pages than DE's float noise;
  * smaller ε pushes variation toward less significant pages;
  * the very top of the ranking agrees across every configuration.

Run:  python examples/pagerank_variance.py   (takes a minute or two)
"""

from repro.algorithms import PageRank
from repro.analysis import explain_traces
from repro.engine import EngineConfig, run
from repro.experiments.table2 import build_study
from repro.graph import load_dataset
from repro.obs import Recorder


def explain_one_pair(graph) -> None:
    """Where the variance comes from: record two NE runs, explain them.

    The tables above say *how much* two interleavings disagree; the
    flight recorder says *which race started it*.  Two runs under
    different engine seeds, aligned event by event — the report names
    the first divergent racy access, its forward taint, and whether it
    accounts for the first disagreeing rank.
    """
    recorders = []
    for seed in (0, 1):
        rec = Recorder()  # policy="conflicts": cross-thread races only
        run(PageRank(epsilon=1e-3), graph, mode="nondeterministic",
            config=EngineConfig(threads=8, seed=seed, jitter=0.5),
            record=rec)
        recorders.append(rec)
    report = explain_traces(recorders[0].records, recorders[1].records,
                            graph=graph)
    print("=== first-divergence report (flight recorder) ===")
    print(report.render())
    print()


def main() -> None:
    graph = load_dataset("web-google-mini", scale=9, seed=7)
    print(f"graph: {graph}\n")

    for epsilon in (0.01, 0.001):
        study = build_study(graph, epsilon, runs=5)
        print(f"=== epsilon = {epsilon} ===")
        print("Within-configuration average difference degrees (Table II rows):")
        for label, degree in study.table2().items():
            print(f"  {label:16s} {degree:8.1f}")
        print("Cross-configuration average difference degrees (Table III rows):")
        for label, degree in study.table3().items():
            print(f"  {label:16s} {degree:8.1f}")
        prefix = study.identical_prefix()
        print(
            f"All 20 runs agree on the top {prefix} pages "
            f"(of {graph.num_vertices}) — the paper's usability argument.\n"
        )

    explain_one_pair(graph)


if __name__ == "__main__":
    main()
