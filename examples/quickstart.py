#!/usr/bin/env python
"""Quickstart: is your graph algorithm eligible for nondeterministic execution?

Walks the paper's whole pipeline on a generated web-like graph:

1. ask the eligibility checker (Theorems 1 and 2) about two algorithms;
2. run each deterministically (GraphChi's external deterministic
   scheduler) and nondeterministically (racy, 8 virtual threads);
3. compare results, conflicts, iteration counts, and virtual time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EngineConfig,
    PageRank,
    WeaklyConnectedComponents,
    check_program,
    estimate_time,
    run,
)
from repro.graph import generators


def main() -> None:
    graph = generators.rmat(10, 8.0, seed=42)
    print(f"graph: {graph}\n")

    for program_factory in (WeaklyConnectedComponents, lambda: PageRank(epsilon=1e-3)):
        program = program_factory()
        report = check_program(program)
        print(report.render())
        print()

        de = run(program_factory(), graph, mode="deterministic")
        ne = run(
            program_factory(),
            graph,
            mode="nondeterministic",
            config=EngineConfig(threads=8, seed=7),
        )

        name = program.traits.name
        print(f"{name}: deterministic   {de.num_iterations:3d} iterations, "
              f"{de.total_updates:6d} updates, virtual {estimate_time(de)*1e3:7.3f} ms")
        print(f"{name}: nondeterministic {ne.num_iterations:3d} iterations, "
              f"{ne.total_updates:6d} updates, virtual {estimate_time(ne)*1e3:7.3f} ms "
              f"({ne.conflicts.read_write} RW / {ne.conflicts.write_write} WW conflicts)")

        de_res, ne_res = de.result(), ne.result()
        if report.results_deterministic:
            same = np.array_equal(de_res, ne_res)
            print(f"{name}: results identical across schedules: {same} "
                  "(absolute convergence, as Theorem 2 predicts)")
        else:
            diff = float(np.max(np.abs(de_res.astype(np.float64) - ne_res.astype(np.float64))))
            print(f"{name}: results differ by at most {diff:.2e} "
                  "(approximate convergence: run-to-run variation expected)")
        print("-" * 72)


if __name__ == "__main__":
    main()
