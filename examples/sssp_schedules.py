#!/usr/bin/env python
"""SSSP under every execution model, plus the knobs of the system model.

Runs the paper's SSSP on the cage15 stand-in under all four executors
and shows:

* all schedules reach the exact Dijkstra distances (absolute
  convergence + Theorem 1);
* iteration counts order as deterministic-async <= nondeterministic <=
  synchronous (asynchrony reuses fresh values within an iteration);
* how the propagation delay ``d`` and thread count shift the
  nondeterministic execution between those extremes;
* the virtual-time Fig. 3 story for this single panel.

Run:  python examples/sssp_schedules.py
"""

import numpy as np

from repro import AtomicityPolicy, EngineConfig, SSSP, estimate_time, run
from repro.algorithms import reference
from repro.graph import load_dataset


def main() -> None:
    graph = load_dataset("cage15-mini", scale=10, seed=7)
    print(f"graph: {graph}")
    source = 0
    prog = SSSP(source=source)
    truth = reference.sssp_reference(graph, source, prog.make_weights(graph))
    reached = int(np.sum(np.isfinite(truth)))
    print(f"reachable vertices from {source}: {reached}/{graph.num_vertices}\n")

    print("--- all execution models agree on the distances ---")
    for mode in ("sync", "deterministic", "nondeterministic", "threads"):
        result = run(SSSP(source=source), graph, mode=mode,
                     config=EngineConfig(threads=8, seed=3))
        exact = np.array_equal(result.result(), truth)
        print(f"{mode:17s} iterations={result.num_iterations:3d} exact={exact}")

    print("\n--- propagation delay d interpolates async -> sync ---")
    for d in (1, 8, 32, 64, 128):
        result = run(SSSP(source=source), graph, mode="nondeterministic",
                     config=EngineConfig(threads=8, delay=float(d), seed=3))
        print(f"d={d:4d} iterations={result.num_iterations:3d} "
              f"stale_reads={result.conflicts.stale_reads:5d}")

    print("\n--- one Fig. 3 panel: virtual computing time ---")
    de = run(SSSP(source=source), graph, mode="deterministic")
    de_t = estimate_time(de)
    print(f"DE (external deterministic): {de_t*1e3:8.3f} ms  "
          f"({de.num_iterations} iterations, sequential)")
    for threads in (4, 8, 16):
        ne = run(SSSP(source=source), graph, mode="nondeterministic",
                 config=EngineConfig(threads=threads, seed=3))
        for policy in (AtomicityPolicy.LOCK, AtomicityPolicy.CACHE_LINE,
                       AtomicityPolicy.ATOMIC_RELAXED):
            t = estimate_time(ne, policy=policy)
            print(f"NE {policy.value:14s} threads={threads:2d}: {t*1e3:8.3f} ms  "
                  f"(speedup over DE: {de_t/t:4.2f}x)")


if __name__ == "__main__":
    main()
