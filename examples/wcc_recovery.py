#!/usr/bin/env python
"""The paper's Fig. 2 walkthrough: write–write corruption and recovery.

Two vertices v=0 (label 0... the paper uses 1) and u=1 (label 2 in the
paper's numbering) share one edge whose label starts at infinity.  Run
WCC nondeterministically with both updates deliberately concurrent
(``f(v) ∥ f(u)``): in the first iteration u's larger label can overwrite
(corrupt) v's smaller one on the shared edge; in later iterations v
re-writes the correct minimum and u truly converges — Theorem 2's
recovery in action.

We replay the exact scenario with the simulated engine, printing the
edge and vertex labels after every iteration, then scale the same
experiment to a random graph to show recovery always completes.

Run:  python examples/wcc_recovery.py
"""

import numpy as np

from repro import EngineConfig, WeaklyConnectedComponents, run
from repro.algorithms import reference
from repro.graph import generators


def two_vertex_walkthrough() -> None:
    print("=== Fig. 2 scenario: one edge, two racing updates ===")
    graph = generators.two_vertex_conflict_graph()  # 0 -> 1

    trace: list[tuple[int, float, float, float]] = []

    def observer(iteration, state, next_schedule):
        labels = state.vertex("label")
        edge = state.edge("label")
        trace.append((iteration, float(labels[0]), float(labels[1]), float(edge[0])))

    # Two threads, one update each: π(v) = π(u) = 0, so with d >= 1 the
    # two updates are concurrent (∥) and their writes conflict.
    result = run(
        WeaklyConnectedComponents(),
        graph,
        mode="nondeterministic",
        config=EngineConfig(threads=2, delay=2.0, jitter=0.5, seed=3),
        observer=observer,
    )

    print(f"{'iter':>4} {'L_v':>6} {'L_u':>6} {'L_(v->u)':>9}")
    print(f"{'init':>4} {0.0:>6} {1.0:>6} {'inf':>9}")
    for it, lv, lu, le in trace:
        print(f"{it:>4} {lv:>6} {lu:>6} {le:>9}")
    print(f"converged: {result.converged} after {result.num_iterations} iterations")
    print(f"write-write conflicts observed: {result.conflicts.write_write}")
    print(f"lost (overwritten) writes:      {result.conflicts.lost_writes}")
    assert np.array_equal(result.result(), [0.0, 0.0]), "both labels must reach the minimum"
    print("final labels are the component minimum — corruption was recovered\n")


def scaled_recovery() -> None:
    print("=== Same story at scale: WCC on a 1024-vertex R-MAT graph ===")
    graph = generators.rmat(10, 9.0, seed=11)
    truth = reference.wcc_reference(graph)
    for seed in range(5):
        result = run(
            WeaklyConnectedComponents(),
            graph,
            mode="nondeterministic",
            config=EngineConfig(threads=16, seed=seed),
        )
        ok = np.array_equal(result.result(), truth)
        print(
            f"seed {seed}: {result.num_iterations} iterations, "
            f"{result.conflicts.write_write:5d} WW conflicts, "
            f"{result.conflicts.lost_writes:5d} lost writes, exact result: {ok}"
        )
        assert ok


def main() -> None:
    two_vertex_walkthrough()
    scaled_recovery()


if __name__ == "__main__":
    main()
