"""repro — a reproduction of *"Is Your Graph Algorithm Eligible for
Nondeterministic Execution?"* (Shao, Hou, Ai, Zhang, Jin — ICPP 2015).

The package provides a from-scratch vertex-centric graph processing
framework (GraphChi-style, coordinated scheduling, synchronous
implementation of the asynchronous model) with four interchangeable
executors — synchronous (BSP), deterministic asynchronous
(Gauss–Seidel), simulated-nondeterministic (the paper's subject), and a
real-thread demo backend — plus the paper's algorithms, its eligibility
theory (Theorems 1 and 2) in executable form, the difference-degree
result-variation analysis, a virtual-time cost model, and drivers that
regenerate every table and figure of the paper's evaluation.

Quick start::

    from repro import run, WeaklyConnectedComponents, check_program
    from repro.graph import generators

    graph = generators.rmat(10, 8.0, seed=1)
    print(check_program(WeaklyConnectedComponents()).render())
    result = run(WeaklyConnectedComponents(), graph,
                 mode="nondeterministic", threads=8, seed=0)
    print(result.summary())

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced evaluation.
"""

from .engine import (
    AlgorithmTraits,
    AtomicityPolicy,
    ConflictLog,
    ConflictProfile,
    ConvergenceKind,
    DispatchPolicy,
    EngineConfig,
    FieldSpec,
    Monotonicity,
    RunResult,
    State,
    UpdateContext,
    VertexProgram,
    run,
)
from .algorithms import (
    BFS,
    SSSP,
    AntiParity,
    ConflictColoring,
    EdgeIncrementCounter,
    MaxLabelPropagation,
    PageRank,
    SpMV,
    WeaklyConnectedComponents,
)
from .robust import (
    ConvergenceWatchdog,
    DegradationPolicy,
    Fault,
    FaultPlan,
)
from .analysis import difference_degree, explain_trace_files, explain_traces, ranking
from .graph import DiGraph, GraphBuilder, load_dataset
from .obs import Recorder, Telemetry, lint_trace, read_trace, stats_from_trace, summarize_trace
from .perf import CostModel, CostParams, estimate_time
from .theory import Verdict, check_program, check_traits, probe_monotonicity, trace_chain

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine
    "run",
    "EngineConfig",
    "AtomicityPolicy",
    "DispatchPolicy",
    "VertexProgram",
    "UpdateContext",
    "FieldSpec",
    "State",
    "RunResult",
    "ConflictLog",
    "AlgorithmTraits",
    "ConflictProfile",
    "ConvergenceKind",
    "Monotonicity",
    # graph
    "DiGraph",
    "GraphBuilder",
    "load_dataset",
    # algorithms
    "PageRank",
    "WeaklyConnectedComponents",
    "SSSP",
    "BFS",
    "SpMV",
    "MaxLabelPropagation",
    "EdgeIncrementCounter",
    "AntiParity",
    "ConflictColoring",
    # robustness
    "Fault",
    "FaultPlan",
    "ConvergenceWatchdog",
    "DegradationPolicy",
    # theory
    "check_program",
    "check_traits",
    "Verdict",
    "probe_monotonicity",
    "trace_chain",
    # analysis
    "ranking",
    "difference_degree",
    "explain_traces",
    "explain_trace_files",
    # observability
    "Telemetry",
    "Recorder",
    "read_trace",
    "stats_from_trace",
    "lint_trace",
    "summarize_trace",
    # perf
    "CostModel",
    "CostParams",
    "estimate_time",
]
