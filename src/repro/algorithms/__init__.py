"""The paper's evaluated algorithms plus extensions and counterexamples."""

from .bfs import BFS
from .counterexamples import AntiParity, ConflictColoring, EdgeIncrementCounter
from .kcore import KCoreDecomposition, kcore_reference
from .label_propagation import MaxLabelPropagation
from .pagerank import PageRank
from .prioritized import PrioritizedPageRank, PrioritizedSSSP
from .push_algorithms import PushBFS, PushMinReach, PushPageRankDelta, min_reach_reference
from .spmv import SpMV
from .sssp import SSSP
from .vectorized import VBFS, VPageRank, VSSSP, VWCC
from .wcc import WeaklyConnectedComponents
from . import reference

__all__ = [
    "PageRank",
    "WeaklyConnectedComponents",
    "SSSP",
    "BFS",
    "SpMV",
    "PushBFS",
    "PushPageRankDelta",
    "PushMinReach",
    "min_reach_reference",
    "PrioritizedSSSP",
    "PrioritizedPageRank",
    "MaxLabelPropagation",
    "KCoreDecomposition",
    "kcore_reference",
    "EdgeIncrementCounter",
    "AntiParity",
    "ConflictColoring",
    "VWCC",
    "VSSSP",
    "VBFS",
    "VPageRank",
    "reference",
    "PAPER_ALGORITHMS",
]

#: Factories for the four algorithms of the paper's evaluation (§V-A),
#: keyed by the names used in Fig. 3.
PAPER_ALGORITHMS = {
    "PageRank": lambda: PageRank(epsilon=1e-3),
    "WCC": WeaklyConnectedComponents,
    "SSSP": lambda: SSSP(source=0),
    "BFS": lambda: BFS(source=0),
}
