"""Breadth-First Search (§V-A).

The paper treats BFS as "a special case of SSSP, where the weight values
of the edges are all ones", and so do we: the program reuses the SSSP
relaxation with a constant unit weight field, converging to hop counts.
Like SSSP it produces only read–write conflicts, is monotone, and has an
absolute convergence condition.
"""

from __future__ import annotations

import numpy as np

from ..graph import DiGraph
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)
from .sssp import SSSP

__all__ = ["BFS"]


class BFS(SSSP):
    """BFS levels as unit-weight SSSP."""

    def __init__(self, source: int = 0):
        super().__init__(source=source, name="BFS")
        self.traits = AlgorithmTraits(
            name="BFS",
            conflict_profile=ConflictProfile.READ_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.DECREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="graph traversal",
        )

    def make_weights(self, graph: DiGraph) -> np.ndarray:
        return np.ones(graph.num_edges, dtype=np.float64)
