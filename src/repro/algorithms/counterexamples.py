"""Algorithms that are *not* covered by the paper's sufficient conditions.

The paper's title question — "is your graph algorithm eligible for
nondeterministic execution?" — needs negatives as well as positives.
These programs each violate one hypothesis of Theorems 1/2, and the test
suite demonstrates the corresponding failure empirically:

* :class:`EdgeIncrementCounter` — monotone and terminating, but its
  update is a non-idempotent read–modify–write: under write–write
  conflicts a losing increment is silently *lost* and, unlike WCC's
  recomputable minimum, can never be recovered from the survivor's
  value.  The run still converges (edge counts reach the target), but
  the algorithm's semantic output — how many increments were performed —
  is wrong: strictly more increments execute than the target.  Eligible
  for convergence, not for result fidelity.

* :class:`AntiParity` — each vertex insists on holding the complement of
  its edges' bit, so any edge with two live endpoints flips forever.  It
  converges under neither the synchronous nor the deterministic
  asynchronous model; both theorems' hypotheses fail, the eligibility
  verdict is NOT ESTABLISHED, and every engine runs it into its
  ``max_iterations`` bound.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..engine.program import UpdateContext, VertexProgram
from ..engine.state import FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["EdgeIncrementCounter", "AntiParity"]


class EdgeIncrementCounter(VertexProgram):
    """Drive every incident edge counter up to ``target``, one step per visit.

    Deterministically, exactly ``target`` increments are performed per
    edge, so ``Σ_v performed_v == target · |E|``.  Nondeterministically,
    two endpoints may read the same counter value and both write
    ``value + 1``: one write is lost (Lemma 2) while both tasks tally an
    increment — the total tally overshoots.  The declared monotonicity is
    honest (counts only grow) but the update is not a recomputable
    fixed-point step, which is exactly why Theorem 2's *recovery*
    argument does not extend to result correctness here.
    """

    def __init__(self, target: int = 5):
        if target < 1:
            raise ValueError("target must be >= 1")
        self.target = int(target)
        self.traits = AlgorithmTraits(
            name="EdgeIncrementCounter",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            # Counter values rise monotonically, so Theorem 2 does promise
            # convergence — and indeed every run terminates.  What it does
            # NOT promise is that the performed-increment tallies match.
            monotonicity=Monotonicity.INCREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="non-idempotent accumulation",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"performed": FieldSpec(np.int64, 0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"count": FieldSpec(np.int64, 0)}

    def update(self, ctx: UpdateContext) -> None:
        performed = int(ctx.get("performed"))
        for eid in ctx.incident_eids().tolist():
            count = int(ctx.read_edge(eid, "count"))
            if count < self.target:
                ctx.write_edge(eid, "count", count + 1)  # read–modify–write
                performed += 1
        ctx.set("performed", performed)

    def result(self, state) -> np.ndarray:
        return state.vertex("performed")


class AntiParity(VertexProgram):
    """Every vertex wants its incident edges to carry the complement of
    the bit it read from them.

    Two adjacent vertices perpetually overwrite their shared edge with
    opposite bits, so the algorithm is not monotone and converges under
    no execution model; both theorems' hypotheses fail, the eligibility
    verdict is NOT ESTABLISHED, and runs oscillate until
    ``max_iterations``.
    """

    def __init__(self):
        self.traits = AlgorithmTraits(
            name="AntiParity",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=False,
            converges_async_deterministic=False,
            monotonicity=Monotonicity.NONE,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="oscillating toy",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"bit": FieldSpec(np.float64, 0.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"bit": FieldSpec(np.float64, 0.0)}

    def update(self, ctx: UpdateContext) -> None:
        eids = ctx.incident_eids()
        if eids.size == 0:
            return
        # Read the first incident edge, adopt its complement, then force
        # every incident edge to the complement as well.
        seen = ctx.read_edge(int(eids[0]), "bit")
        want = 1.0 - float(seen)
        ctx.set("bit", want)
        for eid in eids.tolist():
            if ctx.read_edge(eid, "bit") != want:
                ctx.write_edge(eid, "bit", want)

    def result(self, state) -> np.ndarray:
        return state.vertex("bit")
