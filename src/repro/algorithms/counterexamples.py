"""Algorithms that are *not* covered by the paper's sufficient conditions.

The paper's title question — "is your graph algorithm eligible for
nondeterministic execution?" — needs negatives as well as positives.
These programs each violate one hypothesis of Theorems 1/2, and the test
suite demonstrates the corresponding failure empirically:

* :class:`EdgeIncrementCounter` — monotone and terminating, but its
  update is a non-idempotent read–modify–write: under write–write
  conflicts a losing increment is silently *lost* and, unlike WCC's
  recomputable minimum, can never be recovered from the survivor's
  value.  The run still converges (edge counts reach the target), but
  the algorithm's semantic output — how many increments were performed —
  is wrong: strictly more increments execute than the target.  Eligible
  for convergence, not for result fidelity.

* :class:`AntiParity` — each vertex insists on holding the complement of
  its edges' bit, so any edge with two live endpoints flips forever.  It
  converges under neither the synchronous nor the deterministic
  asynchronous model; both theorems' hypotheses fail, the eligibility
  verdict is NOT ESTABLISHED, and every engine runs it into its
  ``max_iterations`` bound.

* :class:`ConflictColoring` — the minimal *enumeration computation* of
  Theorem 2's boundary: it converges under any sequential (DE,
  chromatic) order but provably cycles with period 2 whenever the two
  endpoints of an edge update ∥-ordered (BSP, or NE with both endpoints
  on distinct threads reading before the propagation delay ``d``
  elapses).  Unlike :class:`AntiParity` it *has* fixed points — the
  nondeterministic executor just never reaches one.  This is the
  convergence watchdog's canonical prey: the oscillation detector
  recognizes the repeating state digest and degrades to a deterministic
  engine, which finishes the job.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..engine.program import UpdateContext, VertexProgram
from ..engine.state import FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["EdgeIncrementCounter", "AntiParity", "ConflictColoring"]


class EdgeIncrementCounter(VertexProgram):
    """Drive every incident edge counter up to ``target``, one step per visit.

    Deterministically, exactly ``target`` increments are performed per
    edge, so ``Σ_v performed_v == target · |E|``.  Nondeterministically,
    two endpoints may read the same counter value and both write
    ``value + 1``: one write is lost (Lemma 2) while both tasks tally an
    increment — the total tally overshoots.  The declared monotonicity is
    honest (counts only grow) but the update is not a recomputable
    fixed-point step, which is exactly why Theorem 2's *recovery*
    argument does not extend to result correctness here.
    """

    def __init__(self, target: int = 5):
        if target < 1:
            raise ValueError("target must be >= 1")
        self.target = int(target)
        self.traits = AlgorithmTraits(
            name="EdgeIncrementCounter",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            # Counter values rise monotonically, so Theorem 2 does promise
            # convergence — and indeed every run terminates.  What it does
            # NOT promise is that the performed-increment tallies match.
            monotonicity=Monotonicity.INCREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="non-idempotent accumulation",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"performed": FieldSpec(np.int64, 0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"count": FieldSpec(np.int64, 0)}

    def update(self, ctx: UpdateContext) -> None:
        performed = int(ctx.get("performed"))
        for eid in ctx.incident_eids().tolist():
            count = int(ctx.read_edge(eid, "count"))
            if count < self.target:
                ctx.write_edge(eid, "count", count + 1)  # read–modify–write
                performed += 1
        ctx.set("performed", performed)

    def result(self, state) -> np.ndarray:
        return state.vertex("performed")


class AntiParity(VertexProgram):
    """Every vertex wants its incident edges to carry the complement of
    the bit it read from them.

    Two adjacent vertices perpetually overwrite their shared edge with
    opposite bits, so the algorithm is not monotone and converges under
    no execution model; both theorems' hypotheses fail, the eligibility
    verdict is NOT ESTABLISHED, and runs oscillate until
    ``max_iterations``.
    """

    def __init__(self):
        self.traits = AlgorithmTraits(
            name="AntiParity",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=False,
            converges_async_deterministic=False,
            monotonicity=Monotonicity.NONE,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="oscillating toy",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"bit": FieldSpec(np.float64, 0.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"bit": FieldSpec(np.float64, 0.0)}

    def update(self, ctx: UpdateContext) -> None:
        eids = ctx.incident_eids()
        if eids.size == 0:
            return
        # Read the first incident edge, adopt its complement, then force
        # every incident edge to the complement as well.
        seen = ctx.read_edge(int(eids[0]), "bit")
        want = 1.0 - float(seen)
        ctx.set("bit", want)
        for eid in eids.tolist():
            if ctx.read_edge(eid, "bit") != want:
                ctx.write_edge(eid, "bit", want)

    def result(self, state) -> np.ndarray:
        return state.vertex("bit")


class ConflictColoring(VertexProgram):
    """Symmetry-breaking 2-coloring by claim flipping: Theorem 2's edge.

    Each edge carries a ``claim`` bit; a vertex is *in conflict* when
    some incident claim equals its own color.  The update flips the
    vertex's color and stamps the new color onto every incident edge —
    an enumeration computation over the two-element domain, driven
    purely by write–write conflicts on the claims.

    On a matching (every vertex degree <= 1, e.g.
    :func:`~repro.graph.generators.two_vertex_conflict_graph`) any
    *sequential* order converges in two visits per edge: the first
    endpoint flips and claims, the second observes the fresh claim,
    finds no conflict, and goes quiet.  Under ∥-ordered execution both
    endpoints read the same stale claim, both flip to the *same* new
    color, and both stamp it — recreating the conflict exactly.  The
    joint state cycles with period 2:

    ==========  =======  =======  =========
    iteration   colors   claim    conflict?
    ==========  =======  =======  =========
    n           (0, 0)   0        both
    n + 1       (1, 1)   1        both
    n + 2       (0, 0)   0        both
    ==========  =======  =======  =========

    This is precisely the execution Theorem 2 refuses to cover: the
    computation enumerates a finite domain and WW conflicts re-trigger
    the losing endpoint, so no Lemma-2 recovery argument applies and
    the NE run never terminates — while every fixed point (a proper
    2-coloring of the matching) is reachable by any sequential order.
    The watchdog test suite uses it as the canonical oscillator.

    Degree > 1 voids the sequential-convergence guarantee (a flip can
    trade one conflicting edge for another); the eligibility claims
    here are stated for matchings only.
    """

    def __init__(self):
        self.traits = AlgorithmTraits(
            name="ConflictColoring",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=False,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.NONE,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="enumeration (Theorem 2 boundary)",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"color": FieldSpec(np.float64, 0.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"claim": FieldSpec(np.float64, 0.0)}

    def update(self, ctx: UpdateContext) -> None:
        mine = float(ctx.get("color"))
        eids = ctx.incident_eids()
        conflict = any(
            ctx.read_edge(eid, "claim") == mine for eid in eids.tolist()
        )
        if not conflict:
            return  # locally consistent: no write, so no reactivation
        mine = 1.0 - mine
        ctx.set("color", mine)
        for eid in eids.tolist():
            ctx.write_edge(eid, "claim", mine)  # reschedules the neighbor

    def result(self, state) -> np.ndarray:
        return state.vertex("color")
