"""Delta-accumulative kernels — the Maiter ``(⊕, identity, g_edge)``
triples for the programs that have one.

Importing this module registers the kernels (mirroring
:mod:`repro.algorithms.vectorized`); the delta engine's registry loads it
lazily.  Which programs may *not* appear here is as informative as which
may: SpMV multiplies by signed coefficients (no monotone ⊕), the
counterexample programs fail the algebra outright — see
:func:`repro.theory.eligibility.check_delta_program` for the refusals.

The formulations:

* **PageRank** (⊕ = ADD): the fixpoint ``x = (1−d)·1 + d·M·x`` unrolls
  into a Neumann series; starting from ``x0 = 0`` with seed delta
  ``Δ0 = 1−d`` per vertex, each commit forwards ``d·Δ/outdeg`` along
  out-edges.  ADD has an inverse, so mutation repair is a pure reseed.
  Contraction certificate: each hop multiplies total mass by ``d < 1``.
* **SSSP / BFS** (⊕ = MIN): ``Δ0 = 0`` at the source, ``g = Δ + w``
  (BFS: ``w ≡ 1``).  Strictly positive weights make the gain strict —
  support chains descend, so the delete-repair support check is sound.
* **WCC-as-min** (⊕ = MIN, undirected): ``Δ0[v] = v``, ``g = Δ``.  The
  identity gain admits mutual-support cycles, so the kernel declares
  ``strict_gain = False`` and the delete repair only trusts *grounded*
  support (see :class:`repro.engine.nondet_delta.DeltaKernel`).
"""

from __future__ import annotations

import numpy as np

from ..engine.nondet_delta import DeltaKernel, register_delta_kernel
from ..engine.push import CombineOp
from ..graph import DiGraph
from .pagerank import PageRank
from .sssp import SSSP
from .wcc import WeaklyConnectedComponents

__all__ = [
    "PageRankDeltaKernel",
    "SSSPDeltaKernel",
    "WCCDeltaKernel",
]


class PageRankDeltaKernel(DeltaKernel):
    op = CombineOp.ADD
    field = "rank"
    strict_gain = False  # unused for ADD (repair is invertible)
    contraction = 0.85   # default damping; instances refine from program

    def __init__(self, program: PageRank):
        super().__init__(program)
        self.damping = float(program.damping)
        self.base = float(program.base)
        self.contraction = self.damping

    def initial(self, graph: DiGraph) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        return (np.zeros(n, dtype=np.float64),
                np.full(n, self.base, dtype=np.float64))

    def gains(self, graph: DiGraph, eids: np.ndarray,
              values: np.ndarray) -> np.ndarray:
        outdeg = graph.out_degrees()[graph.edge_src[eids]]
        return self.damping * values / outdeg

    def default_threshold(self) -> float:
        # Stricter than the recompute engines' local ε test: residual
        # mass below τ per vertex bounds the state error by the usual
        # geometric amplification (hub in-degree × d / (1−d)).
        return float(self.program.epsilon) * (1.0 - self.damping)


class SSSPDeltaKernel(DeltaKernel):
    op = CombineOp.MIN
    field = "dist"
    strict_gain = True

    def __init__(self, program: SSSP):
        super().__init__(program)
        self._graph: DiGraph | None = None
        self._weights: np.ndarray | None = None

    def _weights_for(self, graph: DiGraph) -> np.ndarray:
        if self._graph is not graph:
            self._graph = graph
            self._weights = np.asarray(
                self.program.make_weights(graph), dtype=np.float64)
        return self._weights

    def initial(self, graph: DiGraph) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        x0 = np.full(n, np.inf, dtype=np.float64)
        delta0 = np.full(n, np.inf, dtype=np.float64)
        if 0 <= self.program.source < n:
            delta0[self.program.source] = 0.0
        return x0, delta0

    def gains(self, graph: DiGraph, eids: np.ndarray,
              values: np.ndarray) -> np.ndarray:
        return values + self._weights_for(graph)[eids]


class WCCDeltaKernel(DeltaKernel):
    op = CombineOp.MIN
    field = "label"
    undirected = True
    strict_gain = False

    def initial(self, graph: DiGraph) -> tuple[np.ndarray, np.ndarray]:
        n = graph.num_vertices
        return (np.full(n, np.inf, dtype=np.float64),
                np.arange(n, dtype=np.float64))

    def gains(self, graph: DiGraph, eids: np.ndarray,
              values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)


register_delta_kernel(PageRank, PageRankDeltaKernel)
register_delta_kernel(SSSP, SSSPDeltaKernel)  # BFS resolves via MRO
register_delta_kernel(WeaklyConnectedComponents, WCCDeltaKernel)
