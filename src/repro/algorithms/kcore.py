"""K-core decomposition by h-index iteration — an extra Theorem 1 algorithm.

Coreness can be computed as the fixed point of repeated *h-index*
updates (Lü et al., Nature Comm. 2016): start every vertex at its
degree; repeatedly set each vertex's value to the h-index of its
neighbours' values (the largest ``h`` such that at least ``h``
neighbours have value ≥ ``h``).  Values are monotonically
non-increasing and converge to the core numbers.

In our edge-dependence model each vertex publishes its current value on
its out-edges (single writer per edge → read–write conflicts only) and
gathers neighbour values from its in-edges.  The graph must be
symmetric (undirected encoded as edge pairs) for coreness to be
well-defined; :func:`kcore_reference` provides the classic peeling
oracle.

Traits: read–write only + synchronous convergence ⇒ eligible under
Theorem 1; monotone decreasing and absolute convergence ⇒ identical
results under every schedule.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.program import UpdateContext, VertexProgram
from ..engine.state import FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["KCoreDecomposition", "kcore_reference", "h_index"]


def h_index(values: list[float]) -> int:
    """Largest ``h`` with at least ``h`` entries ≥ ``h``."""
    values = sorted(values, reverse=True)
    h = 0
    for i, v in enumerate(values, start=1):
        if v >= i:
            h = i
        else:
            break
    return h


def kcore_reference(graph: DiGraph) -> np.ndarray:
    """Core numbers by the classic peeling algorithm (undirected view).

    Treats each distinct unordered adjacency as one undirected edge;
    self-loops are ignored.
    """
    n = graph.num_vertices
    adj: list[set[int]] = [set() for _ in range(n)]
    for e in range(graph.num_edges):
        u, v = graph.edge_endpoints(e)
        if u != v:
            adj[u].add(v)
            adj[v].add(u)
    degree = np.array([len(a) for a in adj], dtype=np.int64)
    core = degree.copy()
    remaining = set(range(n))
    # peel in nondecreasing degree order
    import heapq

    heap = [(int(degree[v]), v) for v in range(n)]
    heapq.heapify(heap)
    current = 0
    deg = degree.copy()
    while heap:
        d, v = heapq.heappop(heap)
        if v not in remaining or d > deg[v]:
            continue
        current = max(current, d)
        core[v] = current
        remaining.discard(v)
        for u in adj[v]:
            if u in remaining:
                deg[u] -= 1
                heapq.heappush(heap, (int(deg[u]), u))
    return core.astype(np.float64)


class KCoreDecomposition(VertexProgram):
    """Coreness via repeated h-index updates (pull mode, RW-only).

    Requires a *symmetric* graph (every undirected edge stored as two
    directed edges, the paper's §II convention): a vertex learns its
    neighbours' values from its in-edges, so an out-only neighbour would
    be invisible.  :meth:`make_state` enforces this.
    """

    def __init__(self):
        self.traits = AlgorithmTraits(
            name="KCore",
            conflict_profile=ConflictProfile.READ_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.DECREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="graph decomposition",
        )

    def make_state(self, graph: DiGraph):
        for e in range(graph.num_edges):
            u, v = graph.edge_endpoints(e)
            if u != v and not graph.has_edge(v, u):
                raise ValueError(
                    "KCoreDecomposition requires a symmetric graph "
                    f"(edge {u}->{v} has no reverse); encode undirected "
                    "edges as two directed edges"
                )
        return super().make_state(graph)

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        def init_value(graph: DiGraph) -> np.ndarray:
            # undirected degree ignoring self-loops and parallel edges
            n = graph.num_vertices
            vals = np.zeros(n)
            for v in range(n):
                nbrs = set(graph.neighbors(v).tolist())
                nbrs.discard(v)
                vals[v] = len(nbrs)
            return vals

        return {"core": FieldSpec(np.float64, init_value)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        def init_published(graph: DiGraph) -> np.ndarray:
            # edge (u -> v) carries u's current value
            deg = np.zeros(graph.num_vertices)
            for v in range(graph.num_vertices):
                nbrs = set(graph.neighbors(v).tolist())
                nbrs.discard(v)
                deg[v] = len(nbrs)
            return deg[graph.edge_src].astype(np.float64)

        return {"value": FieldSpec(np.float64, init_published)}

    def update(self, ctx: UpdateContext) -> None:
        srcs, in_eids = ctx.in_edges()
        # one value per distinct neighbour (dedup parallel edges)
        best: dict[int, float] = {}
        for u, eid in zip(srcs.tolist(), in_eids.tolist()):
            if u == ctx.vid:
                continue
            val = ctx.read_edge(eid, "value")
            if u not in best or val < best[u]:
                best[u] = val
        new_core = float(h_index(list(best.values())))
        old_core = float(ctx.get("core"))
        if new_core > old_core:
            new_core = old_core  # h-index iteration never increases
        ctx.set("core", new_core)
        # publish on out-edges whose stored value is stale
        _, out_eids = ctx.out_edges()
        for eid in out_eids.tolist():
            if ctx.read_edge(eid, "value") != new_core:
                ctx.write_edge(eid, "value", new_core)

    def result(self, state) -> np.ndarray:
        return state.vertex("core")
