"""Maximum-label propagation — a second Theorem 2 exercise.

The mirror image of WCC: vertices and edges adopt the *maximum* label of
their component.  Monotone **increasing** (Theorem 2 covers both
directions: "the computing results monotonically increase or decrease,
but not both"), write–write conflicts, absolute convergence.  Exists so
the test suite and the eligibility checker exercise the increasing
branch of the monotonicity property, not just WCC's decreasing one.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.program import UpdateContext, VertexProgram
from ..engine.state import FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["MaxLabelPropagation"]


class MaxLabelPropagation(VertexProgram):
    """Max-label flood fill over vertices and incident edges."""

    def __init__(self):
        self.traits = AlgorithmTraits(
            name="MaxLabel",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.INCREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="graph traversal",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        def init_label(graph: DiGraph) -> np.ndarray:
            return np.arange(graph.num_vertices, dtype=np.float64)

        return {"label": FieldSpec(np.float64, init_label)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        # -inf mirrors WCC's +inf initial edge label.
        return {"label": FieldSpec(np.float64, -np.inf)}

    def update(self, ctx: UpdateContext) -> None:
        observed: dict[int, float] = {}
        maximum = float(ctx.get("label"))
        for eid in ctx.gather_order(ctx.incident_eids()).tolist():
            val = ctx.read_edge(eid, "label")
            observed[eid] = val
            if val > maximum:
                maximum = val
        ctx.set("label", maximum)
        for eid, val in observed.items():
            if val < maximum:
                ctx.write_edge(eid, "label", maximum)

    def result(self, state) -> np.ndarray:
        return state.vertex("label")
