"""PageRank with local convergence (the paper's fixed-point exemplar, §V-A).

Follows the paper's description of its GraphChi implementation: every
vertex stores a ``float`` (32-bit) weight initialized to 1; every edge
stores a ``float`` weight initialized to ``1 / out_degree(src)``.  The
update function reads all incoming edge weights, combines them into a
new vertex weight, divides by the out-degree, and writes the quotient to
the outgoing edges.  Convergence is *local* (approximate): when
``|f(D_v) − D_v| < ε`` the vertex stops propagating.

In pull mode an edge ``(u, v)`` is read by ``f(v)`` and written only by
``f(u)``, so nondeterministic execution produces **read–write conflicts
only** — the Theorem 1 case.  Because the convergence condition is
relative, the paper predicts (and §V-C measures) run-to-run variation in
the converged ranking; the 32-bit arithmetic here preserves the
float-precision sensitivity those measurements rely on.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.program import UpdateContext, VertexProgram
from ..engine.state import FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["PageRank"]


class PageRank(VertexProgram):
    """GraphChi-style PageRank with per-vertex (local) convergence.

    Parameters
    ----------
    epsilon:
        The local convergence threshold ``ε`` (§V-A / Tables II–III use
        0.1, 0.01 and 0.001).
    damping:
        Random-surfer damping factor; the new rank is
        ``(1 - damping) + damping * Σ in-edge values``.
    """

    def __init__(self, epsilon: float = 1e-3, damping: float = 0.85):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.epsilon = np.float32(epsilon)
        self.damping = np.float32(damping)
        self.base = np.float32(1.0 - damping)
        self.traits = AlgorithmTraits(
            name="PageRank",
            conflict_profile=ConflictProfile.READ_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.NONE,
            convergence_kind=ConvergenceKind.APPROXIMATE,
            family="fixed-point iteration",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"rank": FieldSpec(np.float32, 1.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        def init_edge(graph: DiGraph) -> np.ndarray:
            out_deg = graph.out_degrees().astype(np.float32)
            # Every edge has a source with out-degree >= 1 by definition.
            return (1.0 / out_deg[graph.edge_src]).astype(np.float32)

        return {"value": FieldSpec(np.float32, init_edge)}

    def update(self, ctx: UpdateContext) -> None:
        _, in_eids = ctx.in_edges()
        # 32-bit accumulation in gather order: this is where the paper's
        # float-precision run-to-run differences (Table II, DE vs DE)
        # physically come from.
        total = np.float32(0.0)
        for eid in ctx.gather_order(in_eids).tolist():
            total = np.float32(total + np.float32(ctx.read_edge(eid, "value")))
        # Under fp-noise emulation the gathered sum carries one ulp of
        # reassociation uncertainty (see UpdateContext.fp_round).
        total = np.float32(ctx.fp_round(float(total)))
        new_rank = np.float32(self.base + self.damping * total)
        old_rank = np.float32(ctx.get("rank"))
        ctx.set("rank", new_rank)
        if abs(np.float32(new_rank - old_rank)) < self.epsilon:
            return  # locally converged: no scatter, no new tasks
        out_deg = ctx.out_degree
        if out_deg == 0:
            return
        quotient = np.float32(new_rank / np.float32(out_deg))
        _, out_eids = ctx.out_edges()
        for eid in out_eids.tolist():
            ctx.write_edge(eid, "value", float(quotient))

    def result(self, state) -> np.ndarray:
        return state.vertex("rank")
