"""Priority-annotated programs for autonomous scheduling (§I).

The paper's §I distinguishes *autonomous* scheduling — "a graph
algorithm is allowed to define the execution path of the updates so as
to accelerate its convergence" — from the coordinated scheduling its
study focuses on.  The pure-async engine honours a ``priority(vid,
state)`` method on programs (lowest value runs first among ready
tasks); these subclasses supply the classic priority functions:

* :class:`PrioritizedSSSP` — order by tentative distance, approximating
  Dijkstra's settled order and cutting wasted relaxations;
* :class:`PrioritizedPageRank` — order by rank (a cheap stand-in for
  residual magnitude), the delta-PageRank folklore heuristic.
"""

from __future__ import annotations

from .pagerank import PageRank
from .sssp import SSSP

__all__ = ["PrioritizedSSSP", "PrioritizedPageRank"]


class PrioritizedSSSP(SSSP):
    """SSSP whose autonomous priority is the current tentative distance."""

    def priority(self, vid: int, state) -> float:
        return float(state.vertex("dist")[vid])


class PrioritizedPageRank(PageRank):
    """PageRank preferring high-rank (high-impact) vertices first."""

    def priority(self, vid: int, state) -> float:
        # heapq pops the smallest value: negate so big ranks run first.
        return -float(state.vertex("rank")[vid])
