"""Push-mode algorithms (the future-work §II variant, exercised).

Push-mode counterparts of the paper's algorithms, written against
:class:`repro.engine.push.PushProgram`:

* :class:`PushBFS` — frontier-push BFS with a MIN accumulator (the
  idempotent case: duplicate or reordered delivery is harmless);
* :class:`PushPageRankDelta` — residual-propagating PageRank with an
  ADD accumulator (the non-idempotent case: correctness leans on the
  atomic combine delivering every contribution exactly once);
* :class:`PushMinReach` — minimum label over directed ancestors, the
  push-mode analogue of label propagation.

Each converges to the same fixed point as its pull-mode sibling (BFS
levels, the PageRank equation, ancestor minima), which the tests check
against independent references.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.push import AccumulatorSpec, CombineOp, PushContext, PushProgram
from ..engine.state import INF, FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["PushBFS", "PushPageRankDelta", "PushMinReach", "min_reach_reference"]


class PushBFS(PushProgram):
    """Breadth-first search by pushing candidate levels to out-neighbours."""

    def __init__(self, source: int = 0):
        if source < 0:
            raise ValueError("source must be a valid vertex id")
        self.source = int(source)
        self.traits = AlgorithmTraits(
            name="PushBFS",
            conflict_profile=ConflictProfile.WRITE_WRITE,  # accumulator contention
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.DECREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="graph traversal (push)",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        def init_dist(graph: DiGraph) -> np.ndarray:
            dist = np.full(graph.num_vertices, INF)
            if graph.num_vertices:
                if self.source >= graph.num_vertices:
                    raise ValueError(
                        f"source {self.source} out of range [0, {graph.num_vertices})"
                    )
                dist[self.source] = 0.0
            return dist

        return {
            "dist": FieldSpec(np.float64, init_dist),
            "announced": FieldSpec(np.float64, 0.0),
        }

    def accumulators(self) -> Mapping[str, AccumulatorSpec]:
        return {"cand": AccumulatorSpec(CombineOp.MIN)}

    def initial_frontier(self, graph: DiGraph):
        return [self.source] if graph.num_vertices else []

    def update(self, ctx: PushContext) -> None:
        cand = ctx.take("cand")
        own = float(ctx.get("dist"))
        improved = cand < own
        if improved:
            own = cand
            ctx.set("dist", own)
        if own == INF:
            return
        # Push when the level improved, or on the first announcement
        # (the source's initial task).
        if improved or not ctx.get("announced"):
            ctx.set("announced", 1.0)
            for u in ctx.out_neighbors().tolist():
                ctx.push(u, "cand", own + 1.0)

    def result(self, state) -> np.ndarray:
        return state.vertex("dist")


class PushPageRankDelta(PushProgram):
    """Residual (delta) PageRank: the ADD-combine fixed point.

    Maintains ``rank_v = (1-damping) + damping * Σ_u rank_u / outdeg_u``
    by propagating residuals: consuming a residual δ adds it to the rank
    and forwards ``damping * δ / outdeg`` to each out-neighbour while
    ``δ`` exceeds the tolerance.  The ADD combine is commutative and
    associative but *not* idempotent: a lost or duplicated delivery
    changes the fixed point, which is exactly why the push-mode
    sufficient condition demands an atomic combine.
    """

    def __init__(self, epsilon: float = 1e-4, damping: float = 0.85):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.epsilon = float(epsilon)
        self.damping = float(damping)
        self.traits = AlgorithmTraits(
            name="PushPageRankDelta",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.INCREASING,  # ranks only accumulate
            convergence_kind=ConvergenceKind.APPROXIMATE,
            family="fixed-point iteration (push)",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {
            "rank": FieldSpec(np.float64, 0.0),
            "seeded": FieldSpec(np.float64, 0.0),
        }

    def accumulators(self) -> Mapping[str, AccumulatorSpec]:
        return {"delta": AccumulatorSpec(CombineOp.ADD)}

    def update(self, ctx: PushContext) -> None:
        delta = ctx.take("delta")
        if not ctx.get("seeded"):
            ctx.set("seeded", 1.0)
            delta += 1.0 - self.damping  # the teleport term, once
        if delta == 0.0:
            return
        ctx.set("rank", float(ctx.get("rank")) + delta)
        out_deg = ctx.out_degree
        if delta > self.epsilon and out_deg > 0:
            share = self.damping * delta / out_deg
            for u in ctx.out_neighbors().tolist():
                ctx.push(u, "delta", share)

    def result(self, state) -> np.ndarray:
        return state.vertex("rank")


class PushMinReach(PushProgram):
    """Minimum label over the directed ancestor set (self included)."""

    def __init__(self):
        self.traits = AlgorithmTraits(
            name="PushMinReach",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.DECREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="graph traversal (push)",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        def init_label(graph: DiGraph) -> np.ndarray:
            return np.arange(graph.num_vertices, dtype=np.float64)

        return {
            "label": FieldSpec(np.float64, init_label),
            "announced": FieldSpec(np.float64, 0.0),
        }

    def accumulators(self) -> Mapping[str, AccumulatorSpec]:
        return {"cand": AccumulatorSpec(CombineOp.MIN)}

    def update(self, ctx: PushContext) -> None:
        cand = ctx.take("cand")
        own = float(ctx.get("label"))
        improved = cand < own
        if improved:
            own = cand
            ctx.set("label", own)
        if improved or not ctx.get("announced"):
            ctx.set("announced", 1.0)
            for u in ctx.out_neighbors().tolist():
                ctx.push(u, "cand", own)

    def result(self, state) -> np.ndarray:
        return state.vertex("label")


def min_reach_reference(graph: DiGraph) -> np.ndarray:
    """Fixed point of ``label_v = min(v, min over in-neighbours)``.

    Bellman–Ford-style sweeps; the independent oracle for PushMinReach.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.float64)
    changed = True
    while changed:
        changed = False
        for v in range(n):
            nbrs = graph.in_neighbors(v)
            if nbrs.size:
                m = labels[nbrs].min()
                if m < labels[v]:
                    labels[v] = m
                    changed = True
    return labels
