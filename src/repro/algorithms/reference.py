"""Engine-independent reference results for validating the vertex programs.

Each function computes, with classic sequential algorithms on plain
NumPy arrays, the answer a correctly converged engine run must (exactly
or approximately) reproduce.
"""

from __future__ import annotations

import numpy as np

from ..graph import DiGraph, bfs_levels, dijkstra_distances, weakly_connected_components

__all__ = [
    "pagerank_reference",
    "wcc_reference",
    "max_label_reference",
    "sssp_reference",
    "bfs_reference",
]


def pagerank_reference(
    graph: DiGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iters: int = 10_000,
) -> np.ndarray:
    """Power iteration matching the edge-mailbox PageRank semantics.

    Iterates ``r_v = (1 - damping) + damping * Σ_{(u,v)} r_u / outdeg(u)``
    to a tight tolerance in float64; engine runs with local convergence
    threshold ε should land within O(ε)-ish of this.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    out_deg = graph.out_degrees().astype(np.float64)
    src = graph.edge_src
    dst = graph.edge_dst
    r = np.ones(n)
    base = 1.0 - damping
    safe_deg = np.maximum(out_deg, 1.0)
    for _ in range(max_iters):
        contrib = r[src] / safe_deg[src]
        acc = np.zeros(n)
        np.add.at(acc, dst, contrib)
        r_new = base + damping * acc
        if np.max(np.abs(r_new - r)) < tol:
            return r_new
        r = r_new
    return r


def wcc_reference(graph: DiGraph) -> np.ndarray:
    """Minimum vertex id per weak component (the WCC fixed point)."""
    return weakly_connected_components(graph).astype(np.float64)


def max_label_reference(graph: DiGraph) -> np.ndarray:
    """Maximum vertex id per weak component (the MaxLabel fixed point)."""
    comp = weakly_connected_components(graph)
    n = graph.num_vertices
    comp_max = np.full(n, -np.inf)
    for v in range(n):
        c = comp[v]
        if v > comp_max[c]:
            comp_max[c] = v
    return comp_max[comp]


def sssp_reference(graph: DiGraph, source: int, weights: np.ndarray) -> np.ndarray:
    """Dijkstra distances with the program's fixed weights."""
    return dijkstra_distances(graph, source, weights)


def bfs_reference(graph: DiGraph, source: int) -> np.ndarray:
    """Hop counts from ``source``."""
    return bfs_levels(graph, source)
