"""Iterative sparse matrix–vector fixed point (the paper's SpMV mention, §IV).

Theorem 1 names Sparse Matrix–Vector Multiplication alongside PageRank
as a fixed-point iteration algorithm eligible for nondeterministic
execution under read–write conflicts.  We realize it as a Jacobi-style
solver for ``x = A x + b`` on the graph's adjacency structure: each edge
``(u, v)`` carries a fixed coefficient ``a_(u,v)`` and a mailbox holding
the latest term ``a_(u,v) · x_u``; the update of ``v`` sums its in-edge
mailboxes, adds ``b_v``, and scatters its own new products.

The coefficients are scaled so each row sum is at most ``contraction``
(< 1), making the iteration a contraction mapping — guaranteeing the
synchronous convergence Theorem 1 requires.  Conflicts are read–write
only (each edge has a single writer: its source).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.program import UpdateContext, VertexProgram
from ..engine.state import FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["SpMV"]


class SpMV(VertexProgram):
    """Jacobi iteration for ``x = A x + b`` with a contraction ``A``.

    Parameters
    ----------
    epsilon:
        Local convergence threshold on ``|Δx_v|``.
    contraction:
        Upper bound on every row sum of ``|A|``; must be < 1.
    coeff_seed:
        Seed for the random positive coefficients (part of the data).
    b:
        Constant term; scalar broadcast or per-vertex array.
    """

    def __init__(
        self,
        epsilon: float = 1e-6,
        *,
        contraction: float = 0.8,
        coeff_seed: int = 424242,
        b: float = 1.0,
    ):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 < contraction < 1.0:
            raise ValueError("contraction must be in (0, 1)")
        self.epsilon = float(epsilon)
        self.contraction = float(contraction)
        self.coeff_seed = int(coeff_seed)
        self.b = float(b)
        self.traits = AlgorithmTraits(
            name="SpMV",
            conflict_profile=ConflictProfile.READ_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.NONE,
            convergence_kind=ConvergenceKind.APPROXIMATE,
            family="fixed-point iteration",
        )

    def coefficients(self, graph: DiGraph) -> np.ndarray:
        """The fixed matrix coefficients, one per edge (row = edge dst)."""
        rng = np.random.default_rng(self.coeff_seed)
        raw = rng.uniform(0.5, 1.0, size=graph.num_edges)
        in_deg = graph.in_degrees().astype(np.float64)
        # Normalize by the destination's in-degree so each row sum of |A|
        # is below `contraction`.
        return self.contraction * raw / np.maximum(in_deg[graph.edge_dst], 1.0)

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"x": FieldSpec(np.float64, 0.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        def init_coeff(graph: DiGraph) -> np.ndarray:
            return self.coefficients(graph)

        return {
            "a": FieldSpec(np.float64, init_coeff),
            "term": FieldSpec(np.float64, 0.0),  # mailbox: a_(u,v) * x_u
        }

    def update(self, ctx: UpdateContext) -> None:
        total = 0.0
        _, in_eids = ctx.in_edges()
        for eid in ctx.gather_order(in_eids).tolist():
            total += ctx.read_edge(eid, "term")
        new_x = self.b + total
        old_x = float(ctx.get("x"))
        ctx.set("x", new_x)
        if abs(new_x - old_x) < self.epsilon:
            return
        _, out_eids = ctx.out_edges()
        for eid in out_eids.tolist():
            a = ctx.read_edge(eid, "a")
            ctx.write_edge(eid, "term", a * new_x)

    def result(self, state) -> np.ndarray:
        return state.vertex("x")

    def reference_solution(self, graph: DiGraph) -> np.ndarray:
        """Direct solve of ``(I − A) x = b`` for validation."""
        n = graph.num_vertices
        a = self.coefficients(graph)
        mat = np.eye(n)
        # x_v = b + Σ_{(u,v)} a_(u,v) x_u  =>  (I − A^T-layout) x = b.
        for eid in range(graph.num_edges):
            u, v = graph.edge_endpoints(eid)
            mat[v, u] -= a[eid]
        return np.linalg.solve(mat, np.full(n, self.b))
