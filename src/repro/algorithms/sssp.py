"""Single-Source Shortest Path (the paper's SSSP, §V-A).

Per the paper: every vertex stores a distance (0 at the source, ∞
elsewhere); every edge stores a *fixed* random weight drawn at
initialization plus a distance value initialized to the distance of its
source vertex.  The update function relaxes: it reads every in-edge's
``(distance, weight)`` pair, takes the minimum sum as its own tentative
distance, and scatters its distance to out-edges that carry a larger
value (reading before writing — the optional scatter-phase read of
Algorithm 1).

Each directed edge is written only by its source endpoint, so
nondeterministic execution yields **read–write conflicts only**; the
algorithm is additionally monotone (distances only decrease) and its
convergence is absolute, so nondeterministic runs reach exactly the
deterministic distances.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.program import UpdateContext, VertexProgram
from ..engine.state import INF, FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["SSSP"]


class SSSP(VertexProgram):
    """Bellman–Ford-style relaxation from a single source.

    Parameters
    ----------
    source:
        The source vertex.
    weight_low, weight_high:
        Range of the fixed random edge weights generated at
        initialization (the paper draws "a random value generated during
        initialization"; we default to ``[1, 10)``).
    weight_seed:
        Seed of the weight draw — part of the *data*, deliberately
        independent from the engine's execution seed.
    weights:
        Explicit per-edge weights overriding the random draw (used by BFS
        and by tests that need hand-built instances).
    weight_fn:
        Callable ``graph -> weights`` overriding both of the above.  The
        dynamic-graph workload needs weights keyed by *endpoints* rather
        than edge index (mutations reshuffle edge ids) — pass
        :func:`repro.graph.mutations.stable_weights` here so an edge
        that survives a mutation keeps its weight.
    """

    def __init__(
        self,
        source: int = 0,
        *,
        weight_low: float = 1.0,
        weight_high: float = 10.0,
        weight_seed: int = 12345,
        weights: np.ndarray | None = None,
        weight_fn=None,
        name: str = "SSSP",
    ):
        if source < 0:
            raise ValueError("source must be a valid vertex id")
        if weights is None and not 0 < weight_low <= weight_high:
            raise ValueError("require 0 < weight_low <= weight_high")
        self.source = int(source)
        self.weight_low = float(weight_low)
        self.weight_high = float(weight_high)
        self.weight_seed = int(weight_seed)
        self.fixed_weights = None if weights is None else np.asarray(weights, dtype=np.float64)
        self.weight_fn = weight_fn
        self.traits = AlgorithmTraits(
            name=name,
            conflict_profile=ConflictProfile.READ_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.DECREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="graph traversal",
        )

    # -- state schema ----------------------------------------------------
    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        def init_dist(graph: DiGraph) -> np.ndarray:
            dist = np.full(graph.num_vertices, INF)
            if graph.num_vertices:
                if self.source >= graph.num_vertices:
                    raise ValueError(
                        f"source {self.source} out of range [0, {graph.num_vertices})"
                    )
                dist[self.source] = 0.0
            return dist

        return {"dist": FieldSpec(np.float64, init_dist)}

    def make_weights(self, graph: DiGraph) -> np.ndarray:
        """The fixed edge weights used for ``graph`` (for reference checks)."""
        if self.weight_fn is not None:
            w = np.asarray(self.weight_fn(graph), dtype=np.float64)
            if w.shape != (graph.num_edges,):
                raise ValueError("weight_fn must return one weight per edge")
            return w
        if self.fixed_weights is not None:
            if self.fixed_weights.shape != (graph.num_edges,):
                raise ValueError("explicit weights must have one entry per edge")
            return self.fixed_weights
        rng = np.random.default_rng(self.weight_seed)
        return rng.uniform(self.weight_low, self.weight_high, size=graph.num_edges)

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        def init_weight(graph: DiGraph) -> np.ndarray:
            return self.make_weights(graph)

        def init_dist(graph: DiGraph) -> np.ndarray:
            # "initially set to be the same as the distance value of its
            # source vertex": 0 for the source's out-edges, ∞ elsewhere.
            dist = np.full(graph.num_edges, INF)
            dist[graph.edge_src == self.source] = 0.0
            return dist

        return {"weight": FieldSpec(np.float64, init_weight), "dist": FieldSpec(np.float64, init_dist)}

    # -- update -----------------------------------------------------------
    def update(self, ctx: UpdateContext) -> None:
        best = float(ctx.get("dist"))
        _, in_eids = ctx.in_edges()
        for eid in ctx.gather_order(in_eids).tolist():
            d = ctx.read_edge(eid, "dist")
            if d == INF:
                continue
            w = ctx.read_edge(eid, "weight")
            cand = d + w
            if cand < best:
                best = cand
        ctx.set("dist", best)
        if best == INF:
            return  # still unreached: nothing to propagate
        _, out_eids = ctx.out_edges()
        for eid in out_eids.tolist():
            # Optional read-before-write in the scatter phase.
            if ctx.read_edge(eid, "dist") > best:
                ctx.write_edge(eid, "dist", best)

    def result(self, state) -> np.ndarray:
        return state.vertex("dist")
