"""Vectorized (whole-graph array) implementations of the paper algorithms.

Each class reproduces, as NumPy array operations, exactly one BSP
iteration of its object-engine sibling — including the engine's commit
rule (ascending-label write order, so the larger-label endpoint's value
lands on a doubly-written edge) and the task-generation rule (a written
edge activates its far endpoint).  The traversal algorithms therefore
match the object BSP engine *bit for bit*, iteration for iteration;
PageRank matches its float32 arithmetic by accumulating with
``np.add.at`` in the same CSC gather order the scalar loop uses.

The second half of the module holds the :class:`NondetKernel`
implementations behind the *nondeterministic* fast path
(:mod:`repro.engine.nondet_vectorized`): one whole-graph racy
gather/compute/scatter pass per paper algorithm, reading the engine's
per-edge *seen* arrays instead of a barrier snapshot.  Registering them
here keeps each kernel next to the vectorized program it mirrors.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.nondet_vectorized import (
    NondetKernel,
    NondetPassContext,
    register_nondet_kernel,
)
from ..engine.push import CombineOp
from ..engine.state import INF, FieldSpec, State
from ..engine.vectorized import VectorizedProgram
from .pagerank import PageRank
from .spmv import SpMV
from .sssp import SSSP
from .wcc import WeaklyConnectedComponents

__all__ = ["VWCC", "VSSSP", "VBFS", "VPageRank"]


def _scatter_next_mask(n: int, written: np.ndarray, src: np.ndarray, dst: np.ndarray,
                       writer_is_src: np.ndarray) -> np.ndarray:
    """Task-generation rule: a written edge schedules its far endpoint."""
    mask = np.zeros(n, dtype=bool)
    if written.any():
        far = np.where(writer_is_src[written], dst[written], src[written])
        mask[far] = True
    return mask


class VWCC(VectorizedProgram):
    """Vectorized min-label WCC (matches WeaklyConnectedComponents)."""

    name = "VWCC"

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {
            "label": FieldSpec(
                np.float64, lambda g: np.arange(g.num_vertices, dtype=np.float64)
            )
        }

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"label": FieldSpec(np.float64, INF)}

    def step(self, graph: DiGraph, state: State, active: np.ndarray) -> np.ndarray:
        labels = state.vertex("label")
        elabels = state.edge("label")
        src, dst = graph.edge_src, graph.edge_dst
        n = graph.num_vertices

        # Gather: m_v = min(own label, incident edge labels) for active v.
        minimum = labels.copy()
        src_active = active[src]
        dst_active = active[dst]
        np.minimum.at(minimum, src[src_active], elabels[src_active])
        np.minimum.at(minimum, dst[dst_active], elabels[dst_active])
        labels[active] = minimum[active]

        # Scatter with the criterion "edge label larger than my minimum".
        write_src = src_active & (elabels > minimum[src])
        write_dst = dst_active & (elabels > minimum[dst])
        new_elabels = elabels.copy()
        # Ascending execution order => the larger-label writer lands last.
        src_is_later = src > dst
        first_src = write_src & ~src_is_later
        first_dst = write_dst & src_is_later
        new_elabels[first_src] = minimum[src[first_src]]
        new_elabels[first_dst] = minimum[dst[first_dst]]
        later_src = write_src & src_is_later
        later_dst = write_dst & ~src_is_later
        new_elabels[later_src] = minimum[src[later_src]]
        new_elabels[later_dst] = minimum[dst[later_dst]]
        elabels[:] = new_elabels

        # Next frontier: far endpoints of written edges.
        nxt = np.zeros(n, dtype=bool)
        nxt[dst[write_src]] = True
        nxt[src[write_dst]] = True
        return nxt

    def result(self, state: State) -> np.ndarray:
        return state.vertex("label")


class VSSSP(VectorizedProgram):
    """Vectorized SSSP relaxation (matches the SSSP program)."""

    name = "VSSSP"

    def __init__(self, source: int = 0, *, weights: np.ndarray | None = None,
                 weight_low: float = 1.0, weight_high: float = 10.0,
                 weight_seed: int = 12345):
        self.source = int(source)
        self.fixed_weights = weights
        self.weight_low = weight_low
        self.weight_high = weight_high
        self.weight_seed = weight_seed

    def make_weights(self, graph: DiGraph) -> np.ndarray:
        if self.fixed_weights is not None:
            return np.asarray(self.fixed_weights, dtype=np.float64)
        rng = np.random.default_rng(self.weight_seed)
        return rng.uniform(self.weight_low, self.weight_high, size=graph.num_edges)

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        def init_dist(graph: DiGraph) -> np.ndarray:
            dist = np.full(graph.num_vertices, INF)
            if graph.num_vertices:
                dist[self.source] = 0.0
            return dist

        return {"dist": FieldSpec(np.float64, init_dist)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        def init_weight(graph: DiGraph) -> np.ndarray:
            return self.make_weights(graph)

        def init_dist(graph: DiGraph) -> np.ndarray:
            dist = np.full(graph.num_edges, INF)
            dist[graph.edge_src == self.source] = 0.0
            return dist

        return {
            "weight": FieldSpec(np.float64, init_weight),
            "dist": FieldSpec(np.float64, init_dist),
        }

    def step(self, graph: DiGraph, state: State, active: np.ndarray) -> np.ndarray:
        dist = state.vertex("dist")
        edist = state.edge("dist")
        weight = state.edge("weight")
        src, dst = graph.edge_src, graph.edge_dst

        # Gather: relax in-edges of active vertices from the snapshot.
        cand = dist.copy()
        relax_mask = active[dst] & np.isfinite(edist)
        np.minimum.at(
            cand, dst[relax_mask], edist[relax_mask] + weight[relax_mask]
        )
        dist[active] = cand[active]

        # Scatter: active sources push their (possibly improved) distance
        # onto out-edges carrying a larger value.
        write = active[src] & np.isfinite(dist[src]) & (edist > dist[src])
        edist[write] = dist[src[write]]

        nxt = np.zeros(graph.num_vertices, dtype=bool)
        nxt[dst[write]] = True
        return nxt

    def result(self, state: State) -> np.ndarray:
        return state.vertex("dist")


class VBFS(VSSSP):
    """Vectorized BFS: unit-weight VSSSP."""

    name = "VBFS"

    def __init__(self, source: int = 0):
        super().__init__(source=source)

    def make_weights(self, graph: DiGraph) -> np.ndarray:
        return np.ones(graph.num_edges, dtype=np.float64)


class VPageRank(VectorizedProgram):
    """Vectorized float32 PageRank with local convergence."""

    name = "VPageRank"

    def __init__(self, epsilon: float = 1e-3, damping: float = 0.85):
        self.epsilon = np.float32(epsilon)
        self.damping = np.float32(damping)
        self.base = np.float32(1.0 - damping)

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"rank": FieldSpec(np.float32, 1.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        def init_edge(graph: DiGraph) -> np.ndarray:
            out_deg = graph.out_degrees().astype(np.float32)
            return (1.0 / out_deg[graph.edge_src]).astype(np.float32)

        return {"value": FieldSpec(np.float32, init_edge)}

    def step(self, graph: DiGraph, state: State, active: np.ndarray) -> np.ndarray:
        rank = state.vertex("rank")
        values = state.edge("value")
        src, dst = graph.edge_src, graph.edge_dst
        n = graph.num_vertices

        # Gather in CSC order (grouped by destination, ascending source),
        # the same order the scalar engine reads in-edges — np.add.at
        # accumulates sequentially, so the float32 sums agree exactly.
        order = np.lexsort((src, dst))
        total = np.zeros(n, dtype=np.float32)
        contrib_mask = active[dst[order]]
        sel = order[contrib_mask]
        np.add.at(total, dst[sel], values[sel])

        new_rank = (self.base + self.damping * total).astype(np.float32)
        changed = np.abs(new_rank - rank) >= self.epsilon
        writers = active & changed
        rank[active] = new_rank[active]

        out_deg = graph.out_degrees()
        with np.errstate(divide="ignore"):
            quotient = np.where(
                out_deg > 0, rank / np.maximum(out_deg, 1).astype(np.float32), 0.0
            ).astype(np.float32)
        write = writers[src] & (out_deg[src] > 0)
        values[write] = quotient[src[write]]

        nxt = np.zeros(n, dtype=bool)
        nxt[dst[write]] = True
        return nxt

    def result(self, state: State) -> np.ndarray:
        return state.vertex("rank")


# ----------------------------------------------------------------------
# Nondeterministic fast-path kernels (repro.engine.nondet_vectorized)
# ----------------------------------------------------------------------


class _WCCNondetKernel(NondetKernel):
    """Racy min-label pass for WeaklyConnectedComponents."""

    written_fields = ("label",)

    def __init__(self, program: WeaklyConnectedComponents):
        del program  # stateless: everything lives in the arrays

    def run_pass(self, ctx: NondetPassContext, sub: np.ndarray) -> None:
        src, dst = ctx.src, ctx.dst
        sub_s, sub_d = sub[src], sub[dst]
        seen_s, seen_d = ctx.seen_s["label"], ctx.seen_d["label"]
        # Gather: minimum of the own pre-iteration label and every seen
        # incident edge label (min is order-independent — exact).
        mn = ctx.v0["label"].copy()
        np.minimum.at(mn, dst[sub_d], seen_d[sub_d])
        np.minimum.at(mn, src[sub_s], seen_s[sub_s])
        ctx.vout["label"][sub] = mn[sub]
        # Each incident edge is read once per side (a self-loop twice).
        ctx.rd["label"][sub_d] = 1
        ctx.rs["label"][sub_s] = 1
        # Scatter criterion: the edge carried a larger observed label.
        ctx.ws["label"][sub_s] = (seen_s > mn[src])[sub_s]
        ctx.wvs["label"][sub_s] = mn[src[sub_s]]
        # A self-loop is read from both sides but written once (the
        # object update dedups observations by eid) — attribute it to src.
        ctx.wd["label"][sub_d] = ((seen_d > mn[dst]) & ~ctx.selfloop)[sub_d]
        ctx.wvd["label"][sub_d] = mn[dst[sub_d]]

    # Every scatter is a fetch-and-min of the gathered minimum — an
    # idempotent atomic combine, so the push direction may re-derive the
    # identical values over the frontier's touched edges only.
    push_combines = {"label": CombineOp.MIN}

    def run_push_pass(self, ctx: NondetPassContext, sub_ids: np.ndarray,
                      es: np.ndarray, ed: np.ndarray) -> None:
        src, dst = ctx.src, ctx.dst
        seen_s, seen_d = ctx.seen_s["label"], ctx.seen_d["label"]
        # Same gather as run_pass restricted to the touched edge slices:
        # min over the same multiset of seen labels, order-independent.
        mn = ctx.v0["label"].copy()
        np.minimum.at(mn, dst[ed], seen_d[ed])
        np.minimum.at(mn, src[es], seen_s[es])
        ctx.vout["label"][sub_ids] = mn[sub_ids]
        ctx.rd["label"][ed] = 1
        ctx.rs["label"][es] = 1
        ctx.ws["label"][es] = seen_s[es] > mn[src[es]]
        ctx.wvs["label"][es] = mn[src[es]]
        ctx.wd["label"][ed] = (seen_d[ed] > mn[dst[ed]]) & ~ctx.selfloop[ed]
        ctx.wvd["label"][ed] = mn[dst[ed]]


class _PageRankNondetKernel(NondetKernel):
    """Racy float32 PageRank pass with local convergence."""

    written_fields = ("value",)

    def __init__(self, program: PageRank):
        self.epsilon = program.epsilon
        self.damping = program.damping
        self.base = program.base

    def run_pass(self, ctx: NondetPassContext, sub: np.ndarray) -> None:
        src, dst = ctx.src, ctx.dst
        sub_s, sub_d = sub[src], sub[dst]
        seen_d = ctx.seen_d["value"]
        # Accumulate float32 in CSC order with np.add.at — sequential,
        # unbuffered adds in exactly the scalar gather loop's order.
        order = ctx.in_order
        sel = order[sub[dst[order]]]
        total = np.zeros(ctx.n, dtype=np.float32)
        np.add.at(total, dst[sel], seen_d[sel])
        new_rank = (self.base + self.damping * total).astype(np.float32)
        ctx.vout["rank"][sub] = new_rank[sub]
        ctx.rd["value"][sub_d] = 1
        writers = (
            sub
            & (np.abs(new_rank - ctx.v0["rank"]) >= self.epsilon)
            & (ctx.out_degrees > 0)
        )
        quotient = (
            new_rank / np.maximum(ctx.out_degrees, 1).astype(np.float32)
        ).astype(np.float32)
        ctx.ws["value"][sub_s] = writers[src[sub_s]]
        ctx.wvs["value"][sub_s] = quotient[src[sub_s]]
        ctx.wd["value"][sub_d] = False  # pull mode: only the source writes


class _SSSPNondetKernel(NondetKernel):
    """Racy relaxation pass for SSSP (and BFS, its unit-weight subclass)."""

    written_fields = ("dist",)

    def __init__(self, program: SSSP):
        del program  # weights are data: already materialized in the state

    def run_pass(self, ctx: NondetPassContext, sub: np.ndarray) -> None:
        src, dst = ctx.src, ctx.dst
        sub_s, sub_d = sub[src], sub[dst]
        seen_in = ctx.seen_d["dist"]
        weight = ctx.committed["weight"]
        # Gather: every in-edge dist is read; the weight only when the
        # seen dist is finite (the scalar loop `continue`s on INF).
        relax = sub_d & np.isfinite(seen_in)
        best = ctx.v0["dist"].copy()
        np.minimum.at(best, dst[relax], seen_in[relax] + weight[relax])
        ctx.vout["dist"][sub] = best[sub]
        ctx.rd["dist"][sub_d] = 1
        ctx.rd["weight"][sub_d] = relax[sub_d]
        # Scatter: reached vertices read each out-edge dist and write
        # their own when the edge carries a larger value.
        scat = sub_s & np.isfinite(best)[src]
        seen_out = ctx.seen_s["dist"]
        ctx.rs["dist"][sub_s] = scat[sub_s]
        ctx.ws["dist"][sub_s] = (scat & (seen_out > best[src]))[sub_s]
        ctx.wvs["dist"][sub_s] = best[src[sub_s]]
        ctx.wd["dist"][sub_d] = False  # only the source endpoint writes

    # Relaxation scatters are fetch-and-min over (dist + weight) — an
    # idempotent atomic combine; see _WCCNondetKernel.push_combines.
    push_combines = {"dist": CombineOp.MIN}

    def run_push_pass(self, ctx: NondetPassContext, sub_ids: np.ndarray,
                      es: np.ndarray, ed: np.ndarray) -> None:
        src, dst = ctx.src, ctx.dst
        seen_in = ctx.seen_d["dist"]
        weight = ctx.committed["weight"]
        sd = seen_in[ed]
        fin = np.isfinite(sd)
        er = ed[fin]
        best = ctx.v0["dist"].copy()
        np.minimum.at(best, dst[er], sd[fin] + weight[er])
        ctx.vout["dist"][sub_ids] = best[sub_ids]
        ctx.rd["dist"][ed] = 1
        ctx.rd["weight"][ed] = fin
        bs = best[src[es]]
        scat = np.isfinite(bs)
        seen_out = ctx.seen_s["dist"]
        ctx.rs["dist"][es] = scat
        ctx.ws["dist"][es] = scat & (seen_out[es] > bs)
        ctx.wvs["dist"][es] = bs
        ctx.wd["dist"][ed] = False  # only the source endpoint writes


class _SpMVNondetKernel(NondetKernel):
    """Racy Jacobi pass for the SpMV fixed point."""

    written_fields = ("term",)

    def __init__(self, program: SpMV):
        self.epsilon = program.epsilon
        self.b = program.b

    def run_pass(self, ctx: NondetPassContext, sub: np.ndarray) -> None:
        src, dst = ctx.src, ctx.dst
        sub_s, sub_d = sub[src], sub[dst]
        seen_term = ctx.seen_d["term"]
        # Sequential float64 accumulation in CSC order, like the scalar
        # `total += read` loop.
        order = ctx.in_order
        sel = order[sub[dst[order]]]
        total = np.zeros(ctx.n, dtype=np.float64)
        np.add.at(total, dst[sel], seen_term[sel])
        new_x = self.b + total
        ctx.vout["x"][sub] = new_x[sub]
        ctx.rd["term"][sub_d] = 1
        writers = sub & (np.abs(new_x - ctx.v0["x"]) >= self.epsilon)
        crit = writers[src]
        # The scatter reads the (never-written) coefficient before each write.
        ctx.rs["a"][sub_s] = crit[sub_s]
        ctx.ws["term"][sub_s] = crit[sub_s]
        ctx.wvs["term"][sub_s] = (ctx.committed["a"] * new_x[src])[sub_s]
        ctx.wd["term"][sub_d] = False  # only the source endpoint writes


register_nondet_kernel(WeaklyConnectedComponents, _WCCNondetKernel)
register_nondet_kernel(PageRank, _PageRankNondetKernel)
register_nondet_kernel(SSSP, _SSSPNondetKernel)  # BFS inherits SSSP.update
register_nondet_kernel(SpMV, _SpMVNondetKernel)
