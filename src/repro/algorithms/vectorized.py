"""Vectorized (whole-graph array) implementations of the paper algorithms.

Each class reproduces, as NumPy array operations, exactly one BSP
iteration of its object-engine sibling — including the engine's commit
rule (ascending-label write order, so the larger-label endpoint's value
lands on a doubly-written edge) and the task-generation rule (a written
edge activates its far endpoint).  The traversal algorithms therefore
match the object BSP engine *bit for bit*, iteration for iteration;
PageRank matches its float32 arithmetic by accumulating with
``np.add.at`` in the same CSC gather order the scalar loop uses.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.state import INF, FieldSpec, State
from ..engine.vectorized import VectorizedProgram

__all__ = ["VWCC", "VSSSP", "VBFS", "VPageRank"]


def _scatter_next_mask(n: int, written: np.ndarray, src: np.ndarray, dst: np.ndarray,
                       writer_is_src: np.ndarray) -> np.ndarray:
    """Task-generation rule: a written edge schedules its far endpoint."""
    mask = np.zeros(n, dtype=bool)
    if written.any():
        far = np.where(writer_is_src[written], dst[written], src[written])
        mask[far] = True
    return mask


class VWCC(VectorizedProgram):
    """Vectorized min-label WCC (matches WeaklyConnectedComponents)."""

    name = "VWCC"

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {
            "label": FieldSpec(
                np.float64, lambda g: np.arange(g.num_vertices, dtype=np.float64)
            )
        }

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        return {"label": FieldSpec(np.float64, INF)}

    def step(self, graph: DiGraph, state: State, active: np.ndarray) -> np.ndarray:
        labels = state.vertex("label")
        elabels = state.edge("label")
        src, dst = graph.edge_src, graph.edge_dst
        n = graph.num_vertices

        # Gather: m_v = min(own label, incident edge labels) for active v.
        minimum = labels.copy()
        src_active = active[src]
        dst_active = active[dst]
        np.minimum.at(minimum, src[src_active], elabels[src_active])
        np.minimum.at(minimum, dst[dst_active], elabels[dst_active])
        labels[active] = minimum[active]

        # Scatter with the criterion "edge label larger than my minimum".
        write_src = src_active & (elabels > minimum[src])
        write_dst = dst_active & (elabels > minimum[dst])
        new_elabels = elabels.copy()
        # Ascending execution order => the larger-label writer lands last.
        src_is_later = src > dst
        first_src = write_src & ~src_is_later
        first_dst = write_dst & src_is_later
        new_elabels[first_src] = minimum[src[first_src]]
        new_elabels[first_dst] = minimum[dst[first_dst]]
        later_src = write_src & src_is_later
        later_dst = write_dst & ~src_is_later
        new_elabels[later_src] = minimum[src[later_src]]
        new_elabels[later_dst] = minimum[dst[later_dst]]
        elabels[:] = new_elabels

        # Next frontier: far endpoints of written edges.
        nxt = np.zeros(n, dtype=bool)
        nxt[dst[write_src]] = True
        nxt[src[write_dst]] = True
        return nxt

    def result(self, state: State) -> np.ndarray:
        return state.vertex("label")


class VSSSP(VectorizedProgram):
    """Vectorized SSSP relaxation (matches the SSSP program)."""

    name = "VSSSP"

    def __init__(self, source: int = 0, *, weights: np.ndarray | None = None,
                 weight_low: float = 1.0, weight_high: float = 10.0,
                 weight_seed: int = 12345):
        self.source = int(source)
        self.fixed_weights = weights
        self.weight_low = weight_low
        self.weight_high = weight_high
        self.weight_seed = weight_seed

    def make_weights(self, graph: DiGraph) -> np.ndarray:
        if self.fixed_weights is not None:
            return np.asarray(self.fixed_weights, dtype=np.float64)
        rng = np.random.default_rng(self.weight_seed)
        return rng.uniform(self.weight_low, self.weight_high, size=graph.num_edges)

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        def init_dist(graph: DiGraph) -> np.ndarray:
            dist = np.full(graph.num_vertices, INF)
            if graph.num_vertices:
                dist[self.source] = 0.0
            return dist

        return {"dist": FieldSpec(np.float64, init_dist)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        def init_weight(graph: DiGraph) -> np.ndarray:
            return self.make_weights(graph)

        def init_dist(graph: DiGraph) -> np.ndarray:
            dist = np.full(graph.num_edges, INF)
            dist[graph.edge_src == self.source] = 0.0
            return dist

        return {
            "weight": FieldSpec(np.float64, init_weight),
            "dist": FieldSpec(np.float64, init_dist),
        }

    def step(self, graph: DiGraph, state: State, active: np.ndarray) -> np.ndarray:
        dist = state.vertex("dist")
        edist = state.edge("dist")
        weight = state.edge("weight")
        src, dst = graph.edge_src, graph.edge_dst

        # Gather: relax in-edges of active vertices from the snapshot.
        cand = dist.copy()
        relax_mask = active[dst] & np.isfinite(edist)
        np.minimum.at(
            cand, dst[relax_mask], edist[relax_mask] + weight[relax_mask]
        )
        dist[active] = cand[active]

        # Scatter: active sources push their (possibly improved) distance
        # onto out-edges carrying a larger value.
        write = active[src] & np.isfinite(dist[src]) & (edist > dist[src])
        edist[write] = dist[src[write]]

        nxt = np.zeros(graph.num_vertices, dtype=bool)
        nxt[dst[write]] = True
        return nxt

    def result(self, state: State) -> np.ndarray:
        return state.vertex("dist")


class VBFS(VSSSP):
    """Vectorized BFS: unit-weight VSSSP."""

    name = "VBFS"

    def __init__(self, source: int = 0):
        super().__init__(source=source)

    def make_weights(self, graph: DiGraph) -> np.ndarray:
        return np.ones(graph.num_edges, dtype=np.float64)


class VPageRank(VectorizedProgram):
    """Vectorized float32 PageRank with local convergence."""

    name = "VPageRank"

    def __init__(self, epsilon: float = 1e-3, damping: float = 0.85):
        self.epsilon = np.float32(epsilon)
        self.damping = np.float32(damping)
        self.base = np.float32(1.0 - damping)

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        return {"rank": FieldSpec(np.float32, 1.0)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        def init_edge(graph: DiGraph) -> np.ndarray:
            out_deg = graph.out_degrees().astype(np.float32)
            return (1.0 / out_deg[graph.edge_src]).astype(np.float32)

        return {"value": FieldSpec(np.float32, init_edge)}

    def step(self, graph: DiGraph, state: State, active: np.ndarray) -> np.ndarray:
        rank = state.vertex("rank")
        values = state.edge("value")
        src, dst = graph.edge_src, graph.edge_dst
        n = graph.num_vertices

        # Gather in CSC order (grouped by destination, ascending source),
        # the same order the scalar engine reads in-edges — np.add.at
        # accumulates sequentially, so the float32 sums agree exactly.
        order = np.lexsort((src, dst))
        total = np.zeros(n, dtype=np.float32)
        contrib_mask = active[dst[order]]
        sel = order[contrib_mask]
        np.add.at(total, dst[sel], values[sel])

        new_rank = (self.base + self.damping * total).astype(np.float32)
        changed = np.abs(new_rank - rank) >= self.epsilon
        writers = active & changed
        rank[active] = new_rank[active]

        out_deg = graph.out_degrees()
        with np.errstate(divide="ignore"):
            quotient = np.where(
                out_deg > 0, rank / np.maximum(out_deg, 1).astype(np.float32), 0.0
            ).astype(np.float32)
        write = writers[src] & (out_deg[src] > 0)
        values[write] = quotient[src[write]]

        nxt = np.zeros(n, dtype=bool)
        nxt[dst[write]] = True
        return nxt

    def result(self, state: State) -> np.ndarray:
        return state.vertex("rank")
