"""Weakly Connected Components by minimum-label propagation (§IV, Fig. 2).

This is the GraphChi example program the paper studies (and slightly
modifies to run nondeterministically): the update function compares the
label of its vertex with the labels of all incident edges, computes the
minimum, adopts it, and writes it back to every incident edge carrying a
larger label.  At convergence every vertex (and edge) holds the smallest
vertex id of its weak component.

Both endpoints of an edge write it, so nondeterministic execution
produces **write–write conflicts** — the Theorem 2 case.  The algorithm
is monotone (labels only decrease), converges under a deterministic
asynchronous schedule, and its convergence condition is absolute; the
paper therefore predicts both convergence *and* bit-identical final
results under nondeterministic execution, corruption and recovery
included (the Fig. 2 walkthrough, reproduced in
``tests/test_fig2_scenario.py`` and ``examples/wcc_recovery.py``).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..graph import DiGraph
from ..engine.program import UpdateContext, VertexProgram
from ..engine.state import INF, FieldSpec
from ..engine.traits import (
    AlgorithmTraits,
    ConflictProfile,
    ConvergenceKind,
    Monotonicity,
)

__all__ = ["WeaklyConnectedComponents"]


class WeaklyConnectedComponents(VertexProgram):
    """Min-label propagation over vertices and incident edges."""

    def __init__(self):
        self.traits = AlgorithmTraits(
            name="WCC",
            conflict_profile=ConflictProfile.WRITE_WRITE,
            converges_synchronously=True,
            converges_async_deterministic=True,
            monotonicity=Monotonicity.DECREASING,
            convergence_kind=ConvergenceKind.ABSOLUTE,
            family="graph traversal",
        )

    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        def init_label(graph: DiGraph) -> np.ndarray:
            return np.arange(graph.num_vertices, dtype=np.float64)

        return {"label": FieldSpec(np.float64, init_label)}

    def edge_fields(self) -> Mapping[str, FieldSpec]:
        # The paper's Fig. 2 initializes edge labels to infinity.
        return {"label": FieldSpec(np.float64, INF)}

    def update(self, ctx: UpdateContext) -> None:
        # Gather: read every incident edge label once, remembering the
        # observed values for the scatter criterion.
        observed: dict[int, float] = {}
        minimum = float(ctx.get("label"))
        for eid in ctx.gather_order(ctx.incident_eids()).tolist():
            val = ctx.read_edge(eid, "label")
            observed[eid] = val
            if val < minimum:
                minimum = val
        # Compute + apply to own vertex (private, immediate).
        ctx.set("label", minimum)
        # Scatter, guarded by the criterion "edge carries a larger label".
        # An update that observed only its own value everywhere performs
        # no write and thus generates no new tasks ("falsely converges"
        # in the Fig. 2 walkthrough — until a neighbour corrects it).
        for eid, val in observed.items():
            if val > minimum:
                ctx.write_edge(eid, "label", minimum)

    def result(self, state) -> np.ndarray:
        return state.vertex("label")
