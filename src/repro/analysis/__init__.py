"""Result analysis: difference degrees and run-to-run variation (§V-C)."""

from .difference import (
    average_difference_degree,
    cross_difference_degree,
    difference_degree,
    identical_prefix_length,
    ranking,
)
from .errors import ErrorReport, epsilon_error_study, error_report
from .explain import (
    DivergenceReport,
    FirstDivergence,
    explain_trace_files,
    explain_traces,
    first_divergence,
    taint_forward,
)
from .traces import ConvergenceTrace, trace_convergence
from .variation import ConfigurationRuns, VariationStudy, collect_rankings

__all__ = [
    "average_difference_degree",
    "cross_difference_degree",
    "difference_degree",
    "identical_prefix_length",
    "ranking",
    "ConfigurationRuns",
    "VariationStudy",
    "collect_rankings",
    "ErrorReport",
    "error_report",
    "epsilon_error_study",
    "DivergenceReport",
    "FirstDivergence",
    "explain_trace_files",
    "explain_traces",
    "first_divergence",
    "taint_forward",
    "ConvergenceTrace",
    "trace_convergence",
]
