"""The difference-degree metric of §V-C (Tables II and III).

To compare two independent PageRank results the paper ranks the pages
(vertices) by weight and computes "the minimal index where the two
results differ", called the **difference degree**.  A larger degree
means the disagreement appears only among less significant pages —
"bigger is better".

Tables II and III report *average* difference degrees: over all
``C(k, 2)`` unordered pairs of runs of the same configuration
(Table II), and over all ``k·k`` ordered cross pairs of two different
configurations (Table III, "averaging the difference degrees pairwise").
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Sequence

import numpy as np

__all__ = [
    "ranking",
    "difference_degree",
    "average_difference_degree",
    "cross_difference_degree",
    "identical_prefix_length",
]


def ranking(scores: np.ndarray) -> np.ndarray:
    """Vertex ids ordered by descending score.

    Ties break by ascending vertex id (stable sort on the negated
    scores), so the ranking is a deterministic function of the scores.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError("scores must be one-dimensional")
    return np.argsort(-scores, kind="stable").astype(np.int64)


def difference_degree(r1: np.ndarray, r2: np.ndarray) -> int:
    """Minimal index at which the two rankings differ.

    Equal rankings get degree ``len(r1)`` (one past the end) — the
    paper's "no difference" case.  Using the paper's own example:
    ``r1 = [1,2,3,5,7]`` vs ``r2 = [1,2,3,7,5]`` gives 3.
    """
    r1 = np.asarray(r1)
    r2 = np.asarray(r2)
    if r1.shape != r2.shape:
        raise ValueError(f"rankings differ in length: {r1.shape} vs {r2.shape}")
    neq = np.nonzero(r1 != r2)[0]
    return int(neq[0]) if neq.size else int(r1.size)


def average_difference_degree(rankings: Sequence[np.ndarray]) -> float:
    """Mean difference degree over all unordered pairs (Table II cells).

    With 5 runs this averages ``C(5,2) = 10`` degrees, exactly as the
    paper describes.
    """
    if len(rankings) < 2:
        raise ValueError("need at least two rankings")
    degrees = [difference_degree(a, b) for a, b in combinations(rankings, 2)]
    return float(np.mean(degrees))


def cross_difference_degree(
    group_a: Sequence[np.ndarray], group_b: Sequence[np.ndarray]
) -> float:
    """Mean difference degree across two configurations (Table III cells)."""
    if not group_a or not group_b:
        raise ValueError("both groups must be non-empty")
    degrees = [difference_degree(a, b) for a, b in product(group_a, group_b)]
    return float(np.mean(degrees))


def identical_prefix_length(rankings: Sequence[np.ndarray]) -> int:
    """Length of the ranking prefix on which *all* runs agree.

    The paper observes that "for the pages with higher rank (e.g.,
    ranking number smaller than 100), the results from all these selected
    scenarios are identical"; this computes that number for a set of
    runs.
    """
    if not rankings:
        raise ValueError("need at least one ranking")
    first = rankings[0]
    prefix = len(first)
    for other in rankings[1:]:
        prefix = min(prefix, difference_degree(first, other))
    return prefix
