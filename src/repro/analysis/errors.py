"""Precision and range-of-errors analysis (the paper's future-work item #2).

§V-C measures *where in the ranking* nondeterministic PageRank runs
disagree, and defers "more discussions (e.g., precision and range of
errors of the results)" to future work.  This module supplies them:

* :func:`error_report` — numeric error statistics of one run against a
  high-precision reference: absolute/relative magnitudes, quantiles,
  and two rank-space measures (top-k set agreement and Spearman
  footrule displacement) that connect numeric error back to the
  paper's difference-degree view;
* :func:`epsilon_error_study` — how the error envelope scales with the
  local-convergence threshold ε, across schedules: the quantitative
  underpinning of the paper's observation that tighter ε "filters the
  noise".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.runner import run
from .difference import ranking

__all__ = ["ErrorReport", "error_report", "epsilon_error_study"]


@dataclass(frozen=True)
class ErrorReport:
    """Numeric + rank-space error of one result vector vs a reference."""

    max_abs: float
    mean_abs: float
    rms: float
    q50: float  #: median absolute error
    q90: float
    q99: float
    max_rel: float  #: max |err| / max(|ref|, floor)
    top_k: int
    top_k_agreement: float  #: |top-k(result) ∩ top-k(ref)| / k
    footrule_top_k: float  #: mean |rank displacement| of the ref's top-k

    def as_dict(self) -> dict:
        return {
            "max_abs": self.max_abs,
            "mean_abs": self.mean_abs,
            "rms": self.rms,
            "q50": self.q50,
            "q90": self.q90,
            "q99": self.q99,
            "max_rel": self.max_rel,
            f"top{self.top_k}_agreement": self.top_k_agreement,
            f"footrule_top{self.top_k}": self.footrule_top_k,
        }


def error_report(
    values: np.ndarray,
    reference: np.ndarray,
    *,
    top_k: int = 50,
    rel_floor: float = 1e-12,
) -> ErrorReport:
    """Compare a result vector against a reference.

    Non-finite entries must match between the two vectors (unreached =
    unreached); they are excluded from the numeric statistics.
    """
    values = np.asarray(values, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if values.shape != reference.shape:
        raise ValueError(f"shape mismatch: {values.shape} vs {reference.shape}")
    finite_v = np.isfinite(values)
    finite_r = np.isfinite(reference)
    if not np.array_equal(finite_v, finite_r):
        raise ValueError("finite/non-finite pattern differs from the reference")
    v = values[finite_v]
    r = reference[finite_r]
    err = np.abs(v - r)
    if err.size == 0:
        zeros = 0.0
        return ErrorReport(zeros, zeros, zeros, zeros, zeros, zeros, zeros,
                           top_k, 1.0, 0.0)

    k = min(top_k, values.size)
    rank_v = ranking(np.where(np.isfinite(values), values, -np.inf))
    rank_r = ranking(np.where(np.isfinite(reference), reference, -np.inf))
    top_v = set(rank_v[:k].tolist())
    top_r = set(rank_r[:k].tolist())
    agreement = len(top_v & top_r) / k if k else 1.0
    # Spearman footrule over the reference's top-k: how far did each of
    # the truly-important vertices move in the measured ranking?
    pos_v = np.empty(values.size, dtype=np.int64)
    pos_v[rank_v] = np.arange(values.size)
    displacement = [abs(int(pos_v[vtx]) - i) for i, vtx in enumerate(rank_r[:k].tolist())]
    footrule = float(np.mean(displacement)) if displacement else 0.0

    return ErrorReport(
        max_abs=float(err.max()),
        mean_abs=float(err.mean()),
        rms=float(np.sqrt(np.mean(err**2))),
        q50=float(np.quantile(err, 0.5)),
        q90=float(np.quantile(err, 0.9)),
        q99=float(np.quantile(err, 0.99)),
        max_rel=float((err / np.maximum(np.abs(r), rel_floor)).max()),
        top_k=k,
        top_k_agreement=agreement,
        footrule_top_k=footrule,
    )


def epsilon_error_study(
    program_factory: Callable[[float], object],
    graph: DiGraph,
    reference: np.ndarray,
    *,
    epsilons: Sequence[float] = (1e-1, 1e-2, 1e-3),
    modes: Sequence[tuple[str, str, int]] = (
        ("DE", "deterministic", 4),
        ("8NE", "nondeterministic", 8),
    ),
    seeds: Sequence[int] = (0, 1, 2),
    top_k: int = 50,
) -> list[dict]:
    """Error envelope vs ε, per execution mode.

    ``program_factory(epsilon)`` builds the program; each row reports
    the worst (max over seeds) error statistics for one (mode, ε) cell.
    """
    rows: list[dict] = []
    for label, mode, threads in modes:
        for eps in epsilons:
            worst_max = 0.0
            worst_footrule = 0.0
            agreements = []
            for seed in seeds:
                res = run(
                    program_factory(eps),
                    graph,
                    mode=mode,
                    config=EngineConfig(threads=threads, seed=seed),
                )
                if not res.converged:
                    raise RuntimeError(f"{label} eps={eps} seed={seed} did not converge")
                rep = error_report(res.result(), reference, top_k=top_k)
                worst_max = max(worst_max, rep.max_abs)
                worst_footrule = max(worst_footrule, rep.footrule_top_k)
                agreements.append(rep.top_k_agreement)
            rows.append(
                {
                    "config": label,
                    "epsilon": eps,
                    "worst max_abs": worst_max,
                    "worst footrule": worst_footrule,
                    "mean top-k agreement": float(np.mean(agreements)),
                }
            )
    return rows
