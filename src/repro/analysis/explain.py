"""Cross-run divergence explainer: from a first race to final rankings.

The paper quantifies nondeterminism with the difference degree (§V-C) —
*how far down* two runs' rankings first disagree — but the number alone
says nothing about *why*.  With flight-recorder traces
(:mod:`repro.obs.recorder`) of two runs of the same workload, this
module closes that gap in three steps:

1. **Align** the two provenance streams on run-independent keys.  Both
   engines emit events in canonical order (iteration, field, edge;
   per-edge Lemma-1 read pairs before the Lemma-2 commit), so a key of
   ``(iteration, field, eid, kind, participants)`` matches the "same"
   racy access across runs regardless of which value won.
2. **Find the first divergent event** — the earliest aligned position
   where the committed value, the winning writer, or the recorded
   Defs. 1–3 classification differs (or where one run recorded a race
   the other did not have).  Everything before it is, by construction,
   identical in both traces.
3. **Walk the edge-dependence chain forward** from that event: a later
   event is *tainted* if it touches an already-tainted edge or shares a
   vertex with the tainted set (the update-function footprint by the
   §II scope rule).  The tainted vertices are the set of final results
   the first race can explain; intersecting them with the first
   disagreeing rank positions connects the race to the difference
   degree of :mod:`repro.analysis.difference`.

The recorder embeds each run's final ranking in its ``run_end`` record,
so one trace pair is self-contained: no re-run needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .difference import difference_degree

__all__ = [
    "FirstDivergence",
    "DivergenceReport",
    "first_divergence",
    "taint_forward",
    "explain_traces",
    "explain_trace_files",
]

# Per-edge emission order: read pairs, then lone writes, then the commit.
_KIND_ORDER = {"read": 0, "write": 1, "commit": 2}


def _event_key(ev: dict) -> tuple:
    """Run-independent alignment key; sorts in canonical emission order."""
    kind = ev["kind"]
    if kind == "read":
        tail = (ev["reader"], ev["writer"])
    elif kind == "write":
        tail = (ev["writer"], -1)
    else:  # commit: one per (iteration, field, eid) regardless of winner
        tail = (-1, -1)
    return (ev["iteration"], ev["field"], ev["eid"], _KIND_ORDER[kind], *tail)


def _event_vids(ev: dict) -> set[int]:
    """Vertices whose update functions touched this event's edge."""
    kind = ev["kind"]
    if kind == "read":
        return {ev["reader"], ev["writer"]}
    vids = {ev["writer"]}
    for entry in ev.get("lost", ()):
        vids.add(entry["vid"])
    return vids


def _compare(kind: str, a: dict, b: dict) -> str | None:
    """How two aligned events differ: 'value' | 'winner' | 'provenance' | None."""
    if kind == "commit" and a["writer"] != b["writer"]:
        return "winner"
    if a.get("value") != b.get("value"):
        return "value"
    if kind == "commit":
        if a.get("lost") != b.get("lost") or a.get("rule") != b.get("rule"):
            return "provenance"
    elif kind == "read":
        if (a.get("order"), a.get("rule"), a.get("count")) != (
            b.get("order"), b.get("rule"), b.get("count")
        ):
            return "provenance"
    else:
        if a.get("writer_thread") != b.get("writer_thread"):
            return "provenance"
    return None


@dataclass(frozen=True)
class FirstDivergence:
    """The earliest aligned provenance event where two traces disagree.

    ``kind`` classifies the disagreement: ``"value"`` (same race, a
    different value committed/observed), ``"winner"`` (a different
    writer won the Lemma-2 commit), ``"provenance"`` (same values but a
    different Defs. 1–3 classification — a latent divergence), or
    ``"only-in-a"`` / ``"only-in-b"`` (one run recorded a race the
    other's schedule did not produce).  ``event_a`` / ``event_b`` are
    the raw events (``None`` on the side that lacks one);
    ``agreed_events`` counts the aligned keys identical in both traces
    before this one.
    """

    iteration: int
    field: str
    eid: int
    kind: str
    event_kind: str
    event_a: dict | None
    event_b: dict | None
    agreed_events: int

    def describe(self) -> str:
        head = (
            f"iteration {self.iteration}, field {self.field!r}, "
            f"edge {self.eid} ({self.event_kind}): {self.kind}"
        )
        lines = [head]
        for label, ev in (("A", self.event_a), ("B", self.event_b)):
            if ev is None:
                lines.append(f"  {label}: (no such event recorded)")
            elif ev["kind"] == "commit":
                lost = ", ".join(
                    f"lost {e['value']!r} from v{e['vid']}@t{e['thread']} ({e['order']})"
                    for e in ev.get("lost", ())
                ) or "uncontended"
                lines.append(
                    f"  {label}: v{ev['writer']}@t{ev['writer_thread']} committed "
                    f"{ev['value']!r} [{ev['rule']}; {lost}]"
                )
            elif ev["kind"] == "read":
                lines.append(
                    f"  {label}: v{ev['reader']}@t{ev['reader_thread']} observed "
                    f"{ev['value']!r} vs write by v{ev['writer']}@t{ev['writer_thread']} "
                    f"[{ev['rule']}, {ev['order']}, x{ev['count']}]"
                )
            else:
                lines.append(
                    f"  {label}: v{ev['writer']}@t{ev['writer_thread']} wrote "
                    f"{ev['value']!r} [{ev['rule']}, {ev['order']}]"
                )
        return "\n".join(lines)


def first_divergence(
    events_a: list[dict], events_b: list[dict]
) -> FirstDivergence | None:
    """Align two provenance streams; return the earliest disagreement.

    Events are grouped by :func:`_event_key` and walked in canonical
    order; the first key whose event lists differ (or that only one run
    has) is the divergence.  ``None`` means the traces agree on every
    aligned event.
    """
    idx_a: dict[tuple, list[dict]] = {}
    idx_b: dict[tuple, list[dict]] = {}
    for idx, events in ((idx_a, events_a), (idx_b, events_b)):
        for ev in events:
            idx.setdefault(_event_key(ev), []).append(ev)
    agreed = 0
    for key in sorted(set(idx_a) | set(idx_b)):
        la, lb = idx_a.get(key), idx_b.get(key)
        iteration, fieldname, eid, kind_no, *_ = key
        event_kind = next(k for k, v in _KIND_ORDER.items() if v == kind_no)
        if la is None or lb is None:
            return FirstDivergence(
                iteration=iteration, field=fieldname, eid=eid,
                kind="only-in-b" if la is None else "only-in-a",
                event_kind=event_kind,
                event_a=None if la is None else la[0],
                event_b=None if lb is None else lb[0],
                agreed_events=agreed,
            )
        for a, b in zip(la, lb):
            how = _compare(event_kind, a, b)
            if how is not None:
                return FirstDivergence(
                    iteration=iteration, field=fieldname, eid=eid,
                    kind=how, event_kind=event_kind,
                    event_a=a, event_b=b, agreed_events=agreed,
                )
        if len(la) != len(lb):
            longer, shorter = (la, lb) if len(la) > len(lb) else (lb, la)
            return FirstDivergence(
                iteration=iteration, field=fieldname, eid=eid,
                kind="only-in-a" if len(la) > len(lb) else "only-in-b",
                event_kind=event_kind,
                event_a=la[len(shorter)] if len(la) > len(lb) else None,
                event_b=lb[len(shorter)] if len(lb) > len(la) else None,
                agreed_events=agreed,
            )
        agreed += 1
    return None


def taint_forward(
    events_a: list[dict],
    events_b: list[dict],
    divergence: FirstDivergence,
    graph=None,
) -> tuple[set[int], set[tuple[str, int]]]:
    """Walk the edge-dependence chain forward from the first divergence.

    Returns ``(affected_vertices, tainted_edges)``.  Seeded with the
    divergent event's participants (and, when ``graph`` is given, the
    divergent edge's endpoints — covering readers the sampling policy
    dropped), the single forward pass over the union of both traces'
    events absorbs every event that touches a tainted edge or shares a
    vertex with the affected set: by the §II scope rule that is exactly
    how a racy value can propagate.
    """
    affected: set[int] = set()
    tainted: set[tuple[str, int]] = {(divergence.field, divergence.eid)}
    for ev in (divergence.event_a, divergence.event_b):
        if ev is not None:
            affected |= _event_vids(ev)
    if graph is not None:
        affected.add(int(graph.edge_src[divergence.eid]))
        affected.add(int(graph.edge_dst[divergence.eid]))
    start = (divergence.iteration, divergence.field, divergence.eid,
             _KIND_ORDER[divergence.event_kind])
    seen: set[tuple] = set()
    merged: list[tuple[tuple, dict]] = []
    for events in (events_a, events_b):
        for ev in events:
            key = _event_key(ev)
            if key[:4] < start:
                continue
            dedup = (key, ev.get("writer_thread"), ev.get("reader_thread"),
                     repr(ev.get("value")))
            if dedup in seen:
                continue
            seen.add(dedup)
            merged.append((key, ev))
    merged.sort(key=lambda item: item[0])
    for _, ev in merged:
        vids = _event_vids(ev)
        edge = (ev["field"], ev["eid"])
        if edge in tainted or (vids & affected):
            affected |= vids
            tainted.add(edge)
    return affected, tainted


@dataclass
class DivergenceReport:
    """Everything :func:`explain_traces` established about a trace pair."""

    meta_a: dict = field(default_factory=dict)
    meta_b: dict = field(default_factory=dict)
    events_a: int = 0
    events_b: int = 0
    first: FirstDivergence | None = None
    affected_vertices: list[int] = field(default_factory=list)
    tainted_edges: int = 0
    ranking_a: list[int] | None = None
    ranking_b: list[int] | None = None
    degree: int | None = None
    divergent_rank_vertices: list[int] = field(default_factory=list)
    explained: bool | None = None
    warnings: list[str] = field(default_factory=list)

    def render(self) -> str:
        meta = self.meta_a or self.meta_b
        lines = [
            "Divergence explainer: "
            f"{meta.get('program', '?')} under {meta.get('mode', '?')} "
            f"(threads={meta.get('threads', '?')}, "
            f"seeds A={self.meta_a.get('seed', '?')} B={self.meta_b.get('seed', '?')})",
            f"  provenance events: {self.events_a} (A) vs {self.events_b} (B)",
        ]
        for w in self.warnings:
            lines.append(f"  warning: {w}")
        if self.first is None:
            lines.append("  traces agree on every aligned provenance event")
        else:
            lines.append(
                f"  agreed on {self.first.agreed_events} aligned events, then:"
            )
            lines.extend("  " + ln for ln in self.first.describe().splitlines())
            lines.append(
                f"  forward taint from the first race: "
                f"{len(self.affected_vertices)} vertices via {self.tainted_edges} edges"
            )
        if self.degree is not None:
            n = len(self.ranking_a or ())
            if self.degree >= n:
                lines.append(f"  rankings: identical (difference degree {self.degree})")
            else:
                pair = ", ".join(
                    f"v{v}" for v in self.divergent_rank_vertices
                ) or "?"
                verdict = (
                    "explained by the first race"
                    if self.explained
                    else "NOT in the tainted set"
                )
                lines.append(
                    f"  rankings: difference degree {self.degree} "
                    f"(first {self.degree} ranks agree); rank {self.degree} holds "
                    f"{pair} — {verdict}"
                )
        else:
            lines.append("  rankings: not embedded in both traces")
        return "\n".join(lines)


def explain_traces(
    records_a: list[dict], records_b: list[dict], graph=None
) -> DivergenceReport:
    """Explain how two recorded runs of one workload came to differ.

    ``records_a`` / ``records_b`` are full trace record lists (from
    :func:`repro.obs.read_trace` or ``Recorder.records``).  The report
    carries the first divergent provenance event, the forward-tainted
    vertex set, and — when both traces embed final rankings — the
    difference degree with a verdict on whether the first race explains
    the first disagreeing rank.
    """
    report = DivergenceReport()
    metas = []
    for records in (records_a, records_b):
        meta = next((r for r in records if r.get("type") == "run_start"), {})
        metas.append(meta)
    report.meta_a, report.meta_b = metas
    for key in ("mode", "program", "threads"):
        va, vb = report.meta_a.get(key), report.meta_b.get(key)
        if va != vb:
            report.warnings.append(
                f"traces differ in {key}: {va!r} vs {vb!r} — not the same workload?"
            )
    for records, label in ((records_a, "A"), (records_b, "B")):
        if records and records[-1].get("type") == "truncated":
            report.warnings.append(f"trace {label} is truncated")

    events_a = [r for r in records_a if r.get("type") == "provenance"]
    events_b = [r for r in records_b if r.get("type") == "provenance"]
    report.events_a, report.events_b = len(events_a), len(events_b)
    report.first = first_divergence(events_a, events_b)
    if report.first is not None:
        affected, tainted = taint_forward(events_a, events_b, report.first, graph)
        report.affected_vertices = sorted(affected)
        report.tainted_edges = len(tainted)

    ends = [
        next((r for r in records if r.get("type") == "run_end"), {})
        for records in (records_a, records_b)
    ]
    rank_a, rank_b = ends[0].get("ranking"), ends[1].get("ranking")
    if rank_a is not None and rank_b is not None and len(rank_a) == len(rank_b):
        report.ranking_a, report.ranking_b = rank_a, rank_b
        report.degree = difference_degree(
            np.asarray(rank_a, dtype=np.int64), np.asarray(rank_b, dtype=np.int64)
        )
        if report.degree < len(rank_a):
            divergent = {rank_a[report.degree], rank_b[report.degree]}
            report.divergent_rank_vertices = sorted(divergent)
            if report.first is not None:
                report.explained = divergent <= set(report.affected_vertices)
            else:
                report.explained = False
    return report


def explain_trace_files(path_a: str, path_b: str, graph=None) -> DivergenceReport:
    """:func:`explain_traces` over two JSONL trace files."""
    from ..obs.trace import read_trace

    return explain_traces(read_trace(path_a), read_trace(path_b), graph=graph)
