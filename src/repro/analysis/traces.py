"""Convergence traces: per-iteration progress curves.

Attaches an observer to any barriered engine run and records, per
iteration, the active-set size, the residual (max absolute change of
the primary result), and — for nondeterministic runs — the conflict
rate.  These are the curves behind the paper's iteration-count
comparisons: they show *how* asynchronous execution converges faster
(front-loaded residual decay) rather than just that it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.program import VertexProgram
from ..engine.runner import run

__all__ = ["ConvergenceTrace", "trace_convergence"]


@dataclass
class ConvergenceTrace:
    """Per-iteration progress of one run."""

    mode: str
    active_sizes: list[int] = field(default_factory=list)
    residuals: list[float] = field(default_factory=list)
    conflict_counts: list[int] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        return len(self.active_sizes)

    def total_work(self) -> int:
        """Total updates executed (sum of active-set sizes)."""
        return int(sum(self.active_sizes))

    def residual_halflife(self) -> int:
        """First iteration at which the residual fell below half its
        initial value; ``iterations`` if it never did."""
        if not self.residuals:
            return 0
        target = self.residuals[0] / 2.0
        for i, r in enumerate(self.residuals):
            if r <= target:
                return i
        return self.iterations

    def rows(self) -> list[dict]:
        out = []
        for i in range(self.iterations):
            row = {
                "iteration": i,
                "active": self.active_sizes[i],
                "residual": self.residuals[i],
            }
            if i < len(self.conflict_counts):
                row["conflicts"] = self.conflict_counts[i]
            out.append(row)
        return out


def trace_convergence(
    program_factory: Callable[[], VertexProgram],
    graph: DiGraph,
    *,
    mode: str = "nondeterministic",
    config: EngineConfig | None = None,
) -> ConvergenceTrace:
    """Run once, recording the per-iteration progress curve."""
    program = program_factory()
    trace = ConvergenceTrace(mode=mode)
    prev = np.array(program.result(program.make_state(graph)), dtype=np.float64)

    def observer(iteration, state, next_schedule):
        nonlocal prev
        cur = np.array(program.result(state), dtype=np.float64, copy=True)
        with np.errstate(invalid="ignore"):
            delta = np.abs(cur - prev)
        delta = delta[np.isfinite(delta)]
        trace.residuals.append(float(delta.max()) if delta.size else 0.0)
        prev = cur

    result = run(program, graph, mode=mode, config=config, observer=observer)
    # active sizes recorded by the engine are authoritative; overwrite the
    # observer's placeholder with the per-iteration stats.
    trace.active_sizes = [s.num_active for s in result.iterations]
    if result.conflicts.per_iteration:
        trace.conflict_counts = [
            result.conflicts.per_iteration.get(i, 0)
            for i in range(result.num_iterations)
        ]
    trace.converged = result.converged
    return trace
