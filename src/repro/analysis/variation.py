"""Multi-run result-variation studies (§V-C machinery).

Drives repeated PageRank (or any approximate-convergence program)
executions under the configurations of Tables II/III — deterministic
("DE") and nondeterministic at several thread counts ("4NE", "8NE",
"16NE") — and collects the converged rankings for difference-degree
analysis.

Deterministic runs are bit-reproducible in this engine, so to reproduce
the paper's nonzero DE-vs-DE degrees (caused by float non-associativity
on real hardware) DE runs are executed with ``fp_noise=True``: a seeded
permutation of each gather's summation order, the controlled equivalent
of the same physical effect.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..graph import DiGraph
from ..engine.config import EngineConfig
from ..engine.program import VertexProgram
from ..engine.runner import run
from ..obs import Telemetry
from .difference import average_difference_degree, cross_difference_degree, ranking

__all__ = ["ConfigurationRuns", "collect_rankings", "VariationStudy"]


@dataclass(frozen=True)
class ConfigurationRuns:
    """Rankings produced by ``n`` independent runs of one configuration."""

    label: str  #: e.g. "DE", "4NE", "8NE", "16NE"
    rankings: tuple[np.ndarray, ...]
    #: Per-run iteration counts, sourced from each run's telemetry trace.
    iteration_counts: tuple[int, ...] = ()

    def self_average(self) -> float:
        """Table II cell: average degree over all C(n,2) pairs."""
        return average_difference_degree(self.rankings)


def collect_rankings(
    program_factory: Callable[[], VertexProgram],
    graph: DiGraph,
    *,
    label: str,
    mode: str,
    threads: int = 4,
    runs: int = 5,
    base_seed: int = 100,
    fp_noise: bool = False,
    max_iterations: int = 100_000,
    vectorized: bool | str = False,
    trace_dir: str | None = None,
) -> ConfigurationRuns:
    """Execute ``runs`` independent runs and rank their results.

    Each run gets a distinct seed (``base_seed + i``): for DE with
    ``fp_noise`` that varies the summation orders; for NE it varies the
    environmental jitter, i.e. the execution interleaving.

    ``vectorized`` opts nondeterministic runs into the whole-graph fast
    path (bit-identical rankings); it is ignored for other modes, where
    the flag does not apply.

    Every run executes under a :class:`~repro.obs.Telemetry` sink, and
    the convergence verdict and iteration counts the study reports are
    read back from the telemetry — the variation tables and the traces
    agree by construction.  With ``trace_dir`` set (created if missing),
    each run's JSONL trace is kept as ``<label>_run<i>.jsonl``.
    """
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    rankings: list[np.ndarray] = []
    iteration_counts: list[int] = []
    for i in range(runs):
        cfg = EngineConfig(
            threads=threads,
            seed=base_seed + i,
            fp_noise=fp_noise,
            max_iterations=max_iterations,
        )
        sink = Telemetry(
            trace_path=os.path.join(trace_dir, f"{label}_run{i}.jsonl")
            if trace_dir is not None
            else None
        )
        res = run(
            program_factory(),
            graph,
            mode=mode,
            config=cfg,
            vectorized=vectorized if mode == "nondeterministic" else False,
            telemetry=sink,
        )
        summary = sink.run_summary
        if not summary["converged"]:
            raise RuntimeError(
                f"{label} run {i} did not converge within {max_iterations} iterations"
            )
        iteration_counts.append(int(summary["iterations"]))
        rankings.append(ranking(res.result()))
    return ConfigurationRuns(
        label=label,
        rankings=tuple(rankings),
        iteration_counts=tuple(iteration_counts),
    )


@dataclass
class VariationStudy:
    """A full §V-C study: several configurations, pairwise-compared."""

    configurations: Sequence[ConfigurationRuns]

    def table2(self) -> dict[str, float]:
        """"X vs X" rows: average degree within each configuration."""
        return {f"{c.label} vs. {c.label}": c.self_average() for c in self.configurations}

    def table3(self) -> dict[str, float]:
        """"X vs Y" rows: average degree between distinct configurations."""
        out: dict[str, float] = {}
        cfgs = list(self.configurations)
        for i in range(len(cfgs)):
            for j in range(i + 1, len(cfgs)):
                a, b = cfgs[i], cfgs[j]
                out[f"{a.label} vs. {b.label}"] = cross_difference_degree(
                    a.rankings, b.rankings
                )
        return out

    def identical_prefix(self) -> int:
        """Prefix of the ranking all runs of all configurations agree on."""
        from .difference import identical_prefix_length

        all_rankings = [r for c in self.configurations for r in c.rankings]
        return identical_prefix_length(all_rankings)
