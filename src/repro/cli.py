"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1`` / ``figure3`` / ``table2`` / ``table3`` / ``ablations``
    Regenerate the paper's evaluation artifacts at a chosen scale.
``eligibility [ALGORITHM ...]``
    Print the Theorem 1/2 (and push-mode) verdicts for the built-in
    algorithm zoo or a named subset.
``run ALGORITHM``
    Execute one algorithm on a stand-in dataset under a chosen executor
    and print the run summary (and optionally the conflict audit).
``speed ALGORITHM``
    Convergence-speed report (iterations vs threads/delay vs the DE and
    BSP baselines).
``trace {summarize,diff,explain,lint,stitch,merge} TRACE [TRACE]``
    Query recorded traces: condense one, align two, explain the first
    divergent race of a pair, validate structure/event orders, join
    a killed run's trace with its resumed continuation, or interleave
    per-worker trace segments with their master trace.
``top TRACE``
    Live monitor: tail a (possibly still-growing) trace and render the
    per-iteration phase breakdown, frontier size, conflicts, worker
    skew, and peak RSS; refreshes until the run ends.  ``--once``
    prints a single snapshot.
``report --phases TRACE``
    Render the phase breakdown of a finished trace as a table
    (``report`` without ``--phases`` regenerates the evaluation).
``serve --data-dir DIR``
    Run the always-on graph service: journaled job lifecycle, standing
    named graphs, supervised concurrent jobs, crash recovery with
    bit-identical resume.  SIGTERM drains to the next barrier
    checkpoint; ``kill -9`` loses nothing the journal recorded.
``client [--url URL] {submit,status,watch,result,cancel,jobs,graphs}``
    Talk to a running service over HTTP.

Examples
--------
::

    python -m repro table1 --scale 10
    python -m repro eligibility WCC PageRank AntiParity
    python -m repro run WCC --dataset web-google-mini --mode nondeterministic \
        --threads 8 --seed 3 --audit
    python -m repro run PageRank --record a.jsonl --run-seed 0
    python -m repro run PageRank --record b.jsonl --run-seed 1
    python -m repro trace explain a.jsonl b.jsonl
    python -m repro run PageRank --faults crash@3 --checkpoint pr.ckpt
    python -m repro run PageRank --resume pr.ckpt
    python -m repro figure3 --explain --scale 9
    python -m repro speed BFS --dataset cage15-mini --scale 9
    python -m repro run WCC --backend process --trace t.jsonl --trace-workers
    python -m repro trace merge t.jsonl -o merged.jsonl
    python -m repro report --phases merged.jsonl
    python -m repro top t.jsonl --once
    python -m repro serve --data-dir svc --port 0
    python -m repro client --url http://127.0.0.1:8750 graphs \
        --register web --spec '{"dataset":"web-google-mini","scale":12}'
    python -m repro client submit WCC --graph web --wait
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .algorithms import (
    BFS,
    SSSP,
    AntiParity,
    ConflictColoring,
    EdgeIncrementCounter,
    KCoreDecomposition,
    MaxLabelPropagation,
    PageRank,
    SpMV,
    WeaklyConnectedComponents,
)
from .engine import EngineConfig, run
from .experiments import (
    format_table,
    run_delay_sweep,
    run_dispatch_study,
    run_figure3,
    run_table1,
    run_table2,
    run_table3,
    run_torn_study,
)
from .graph import load_dataset
from .graph.datasets import dataset_names
from .theory import audit_run, check_program, measure_convergence_speed

__all__ = ["main", "ALGORITHMS"]

#: Algorithm name -> zero-argument factory.
ALGORITHMS: dict[str, Callable] = {
    "PageRank": lambda: PageRank(epsilon=1e-3),
    "WCC": WeaklyConnectedComponents,
    "SSSP": lambda: SSSP(source=0),
    "BFS": lambda: BFS(source=0),
    "SpMV": lambda: SpMV(),
    "MaxLabel": MaxLabelPropagation,
    "EdgeIncrementCounter": lambda: EdgeIncrementCounter(target=3),
    "AntiParity": AntiParity,
    "ConflictColoring": ConflictColoring,  # Theorem-2 oscillator (matchings)
    "KCore": KCoreDecomposition,  # requires a symmetric graph (cage15-mini is)
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Is Your Graph Algorithm Eligible for "
        "Nondeterministic Execution?' (ICPP 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p):
        p.add_argument("--scale", type=int, default=9,
                       help="log2 of the stand-in graph size (default 9)")
        p.add_argument("--seed", type=int, default=7, help="dataset seed")

    p = sub.add_parser("table1", help="Table I: graphs used in the experiments")
    add_scale(p)

    p = sub.add_parser("figure3", help="Fig. 3: computing times DE vs NE")
    add_scale(p)
    p.add_argument("--threads", type=int, nargs="+", default=[4, 8, 16])
    p.add_argument("--explain", action="store_true",
                   help="attribute the NE panels' run-to-run ranking variance "
                        "to recorded races (two seeded runs per panel)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="with --explain: keep the per-panel provenance traces")

    p = sub.add_parser("table2", help="Table II: difference degrees, same config")
    add_scale(p)
    p.add_argument("--runs", type=int, default=5)

    p = sub.add_parser("table3", help="Table III: difference degrees, cross config")
    add_scale(p)
    p.add_argument("--runs", type=int, default=5)

    p = sub.add_parser("ablations", help="A1-A3 ablation studies")
    add_scale(p)

    p = sub.add_parser("eligibility", help="Theorem 1/2 verdicts")
    p.add_argument("algorithms", nargs="*", metavar="ALGORITHM",
                   help=f"subset of {', '.join(ALGORITHMS)} (default: all)")

    p = sub.add_parser("run", help="execute one algorithm")
    p.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p.add_argument("--dataset", default="web-google-mini", choices=dataset_names())
    add_scale(p)
    p.add_argument("--mode", default="nondeterministic",
                   choices=["sync", "deterministic", "chromatic",
                            "nondeterministic", "pure-async", "threads",
                            "delta"])
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--backend", default=None, choices=["process"],
                   help="nondeterministic mode only: 'process' executes the "
                        "vectorized model across --threads OS worker "
                        "processes over shared memory (bit-identical to the "
                        "single-process fast path)")
    p.add_argument("--direction", default="pull",
                   choices=["pull", "push", "auto"],
                   help="nondeterministic mode only: per-iteration execution "
                        "direction — 'pull' (dense whole-graph masks, the "
                        "default), 'push' (sparse frontier-driven scatter), "
                        "or 'auto' (Beamer-style hybrid); all three are "
                        "bit-identical for push-eligible algorithms")
    p.add_argument("--out-of-core", default=None, metavar="DIR",
                   help="nondeterministic mode only: preprocess the graph "
                        "into a PSW shard store under DIR (reused if already "
                        "built) and execute interval-by-interval in bounded "
                        "RAM — bit-identical to the in-memory fast path")
    p.add_argument("--num-intervals", type=int, default=8, metavar="K",
                   help="with --out-of-core: vertex intervals / shards "
                        "(default 8)")
    p.add_argument("--delay", type=float, default=2.0)
    p.add_argument("--run-seed", type=int, default=0)
    p.add_argument("--max-iterations", type=int, default=100_000)
    p.add_argument("--audit", action="store_true",
                   help="cross-check conflicts against declared traits")
    p.add_argument("--trace-workers", action="store_true",
                   help="with --trace and a process backend: stream each "
                        "OS worker's trace segment into PATH.workers/ "
                        "(merge with `repro trace merge`, watch with "
                        "`repro top`)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="stream a JSONL telemetry trace of the run to PATH")
    p.add_argument("--telemetry", action="store_true",
                   help="print the per-iteration telemetry table after the run")
    p.add_argument("--record", default=None, metavar="PATH",
                   help="stream a JSONL race-provenance trace (flight recorder) "
                        "to PATH")
    p.add_argument("--record-policy", default="conflicts",
                   choices=["conflicts", "all", "reservoir"],
                   help="recorder sampling policy (default: conflicts)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault-injection plan, e.g. 'crash@3;torn@5:weight' "
                        "(kinds: crash, stall, torn, lost, delay)")
    p.add_argument("--watchdog", action="store_true",
                   help="arm the convergence watchdog (stall + Theorem-2 "
                        "oscillation detection with graceful degradation)")
    p.add_argument("--deadline-s", type=float, default=None, metavar="S",
                   help="wall-clock budget; a breach triggers the "
                        "degradation policy")
    p.add_argument("--fallback", default=None,
                   choices=["chromatic", "sync", "deterministic"],
                   help="deterministic engine the watchdog falls back to "
                        "(default chromatic)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="write a barrier checkpoint to PATH (atomically, "
                        "last one wins)")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="checkpoint every N iterations (default 1)")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="resume from a checkpoint written by --checkpoint; "
                        "continues bit-identically to the uninterrupted run")
    p.add_argument("--worker-timeout-s", type=float, default=60.0, metavar="S",
                   help="threads mode: barrier timeout before the stuck-worker "
                        "diagnostic fires (default 60; 0 = wait forever)")
    p.add_argument("--delta-threshold", type=float, default=None, metavar="T",
                   help="delta mode: residual magnitude below which a vertex "
                        "is left unscheduled (default: the kernel's)")
    p.add_argument("--delta-scheduling", default="frontier",
                   choices=["frontier", "priority"],
                   help="delta mode: dispatch every above-threshold vertex "
                        "('frontier') or only the largest residuals "
                        "('priority', Maiter-style)")
    p.add_argument("--mutate", action="store_true",
                   help="delta mode: after convergence, stream seeded edge "
                        "insert/delete batches through the engine and repair "
                        "the standing result incrementally")
    p.add_argument("--mutate-batches", type=int, default=3, metavar="K",
                   help="with --mutate: number of mutation batches (default 3)")
    p.add_argument("--mutate-frac", type=float, default=0.001, metavar="F",
                   help="with --mutate: fraction of edges touched per batch "
                        "(default 0.001)")
    p.add_argument("--mutate-seed", type=int, default=7,
                   help="with --mutate: seed of the mutation draw (part of "
                        "the data, like SSSP's weight seed)")

    p = sub.add_parser(
        "bench",
        help="run the canonical benchmark suites and append to the "
             "BENCH_*.json perf trajectories")
    p.add_argument("--suite", default="all",
                   choices=["nondet", "parallel", "incremental", "all"],
                   help="which suite to run (default: all)")
    p.add_argument("--scales", type=int, nargs="+", default=None,
                   metavar="N", help="rmat scales to measure")
    p.add_argument("--workers", type=int, nargs="+", default=None,
                   metavar="P",
                   help="worker counts for the parallel suite")
    p.add_argument("--direction", default=None,
                   choices=["push", "auto"],
                   help="nondet suite: additionally time the vectorized "
                        "engine in this direction for push-eligible "
                        "algorithms and record the hybrid speedup")
    p.add_argument("--out-of-core", action="store_true",
                   help="parallel suite: run the process backend against a "
                        "PSW shard store (bounded-RAM interval-sliced "
                        "execution) instead of the in-memory graph")
    p.add_argument("--num-intervals", type=int, default=8, metavar="K",
                   help="with --out-of-core: vertex intervals / shards "
                        "(default 8)")
    p.add_argument("--out-dir", default=None, metavar="DIR",
                   help="directory of the BENCH_*.json files "
                        "(default: the repo root)")
    p.add_argument("--allow-schema-skew", action="store_true",
                   help="permit appending to a BENCH file still carrying "
                        "the previous trajectory schema (upgrades the "
                        "file header in place, keeping old entries)")

    p = sub.add_parser("report", help="regenerate the full evaluation as markdown")
    add_scale(p)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--out", default=None, help="write to file instead of stdout")
    p.add_argument("--phases", default=None, metavar="TRACE",
                   help="instead of the evaluation: render the phase "
                        "breakdown of a recorded trace (worker segments "
                        "in TRACE.workers/ are merged in automatically)")

    p = sub.add_parser(
        "top",
        help="live phase monitor over a (possibly still-growing) trace")
    p.add_argument("trace", help="master JSONL trace path (e.g. the "
                                 "--trace target of a running repro run)")
    p.add_argument("--workers", default=None, metavar="DIR",
                   help="worker segment directory "
                        "(default: TRACE.workers/ when it exists)")
    p.add_argument("--once", action="store_true",
                   help="print a single snapshot and exit")
    p.add_argument("--refresh", type=float, default=1.0, metavar="S",
                   help="refresh interval in seconds (default 1.0)")
    p.add_argument("--last", type=int, default=12, metavar="N",
                   help="show only the trailing N iterations (default 12)")

    p = sub.add_parser("speed", help="convergence-speed report")
    p.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p.add_argument("--dataset", default="web-google-mini", choices=dataset_names())
    add_scale(p)
    p.add_argument("--threads", type=int, nargs="+", default=[2, 4, 8])
    p.add_argument("--delays", type=float, nargs="+", default=[1.0, 4.0])

    p = sub.add_parser("trace", help="query recorded JSONL traces")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    t = tsub.add_parser("summarize", help="condense one trace to headline numbers")
    t.add_argument("trace")
    t = tsub.add_parser("diff", help="first divergent provenance event of a pair")
    t.add_argument("trace_a")
    t.add_argument("trace_b")
    t = tsub.add_parser("explain",
                        help="explain a pair's divergence: first race, forward "
                             "taint, difference-degree verdict")
    t.add_argument("trace_a")
    t.add_argument("trace_b")
    t = tsub.add_parser("lint", help="validate trace structure and event orders")
    t.add_argument("trace")
    t = tsub.add_parser("stitch",
                        help="join a killed run's trace with its resumed "
                             "continuation, trimming the partial iteration "
                             "the resume replays")
    t.add_argument("trace_killed")
    t.add_argument("trace_resumed")
    t.add_argument("-o", "--out", required=True, metavar="PATH",
                   help="write the stitched JSONL trace to PATH")
    t = tsub.add_parser("merge",
                        help="interleave per-worker trace segments with "
                             "the master trace on (iteration, barrier "
                             "epoch) into one coherent JSONL stream")
    t.add_argument("trace", help="master JSONL trace")
    t.add_argument("--workers", default=None, metavar="DIR",
                   help="worker segment directory "
                        "(default: TRACE.workers/)")
    t.add_argument("-o", "--out", required=True, metavar="PATH",
                   help="write the merged JSONL trace to PATH")

    p = sub.add_parser(
        "serve",
        help="run the always-on graph service (journaled, crash-safe)")
    p.add_argument("--data-dir", required=True, metavar="DIR",
                   help="journal, graph registry, and job scratch root")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750,
                   help="TCP port (0 binds an ephemeral port and prints it)")
    p.add_argument("--max-concurrent", type=int, default=2,
                   help="jobs running at once (default 2)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission control: max queued+running jobs")
    p.add_argument("--retain-age-s", type=float, default=None, metavar="S",
                   help="retention: at startup, sweep terminal jobs whose "
                        "artifacts are older than S seconds")
    p.add_argument("--retain-count", type=int, default=None, metavar="N",
                   help="retention: at startup, keep only the N newest "
                        "terminal jobs")

    p = sub.add_parser("client", help="talk to a running repro service")
    p.add_argument("--url", default="http://127.0.0.1:8750",
                   help="service base URL")
    csub = p.add_subparsers(dest="client_command", required=True)
    c = csub.add_parser("submit", help="submit a job and print its id")
    c.add_argument("algorithm", help="algorithm name (see 'repro run')")
    c.add_argument("--graph", required=True,
                   help="registered graph name, or dataset name with --scale")
    c.add_argument("--scale", type=int, default=None,
                   help="treat --graph as a generator dataset at this scale")
    c.add_argument("--seed", type=int, default=7, help="dataset seed")
    c.add_argument("--mode", default="nondeterministic")
    c.add_argument("--threads", type=int, default=None)
    c.add_argument("--run-seed", type=int, default=None,
                   help="engine seed (config.seed)")
    c.add_argument("--checkpoint-every", type=int, default=1)
    c.add_argument("--record", default=None,
                   choices=["conflicts", "all", "reservoir"],
                   help="recorder provenance policy")
    c.add_argument("--deadline-s", type=float, default=None)
    c.add_argument("--throttle-s", type=float, default=0.0,
                   help="pacing sleep per iteration barrier (demos/tests)")
    c.add_argument("--mutate", action="store_true",
                   help="with --mode delta: stream seeded mutation batches "
                        "(the service generates them against its graph)")
    c.add_argument("--mutate-batches", type=int, default=3)
    c.add_argument("--mutate-frac", type=float, default=0.001)
    c.add_argument("--mutate-seed", type=int, default=7)
    c.add_argument("--wait", action="store_true",
                   help="block until the job is terminal")
    c = csub.add_parser("status", help="print one job's status as JSON")
    c.add_argument("job_id")
    c = csub.add_parser("watch", help="poll a job until it is terminal")
    c.add_argument("job_id")
    c.add_argument("--timeout", type=float, default=300.0)
    c = csub.add_parser("result", help="print a finished job's result")
    c.add_argument("job_id")
    c = csub.add_parser("cancel", help="request cancellation of a job")
    c.add_argument("job_id")
    c = csub.add_parser("jobs", help="list all jobs")
    c = csub.add_parser(
        "gc",
        help="sweep terminal jobs: forget them and delete their artifacts")
    c.add_argument("--max-age-s", type=float, default=None, metavar="S",
                   help="sweep terminal jobs older than S seconds")
    c.add_argument("--max-count", type=int, default=None, metavar="N",
                   help="keep only the N newest terminal jobs")
    c = csub.add_parser("graphs", help="list or register named graphs")
    c.add_argument("--register", default=None, metavar="NAME",
                   help="register NAME with the spec in --spec")
    c.add_argument("--spec", default=None, metavar="JSON",
                   help='graph spec, e.g. \'{"dataset":"web-google-mini",'
                        '"scale":12}\'')

    return parser


def _cmd_trace(args) -> int:
    from .analysis.explain import explain_trace_files, first_divergence
    from .obs import lint_trace, read_trace, stitch_traces, summarize_trace

    if args.trace_command == "summarize":
        summary = summarize_trace(read_trace(args.trace))
        width = max(len(k) for k in summary)
        for key, value in summary.items():
            print(f"{key:<{width}}  {value}")
        return 0
    if args.trace_command == "lint":
        issues = lint_trace(read_trace(args.trace))
        for issue in issues:
            print(issue)
        errors = sum(1 for i in issues if i.severity == "error")
        print(f"{errors} error(s), {len(issues) - errors} warning(s)")
        return 1 if errors else 0
    if args.trace_command == "diff":
        events = [
            [r for r in read_trace(p) if r.get("type") == "provenance"]
            for p in (args.trace_a, args.trace_b)
        ]
        div = first_divergence(*events)
        if div is None:
            print("traces agree on every aligned provenance event")
            return 0
        print(f"agreed on {div.agreed_events} aligned events, then:")
        print(div.describe())
        return 3
    if args.trace_command == "stitch":
        import json

        stitched, info = stitch_traces(
            read_trace(args.trace_killed), read_trace(args.trace_resumed)
        )
        with open(args.out, "w", encoding="utf-8") as fh:
            for rec in stitched:
                json.dump(rec, fh, separators=(",", ":"))
                fh.write("\n")
        at = (f" at the resume boundary (iteration {info['boundary']})"
              if info["boundary"] is not None else "")
        print(f"stitched {len(stitched)} records to {args.out} "
              f"(dropped {info['dropped']} replayed/torn records{at})")
        return 0
    if args.trace_command == "merge":
        from .obs import merge_worker_traces

        merged = merge_worker_traces(args.trace, args.workers,
                                     out_path=args.out)
        spans = sum(1 for r in merged if r.get("type") == "worker_span")
        torn = sum(1 for r in merged
                   if r.get("type") == "event"
                   and r.get("name") == "worker_segment_truncated")
        note = f", {torn} truncated segment(s)" if torn else ""
        print(f"merged {len(merged)} records ({spans} worker spans{note}) "
              f"to {args.out}")
        return 0
    # explain
    report = explain_trace_files(args.trace_a, args.trace_b)
    print(report.render())
    return 0 if report.first is None else 3


def _cmd_client(args) -> int:
    import json as _json

    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)

    def show(payload) -> None:
        print(_json.dumps(payload, indent=2, sort_keys=True))

    try:
        if args.client_command == "submit":
            graph: str | dict = args.graph
            if args.scale is not None:
                graph = {"dataset": args.graph, "scale": args.scale,
                         "seed": args.seed}
            config = {}
            if args.threads is not None:
                config["threads"] = args.threads
            if args.run_seed is not None:
                config["seed"] = args.run_seed
            spec = {"algorithm": args.algorithm, "graph": graph,
                    "config": config, "mode": args.mode,
                    "checkpoint_every": args.checkpoint_every,
                    "record": args.record, "deadline_s": args.deadline_s,
                    "throttle_s": args.throttle_s}
            if args.mutate:
                if args.mode != "delta":
                    print("--mutate requires --mode delta", file=sys.stderr)
                    return 2
                spec["mutations"] = {"num_batches": args.mutate_batches,
                                     "frac": args.mutate_frac,
                                     "seed": args.mutate_seed}
            job_id = client.submit(spec)
            print(job_id)
            if args.wait:
                status = client.wait(job_id)
                show(status)
                return 0 if status["state"] == "done" else 4
        elif args.client_command == "status":
            show(client.status(args.job_id))
        elif args.client_command == "watch":
            last = [None]

            def on_status(status):
                line = (f"{status['job_id']} {status['state']} "
                        f"iter={status['iteration']} "
                        f"ckpt={status['checkpoint_iteration']}")
                if line != last[0]:
                    print(line, flush=True)
                    last[0] = line

            status = client.wait(args.job_id, timeout=args.timeout,
                                 on_status=on_status)
            return 0 if status["state"] == "done" else 4
        elif args.client_command == "result":
            show(client.result(args.job_id))
        elif args.client_command == "cancel":
            show(client.cancel(args.job_id))
        elif args.client_command == "jobs":
            show(client.jobs())
        elif args.client_command == "gc":
            show(client.gc(max_age_s=args.max_age_s,
                           max_count=args.max_count))
        elif args.client_command == "graphs":
            if args.register is not None:
                if not args.spec:
                    print("--register needs --spec JSON", file=sys.stderr)
                    return 2
                client.register_graph(args.register,
                                      _json.loads(args.spec))
            show(client.graphs())
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 5
    return 0


def _load_trace_with_workers(trace: str, worker_dir: str | None):
    """Read ``trace``, merging worker segments when a directory exists."""
    import os

    from .obs import merge_worker_traces, read_trace

    if worker_dir is None:
        worker_dir = trace + ".workers"
    if os.path.isdir(worker_dir):
        return merge_worker_traces(trace, worker_dir)
    return read_trace(trace)


def _cmd_top(args) -> int:
    """Live phase monitor: re-renders the trailing phase table.

    Re-reads the trace at every refresh — ``read_trace``'s torn-final-
    line tolerance makes reading mid-write safe, so the monitor can tail
    a trace another process is still appending to.  Exits when the trace
    gains a terminal ``run_end``/``truncated`` record (or on Ctrl-C).
    """
    import time as _time

    from .obs import phase_report, phase_table

    try:
        while True:
            try:
                records = _load_trace_with_workers(args.trace, args.workers)
            except FileNotFoundError:
                records = []
            done = any(r.get("type") in ("run_end", "truncated")
                       for r in records)
            report = phase_report(records)
            rows = report["iterations"]
            meta = report["meta"]
            status = "finished" if done else ("waiting for trace"
                                              if not records else "live")
            head = [f"repro top — {args.trace} [{status}]"]
            if meta:
                head.append(
                    "  ".join(f"{k}={meta[k]}" for k in
                              ("mode", "threads", "seed", "backend")
                              if k in meta))
            if rows:
                last = rows[-1]
                rss = last.get("peak_rss_bytes")
                wall = report["totals"]["wall_time_s"]
                rate = (report["totals"]["conflicts"] / wall
                        if wall > 0 else 0.0)
                head.append(
                    f"iteration {last['iteration']}  "
                    f"frontier {last['frontier_size']}  "
                    f"conflicts/s {rate:,.0f}"
                    + (f"  peak_rss {rss / 2**20:,.1f} MiB"
                       if rss else ""))
            body = "\n".join(head) + "\n\n" + phase_table(report,
                                                          last=args.last)
            if args.once:
                print(body)
                return 0
            # Stdlib-only live view: clear screen, home cursor, redraw.
            sys.stdout.write("\x1b[2J\x1b[H" + body + "\n")
            sys.stdout.flush()
            if done:
                return 0
            _time.sleep(args.refresh)
    except KeyboardInterrupt:
        print()
        return 130


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "table1":
        print(run_table1(scale=args.scale, seed=args.seed).render())
    elif args.command == "figure3":
        if args.explain:
            from .experiments import run_figure3_explain

            print(run_figure3_explain(scale=args.scale, seed=args.seed,
                                      threads=max(args.threads),
                                      trace_dir=args.trace_dir))
        else:
            result = run_figure3(scale=args.scale, seed=args.seed,
                                 threads_list=tuple(args.threads))
            print(result.render())
    elif args.command == "table2":
        print(run_table2(scale=args.scale, seed=args.seed, runs=args.runs).render())
    elif args.command == "table3":
        print(run_table3(scale=args.scale, seed=args.seed, runs=args.runs).render())
    elif args.command == "ablations":
        for driver in (run_torn_study, run_delay_sweep, run_dispatch_study):
            print(driver(scale=args.scale, seed=args.seed).render())
            print()
    elif args.command == "eligibility":
        names = args.algorithms or list(ALGORITHMS)
        unknown = [n for n in names if n not in ALGORITHMS]
        if unknown:
            print(f"unknown algorithm(s): {', '.join(unknown)}; "
                  f"choose from {', '.join(ALGORITHMS)}", file=sys.stderr)
            return 1
        for name in names:
            print(check_program(ALGORITHMS[name]()).render())
            print("-" * 72)
    elif args.command == "run":
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        if args.out_of_core is not None:
            import pathlib

            from .storage import ShardStore

            if args.mode != "nondeterministic":
                print("--out-of-core requires --mode nondeterministic",
                      file=sys.stderr)
                return 1
            store_path = (pathlib.Path(args.out_of_core)
                          / f"{args.dataset}-s{args.scale}-k{args.num_intervals}.shards")
            if store_path.exists():
                graph = ShardStore.open(store_path)
            else:
                store_path.parent.mkdir(parents=True, exist_ok=True)
                print(f"building shard store {store_path} "
                      f"(K={args.num_intervals})", file=sys.stderr)
                graph = ShardStore.build(graph, store_path, args.num_intervals)
        config = EngineConfig(
            threads=args.threads,
            delay=args.delay,
            seed=args.run_seed,
            max_iterations=args.max_iterations,
            worker_timeout_s=args.worker_timeout_s or None,
        )
        if args.resume and all(
            getattr(args, name) == default
            for name, default in (
                ("threads", 4), ("delay", 2.0), ("run_seed", 0),
                ("max_iterations", 100_000), ("worker_timeout_s", 60.0),
            )
        ):
            # No engine knob was changed from its default: adopt the
            # checkpointed config so the resumed run matches the original.
            config = None
        robust_kwargs = {}
        if args.faults is not None:
            robust_kwargs["faults"] = args.faults
        if args.watchdog:
            from .robust import ConvergenceWatchdog

            robust_kwargs["watchdog"] = ConvergenceWatchdog(
                deadline_s=args.deadline_s)
        elif args.deadline_s is not None:
            robust_kwargs["deadline_s"] = args.deadline_s
        if args.fallback is not None:
            from .robust import DegradationPolicy

            robust_kwargs["policy"] = DegradationPolicy(
                fallback_mode=args.fallback)
        if args.checkpoint is not None:
            robust_kwargs["checkpoint"] = args.checkpoint
            robust_kwargs["checkpoint_every"] = args.checkpoint_every
        if args.resume is not None:
            robust_kwargs["resume_from"] = args.resume
        if args.trace_workers and not args.trace:
            print("--trace-workers requires --trace PATH", file=sys.stderr)
            return 1
        sink = None
        if args.trace or args.telemetry:
            from .obs import Telemetry

            sink = Telemetry(
                trace_path=args.trace,
                worker_dir=(args.trace + ".workers"
                            if args.trace_workers else None))
        recorder = None
        if args.record:
            from .obs import Recorder

            recorder = Recorder(policy=args.record_policy, trace_path=args.record)
        delta_kwargs = {}
        if args.mode == "delta":
            delta_kwargs["delta_threshold"] = args.delta_threshold
            delta_kwargs["delta_scheduling"] = args.delta_scheduling
            if args.mutate:
                from .graph.mutations import generate_batches

                delta_kwargs["mutations"] = generate_batches(
                    graph, args.mutate_batches, args.mutate_frac,
                    args.mutate_seed)
        elif args.mutate:
            print("--mutate requires --mode delta", file=sys.stderr)
            return 1
        result = run(ALGORITHMS[args.algorithm](), graph, mode=args.mode,
                     config=config, backend=args.backend,
                     direction=args.direction,
                     telemetry=sink, record=recorder,
                     **delta_kwargs, **robust_kwargs)
        print(format_table([{"dataset": args.dataset, **result.summary()}],
                           title=f"{args.algorithm} on {args.dataset}"))
        if args.direction != "pull":
            trace = result.extra.get("direction_trace", [])
            glyphs = "".join("P" if t == "push" else "-" for t in trace)
            print(f"direction={args.direction}: "
                  f"{result.extra.get('push_iterations', 0)}/{len(trace)} "
                  f"push iterations [{glyphs}] (P=push, -=pull)",
                  file=sys.stderr)
        if args.out_of_core is not None:
            io = result.extra.get("io", {})
            print(f"out-of-core: K={result.extra.get('num_intervals')}, "
                  f"read {io.get('bytes_read', 0):,} B, "
                  f"wrote {io.get('bytes_written', 0):,} B",
                  file=sys.stderr)
            graph.nondet_runner().close()
        if args.mode == "delta":
            d = result.extra.get("delta", {})
            print(f"delta: op={d.get('op')} threshold={d.get('threshold')} "
                  f"scheduling={d.get('scheduling')} "
                  f"accumulation_identity={d.get('accumulation_identity')}",
                  file=sys.stderr)
            for m in result.extra.get("mutations", ()):
                print(f"mutation batch {m['batch']}: +{m['inserted']} "
                      f"-{m['deleted']} edges, repair={m['repair_mode']} "
                      f"({m['repaired_vertices']} vertices, "
                      f"{m['repair_seconds']:.4f}s) at iteration "
                      f"{m['at_iteration']}", file=sys.stderr)
        for event in result.extra.get("degradations", ()):
            detail = ", ".join(f"{k}={v}" for k, v in event.items())
            print(f"degradation: {detail}", file=sys.stderr)
        for fired in result.extra.get("faults_fired", ()):
            detail = ", ".join(f"{k}={v}" for k, v in fired.items())
            print(f"fault injected: {detail}", file=sys.stderr)
        if args.telemetry:
            print()
            print(sink.summary())
        if args.trace:
            print(f"trace written to {args.trace}", file=sys.stderr)
        if args.trace_workers:
            print(f"worker segments in {args.trace}.workers/ — merge with "
                  f"`repro trace merge {args.trace} -o merged.jsonl`",
                  file=sys.stderr)
        if args.record:
            print(
                f"provenance trace written to {args.record} "
                f"({len(recorder.events)} events)",
                file=sys.stderr,
            )
        if args.audit:
            issues = audit_run(result)
            print("audit:", "CLEAN" if not issues else "; ".join(issues))
            if issues:
                return 1
        if not result.converged:
            return 2
    elif args.command == "bench":
        from .experiments.benchtrack import SUITES, run_bench

        suites = list(SUITES) if args.suite == "all" else [args.suite]
        kwargs = {}
        if args.scales is not None:
            kwargs["scales"] = tuple(args.scales)
        if args.workers is not None:
            kwargs["workers"] = tuple(args.workers)
        if args.out_of_core:
            kwargs["out_of_core"] = True
            kwargs["num_intervals"] = args.num_intervals
        if args.direction is not None:
            kwargs["direction"] = args.direction
        try:
            written = run_bench(
                suites, out_dir=args.out_dir,
                progress=lambda m: print(f"... {m}", file=sys.stderr),
                allow_schema_skew=args.allow_schema_skew,
                **kwargs)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        for suite, payload in written.items():
            filename = SUITES[suite][0]
            print(f"{filename}: {len(payload['entries'])} trajectory "
                  f"entr{'y' if len(payload['entries']) == 1 else 'ies'}")
            results = payload["entries"][-1]["results"]
            for scale, row in results["scales"].items():
                for name, cell in row["algorithms"].items():
                    if "workers" in cell:  # parallel suite
                        for p, stat in cell["workers"].items():
                            print(f"  scale {scale} {name:9s} P={p}: "
                                  f"vec {stat['vectorized']['seconds']:7.3f}s  "
                                  f"proc {stat['process']['seconds']:7.3f}s  "
                                  f"speedup {stat['speedup']:.2f}x")
                    elif "batches" in cell:  # incremental suite
                        modes = ",".join(sorted({b["repair_mode"]
                                                 for b in cell["batches"]}))
                        print(f"  scale {scale} {name:9s} "
                              f"repair {cell['repair_mean_seconds']:7.4f}s  "
                              f"recompute {cell['recompute_mean_seconds']:7.4f}s  "
                              f"speedup {cell['speedup']:.2f}x  [{modes}]")
                    else:  # nondet suite
                        spd = cell.get("speedup")
                        spd_txt = f"{spd:8.1f}x" if spd is not None else "   -"
                        hybrid = ""
                        dspd = cell.get("direction_speedup")
                        if dspd is not None:
                            d = results.get("direction", "auto")
                            hcell = cell[f"vectorized_{d}"]
                            hybrid = (f"  {d} {hcell['seconds']:7.3f}s "
                                      f"({hcell.get('push_iterations', 0)} "
                                      f"push it., {dspd:.2f}x)")
                        print(f"  scale {scale} {name:9s} "
                              f"vec {cell['vectorized']['seconds']:7.3f}s"
                              f" {spd_txt}{hybrid}")
    elif args.command == "report" and args.phases:
        from .obs import phase_report, phase_table

        records = _load_trace_with_workers(args.phases, None)
        print(phase_table(phase_report(records)))
    elif args.command == "report":
        from .experiments import generate_report

        text = generate_report(scale=args.scale, seed=args.seed, runs=args.runs,
                               progress=lambda m: print(f"... {m}", file=sys.stderr))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {args.out}")
        else:
            print(text)
    elif args.command == "speed":
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        report = measure_convergence_speed(
            ALGORITHMS[args.algorithm],
            graph,
            threads_list=tuple(args.threads),
            delays=tuple(args.delays),
        )
        print(format_table(report.rows(),
                           title=f"Convergence speed: {report.algorithm} on {args.dataset}"))
        print(f"chain bound (NE <= SYNC + 1, RW-only): {report.check_chain_bound()}")
        print(f"recovery ratio (max NE / SYNC): {report.recovery_ratio():.2f}")
    elif args.command == "trace":
        return _cmd_trace(args)
    elif args.command == "top":
        return _cmd_top(args)
    elif args.command == "serve":
        from .service.http import serve

        return serve(args.data_dir, host=args.host, port=args.port,
                     max_concurrent=args.max_concurrent,
                     max_queue=args.max_queue,
                     retain_age_s=args.retain_age_s,
                     retain_count=args.retain_count)
    elif args.command == "client":
        return _cmd_client(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
