"""Vertex-centric execution engines (the paper's system model, §II–§III)."""

from .atomicity import AtomicityPolicy, guarantees_atomicity, tear
from .config import EngineConfig
from .conflicts import (
    AccessRecord,
    ConflictEvent,
    ConflictLog,
    classify_access_counts,
    classify_accesses,
)
from .dispatch import DispatchPlan, DispatchPolicy, make_plan, plan_arrays
from .frontier import Frontier, initial_frontier
from .chromatic import ChromaticEngine
from .gauss_seidel import DeterministicEngine
from .delaymodel import DelayModel
from .nondet_engine import NondeterministicEngine
from .nondet_outofcore import OutOfCoreNondetRunner
from .nondet_parallel import ParallelEngine, parallel_fallback_reasons
from .nondet_vectorized import (
    NondetKernel,
    NondetPassContext,
    PlanCache,
    VectorizedNondetEngine,
    fallback_reasons,
    register_nondet_kernel,
    resolve_nondet_kernel,
)
from .pure_async import PureAsyncEngine
from .push import (
    AccumulatorSpec,
    CombineOp,
    PushContext,
    PushEngine,
    PushProgram,
    run_push,
)
from .ordering import Order, TaskSlot, classify, classify_timestamps, visible
from .program import EdgeStore, UpdateContext, VertexProgram
from .result import IterationStats, RunResult
from .runner import ENGINES, Mode, run
from .state import INF, FieldSpec, State
from .sync_engine import SynchronousEngine
from .threads_engine import ThreadsEngine
from .traits import AlgorithmTraits, ConflictProfile, ConvergenceKind, Monotonicity
from .vectorized import (
    VectorizedBSPEngine,
    VectorizedProgram,
    VectorizedRunResult,
    run_vectorized,
)

__all__ = [
    "AtomicityPolicy",
    "guarantees_atomicity",
    "tear",
    "EngineConfig",
    "OutOfCoreNondetRunner",
    "AccessRecord",
    "ConflictEvent",
    "ConflictLog",
    "classify_accesses",
    "classify_access_counts",
    "DispatchPlan",
    "DispatchPolicy",
    "make_plan",
    "plan_arrays",
    "Frontier",
    "initial_frontier",
    "ChromaticEngine",
    "DeterministicEngine",
    "DelayModel",
    "NondeterministicEngine",
    "NondetKernel",
    "NondetPassContext",
    "ParallelEngine",
    "parallel_fallback_reasons",
    "PlanCache",
    "VectorizedNondetEngine",
    "fallback_reasons",
    "register_nondet_kernel",
    "resolve_nondet_kernel",
    "PureAsyncEngine",
    "AccumulatorSpec",
    "CombineOp",
    "PushContext",
    "PushEngine",
    "PushProgram",
    "run_push",
    "SynchronousEngine",
    "ThreadsEngine",
    "Order",
    "TaskSlot",
    "classify",
    "classify_timestamps",
    "visible",
    "EdgeStore",
    "UpdateContext",
    "VertexProgram",
    "IterationStats",
    "RunResult",
    "ENGINES",
    "Mode",
    "run",
    "INF",
    "FieldSpec",
    "State",
    "AlgorithmTraits",
    "ConflictProfile",
    "ConvergenceKind",
    "Monotonicity",
    "VectorizedBSPEngine",
    "VectorizedProgram",
    "VectorizedRunResult",
    "run_vectorized",
]
