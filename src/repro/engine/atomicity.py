"""Atomicity of individual reads and writes (§III).

The paper's minimal requirement for nondeterministic execution is that
each *individual* read or write of an edge value is atomic — no torn
values — and it lists three ways programs obtain that guarantee, which
differ only in synchronization overhead:

1. **LOCK** — explicit per-edge lock/unlock around each access;
2. **CACHE_LINE** — rely on the architecture: values aligned to a single
   cache line transfer atomically;
3. **ATOMIC_RELAXED** — the language's relaxed atomic primitives
   (C++11 ``memory_order_relaxed``).

All three yield identical *values* (Lemmas 1 and 2 hold); the cost model
(:mod:`repro.perf.costmodel`) charges them differently, which is what
separates the three NE curves of Fig. 3.

**NONE** is the ablation the paper's §III motivates implicitly: without
any atomicity guarantee a racy access can observe or commit a *torn*
value — a bit-level mix of the competing values ("unexpected result" in
the paper's words, citing Boehm's benign-races paper).  The
:func:`tear` function manufactures such a value deterministically from a
seeded RNG so the failure mode is reproducible and testable.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["AtomicityPolicy", "tear", "guarantees_atomicity"]


class AtomicityPolicy(enum.Enum):
    """How update functions make their individual edge accesses atomic."""

    LOCK = "lock"  #: explicit per-edge lock/unlock
    CACHE_LINE = "cache-line"  #: architecture support (aligned word)
    ATOMIC_RELAXED = "atomic-relaxed"  #: compiler/language relaxed atomics
    NONE = "none"  #: no guarantee — torn values possible (ablation)


def guarantees_atomicity(policy: AtomicityPolicy) -> bool:
    """True when ``policy`` provides the §III minimal guarantee."""
    return policy is not AtomicityPolicy.NONE


def tear(old: float, new: float, rng: np.random.Generator) -> float:
    """Produce a torn 64-bit value mixing ``old`` and ``new``.

    Models a non-atomic load/store racing a store: the two 32-bit halves
    of the IEEE-754 bit pattern come from different values (a data bus
    half-transfer).  Which half comes from which value is drawn from
    ``rng``.  NaN results are collapsed to an arbitrary huge finite value
    so downstream numeric comparisons stay well-defined while remaining
    obviously corrupt.
    """
    a = np.float64(old).view(np.uint64)
    b = np.float64(new).view(np.uint64)
    hi_mask = np.uint64(0xFFFFFFFF00000000)
    lo_mask = np.uint64(0x00000000FFFFFFFF)
    if rng.random() < 0.5:
        mixed = (a & hi_mask) | (b & lo_mask)
    else:
        mixed = (b & hi_mask) | (a & lo_mask)
    value = float(mixed.view(np.float64))
    if np.isnan(value):
        value = 1.7e308
    return value
