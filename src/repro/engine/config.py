"""Execution configuration shared by all engines."""

from __future__ import annotations

from dataclasses import dataclass, replace

from .atomicity import AtomicityPolicy
from .delaymodel import DelayModel
from .dispatch import DispatchPolicy

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the paper's system model plus reproduction controls.

    Attributes
    ----------
    threads:
        Number of (virtual) processing threads ``P``.  The paper assumes
        one thread per processor and evaluates 4, 8, 16.
    delay:
        The propagation delay ``d`` of Definitions 1–3: the time, in
        update slots, for a result to travel between threads.  Must be
        >= 1.
    jitter:
        Magnitude of seeded environmental noise added to task timestamps
        (models the paper's "uncertainty on scheduling, random IRQs,
        memory stalls").  Must lie in ``[0, 1)`` so it never reorders
        same-thread tasks; ``0`` recovers the pure Definitions 1–3.
    atomicity:
        How individual reads/writes are made atomic (§III).  All policies
        except ``NONE`` produce identical values and differ only in cost;
        ``NONE`` injects torn values.
    dispatch:
        Block (Fig. 1 / OpenMP static) or round-robin assignment.
    seed:
        Master seed; together with all other fields it makes a
        nondeterministic run exactly reproducible.  Vary the seed to
        sample different executions (the paper's "one run to another").
    max_iterations:
        Safety bound on the number of iterations.
    fp_noise:
        Emulate float-precision run-to-run variation of *deterministic*
        executions by permuting gather order per update (§V-C's DE vs DE
        rows); seeded by ``seed``.
    torn_probability:
        With ``atomicity=NONE``, the probability that a racing access
        observes/commits a torn value.
    keep_conflict_events:
        Retain individual :class:`~repro.engine.conflicts.ConflictEvent`
        records (bounded) in addition to aggregate counters.
    validate_scope:
        Enforce the §II scope rule at runtime: an update function that
        reads or writes an edge not incident to its vertex raises
        immediately.  Off by default (it costs a set construction per
        update); turn on when developing a new program.
    worker_timeout_s:
        Real-thread backend only: how long the iteration barrier waits
        for its workers before raising
        :class:`~repro.robust.errors.WorkerTimeout` with a
        ``stuck_worker`` diagnostic event.  ``None`` waits forever
        (the pre-fault-tolerance behaviour).
    direction_alpha / direction_beta:
        Beamer-style thresholds of the direction-optimizing heuristic
        (``run(..., direction="auto")``).  An iteration runs *push*
        (sparse, frontier-driven) when the frontier's incident-edge mass
        is below ``m / direction_alpha`` **and** the frontier holds
        fewer than ``n / direction_beta`` vertices; otherwise it runs
        *pull* (dense whole-graph masks).  Both must be > 0; the
        defaults are Beamer's published 14 / 24.  The decision is a pure
        function of (frontier, graph, config), so it never perturbs
        bit-reproducibility.
    """

    threads: int = 4
    delay: float = 2.0
    delay_model: DelayModel | None = None
    jitter: float = 0.5
    atomicity: AtomicityPolicy = AtomicityPolicy.CACHE_LINE
    dispatch: DispatchPolicy = DispatchPolicy.BLOCK
    seed: int = 0
    max_iterations: int = 100_000
    fp_noise: bool = False
    torn_probability: float = 0.7
    keep_conflict_events: bool = False
    validate_scope: bool = False
    worker_timeout_s: float | None = 60.0
    direction_alpha: float = 14.0
    direction_beta: float = 24.0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.delay < 1:
            raise ValueError(f"delay (d) must be >= 1, got {self.delay}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= self.torn_probability <= 1.0:
            raise ValueError("torn_probability must be in [0, 1]")
        if self.worker_timeout_s is not None and self.worker_timeout_s <= 0:
            raise ValueError(
                "worker_timeout_s must be > 0 (or None to wait forever)"
            )
        if self.direction_alpha <= 0 or self.direction_beta <= 0:
            raise ValueError(
                "direction_alpha and direction_beta must be > 0, got "
                f"{self.direction_alpha} / {self.direction_beta}"
            )

    def effective_delay_model(self) -> DelayModel:
        """The pairwise delay model in force: ``delay_model`` when given,
        otherwise the paper's uniform model built from ``delay``."""
        return self.delay_model or DelayModel.uniform(self.delay)

    def with_(self, **kwargs) -> "EngineConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)
