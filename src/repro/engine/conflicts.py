"""Conflict detection and accounting (§III, Lemmas 1 and 2).

The paper calls competing same-iteration operations on one edge a
*conflict* and distinguishes two kinds:

* **read–write** — one update reads the edge while another writes it; by
  Lemma 1 (given individual-access atomicity) the reader sees either the
  old or the new value, never garbage.
* **write–write** — two updates write the edge; by Lemma 2 exactly one
  of the two values is committed at the end of the iteration.

The nondeterministic engine records every same-iteration edge access and
asks this module to classify them after the barrier.  The resulting
:class:`ConflictLog` is part of every run result: it is how the library
*verifies* an algorithm's declared conflict profile instead of trusting
it (see :func:`repro.theory.eligibility.audit_run`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "ConflictEvent",
    "ConflictLog",
    "AccessRecord",
    "classify_accesses",
    "classify_access_counts",
]


@dataclass(frozen=True)
class AccessRecord:
    """One edge access performed during an iteration."""

    vid: int  #: the update task that performed the access
    thread: int
    time: float  #: effective timestamp within the iteration
    is_write: bool
    value: float | None = None  #: written value (writes only)


@dataclass(frozen=True)
class ConflictEvent:
    """One detected conflict on one edge field in one iteration."""

    iteration: int
    eid: int
    field: str
    kind: str  #: "read-write" or "write-write"
    first_vid: int
    second_vid: int


@dataclass
class ConflictLog:
    """Aggregated conflict statistics for a run.

    ``read_write`` / ``write_write`` count conflicting *pairs* of update
    tasks; ``contended_edges`` counts distinct (iteration, edge, field)
    triples that saw at least one conflict; ``lost_writes`` counts writes
    whose value was overwritten by a competing same-iteration write
    (Lemma 2's losing value); ``stale_reads`` counts reads that raced a
    write and observed the old value (one side of Lemma 1).
    """

    read_write: int = 0
    write_write: int = 0
    contended_edges: int = 0
    lost_writes: int = 0
    stale_reads: int = 0
    per_iteration: Counter = field(default_factory=Counter)
    events: list[ConflictEvent] = field(default_factory=list)
    keep_events: bool = False
    max_events: int = 10_000

    @property
    def total(self) -> int:
        return self.read_write + self.write_write

    def record(self, event: ConflictEvent) -> None:
        if event.kind == "read-write":
            self.read_write += 1
        elif event.kind == "write-write":
            self.write_write += 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown conflict kind {event.kind!r}")
        self.per_iteration[event.iteration] += 1
        if self.keep_events and len(self.events) < self.max_events:
            self.events.append(event)

    def summary(self) -> dict:
        return {
            "read_write": self.read_write,
            "write_write": self.write_write,
            "contended_edges": self.contended_edges,
            "lost_writes": self.lost_writes,
            "stale_reads": self.stale_reads,
        }


def classify_accesses(
    log: ConflictLog,
    iteration: int,
    eid: int,
    fieldname: str,
    accesses: list[AccessRecord],
    winner_vid: int | None,
) -> None:
    """Classify all same-iteration accesses to one edge field.

    ``accesses`` is every read/write performed on ``(eid, fieldname)``
    during ``iteration``; ``winner_vid`` is the update whose write was
    committed at the barrier (None when nothing was written).  Appends
    conflict pairs to ``log``.

    Following the race definition the paper builds on (Netzer & Miller:
    competing accesses with no predefined order), a pair only counts as
    a conflict when the two accesses come from *different threads* —
    same-thread accesses are program-ordered and therefore deterministic,
    and a read and write by the same update task (e.g. WCC reading then
    re-writing an incident edge) is never a conflict.  A single-threaded
    nondeterministic run consequently logs zero conflicts, matching its
    value-equivalence with the Gauss–Seidel sweep.
    """
    writes = [a for a in accesses if a.is_write]
    reads = [a for a in accesses if not a.is_write]
    if not writes:
        return
    contended = False
    # read-write pairs: reader and writer on different threads.
    writer_by_vid: dict[int, AccessRecord] = {}
    for w in writes:
        writer_by_vid.setdefault(w.vid, w)
    for r in reads:
        for w_vid, w in writer_by_vid.items():
            if w_vid != r.vid and w.thread != r.thread:
                log.record(
                    ConflictEvent(iteration, eid, fieldname, "read-write", w_vid, r.vid)
                )
                contended = True
    # write-write pairs among distinct writers on different threads.
    distinct = sorted(writer_by_vid)
    for i in range(len(distinct)):
        for j in range(i + 1, len(distinct)):
            a, b = writer_by_vid[distinct[i]], writer_by_vid[distinct[j]]
            if a.thread != b.thread:
                log.record(
                    ConflictEvent(
                        iteration, eid, fieldname, "write-write", distinct[i], distinct[j]
                    )
                )
                contended = True
    if contended:
        log.contended_edges += 1
    if winner_vid is not None and winner_vid in writer_by_vid:
        winner_thread = writer_by_vid[winner_vid].thread
        log.lost_writes += sum(
            1
            for w in writes
            if w.vid != winner_vid and w.thread != winner_thread
        )


def classify_access_counts(
    log: ConflictLog,
    iteration: int,
    eid: int,
    fieldname: str,
    write_records: list[tuple[int, int]],
    reader_counts: Mapping[int, list[int]],
    winner_vid: int | None,
) -> None:
    """Counter-only sibling of :func:`classify_accesses`.

    Consumes ``write_records`` as ``(vid, thread)`` pairs in issue order
    and ``reader_counts`` as ``{vid: [thread, n_reads]}`` — the compact
    access summary the racy store keeps when individual
    :class:`ConflictEvent` records are not wanted — and bumps exactly the
    aggregate counters :func:`classify_accesses` would, without
    materializing a single event or per-access record.
    """
    if not write_records:
        return
    writer_by_vid: dict[int, int] = {}
    for w_vid, w_thread in write_records:
        writer_by_vid.setdefault(w_vid, w_thread)
    read_write = 0
    write_write = 0
    for r_vid, (r_thread, n_reads) in reader_counts.items():
        for w_vid, w_thread in writer_by_vid.items():
            if w_vid != r_vid and w_thread != r_thread:
                read_write += n_reads
    distinct = sorted(writer_by_vid)
    for i in range(len(distinct)):
        for j in range(i + 1, len(distinct)):
            if writer_by_vid[distinct[i]] != writer_by_vid[distinct[j]]:
                write_write += 1
    log.read_write += read_write
    log.write_write += write_write
    total = read_write + write_write
    if total:
        log.per_iteration[iteration] += total
        log.contended_edges += 1
    if winner_vid is not None and winner_vid in writer_by_vid:
        winner_thread = writer_by_vid[winner_vid]
        log.lost_writes += sum(
            1
            for w_vid, w_thread in write_records
            if w_vid != winner_vid and w_thread != winner_thread
        )
