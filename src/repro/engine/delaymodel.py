"""Propagation-delay models: relaxing §II toward NUMA and distributed systems.

The paper's system model uses a single machine constant ``d`` — "the
time for the result of an update to propagate from one thread to
another", determined by the cache-coherence protocol.  Its future-work
section proposes "extending the applicability of results ... to more
scenarios, such as ... distributed systems, by relaxing the system
model".  The natural relaxation is to make ``d`` a *function of the
thread pair*:

* :meth:`DelayModel.uniform` — the paper's original model;
* :meth:`DelayModel.numa` — threads grouped into sockets: cheap
  propagation inside a socket, expensive across the interconnect;
* :meth:`DelayModel.distributed` — thread groups become machines with a
  network between them: cross-machine delays orders of magnitude above
  intra-machine ones, modelling a Pregel/PowerGraph-style cluster while
  keeping the same convergence semantics.

Theorems 1 and 2 survive the relaxation (their proofs only require
every write to become visible after finitely many iterations, which any
finite pairwise delay provides); the experiments show the *cost*:
larger cross-group delays mean staler reads and more recovery
iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DelayModel"]


@dataclass(frozen=True)
class DelayModel:
    """Pairwise propagation delays between virtual threads.

    Attributes
    ----------
    intra:
        Delay between threads of the same group (and the self-delay —
        irrelevant, since same-thread visibility is program order).
    inter:
        Delay between threads of different groups.
    group_size:
        Number of consecutive thread ids per group; ``0`` means a single
        group (uniform model).
    """

    intra: float = 2.0
    inter: float = 2.0
    group_size: int = 0

    def __post_init__(self) -> None:
        if self.intra < 1 or self.inter < 1:
            raise ValueError("delays must be >= 1")
        if self.inter < self.intra:
            raise ValueError("inter-group delay must be >= intra-group delay")
        if self.group_size < 0:
            raise ValueError("group_size must be >= 0")

    # -- constructors ----------------------------------------------------
    @staticmethod
    def uniform(d: float) -> "DelayModel":
        """The paper's single-constant model."""
        return DelayModel(intra=d, inter=d, group_size=0)

    @staticmethod
    def numa(sockets_of: int, intra: float = 2.0, inter: float = 8.0) -> "DelayModel":
        """Threads packed into sockets of ``sockets_of`` threads each."""
        if sockets_of < 1:
            raise ValueError("sockets_of must be >= 1")
        return DelayModel(intra=intra, inter=inter, group_size=sockets_of)

    @staticmethod
    def distributed(
        threads_per_machine: int, intra: float = 2.0, network: float = 64.0
    ) -> "DelayModel":
        """Thread groups as cluster machines joined by a slow network."""
        if threads_per_machine < 1:
            raise ValueError("threads_per_machine must be >= 1")
        return DelayModel(intra=intra, inter=network, group_size=threads_per_machine)

    # -- queries ----------------------------------------------------------
    def group(self, thread: int) -> int:
        """Group (socket / machine) id of a thread."""
        if self.group_size == 0:
            return 0
        return thread // self.group_size

    def delay(self, thread_a: int, thread_b: int) -> float:
        """Propagation delay between two (distinct) threads."""
        if self.group_size == 0 or self.group(thread_a) == self.group(thread_b):
            return self.intra
        return self.inter

    def delays(self, thread_a: np.ndarray, thread_b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`delay` over aligned thread-id arrays."""
        thread_a = np.asarray(thread_a)
        if self.group_size == 0:
            return np.full(thread_a.shape, self.intra)
        same_group = (thread_a // self.group_size) == (
            np.asarray(thread_b) // self.group_size
        )
        return np.where(same_group, self.intra, self.inter)

    @property
    def is_uniform(self) -> bool:
        """True when every thread pair shares one delay constant."""
        return self.group_size == 0 or self.intra == self.inter

    @property
    def max_delay(self) -> float:
        return self.inter if self.group_size else self.intra
