"""Dispatching the chosen updates of an iteration onto threads (§II, Fig. 1).

The paper dispatches the updates of ``S_n`` among the participating
threads in contiguous blocks — "this fashion actually complies with the
method of the static scheduling by the OpenMP runtime system" — and each
thread executes its assigned updates small-label-first.  For the Fig. 1
situation (``S_n = V``) this yields ``π(v) = L_v mod (V/P)``.

A true round-robin (cyclic) assignment is provided as well, used by the
dispatch-policy ablation (DESIGN.md A3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .ordering import TaskSlot

__all__ = ["DispatchPolicy", "DispatchPlan", "make_plan", "plan_arrays"]


class DispatchPolicy(enum.Enum):
    """How the sorted active set is split across threads."""

    BLOCK = "block"  #: contiguous chunks (Fig. 1 / OpenMP static)
    ROUND_ROBIN = "round-robin"  #: cyclic assignment (ablation)


@dataclass
class DispatchPlan:
    """Placement of every active update for one iteration.

    ``slots`` maps vertex id → :class:`TaskSlot` (thread, π, effective
    time); ``per_thread`` lists each thread's vertices in execution
    (small-label-first) order.
    """

    num_threads: int
    slots: dict[int, TaskSlot]
    per_thread: list[list[int]] = field(default_factory=list)

    def execution_order(self) -> list[int]:
        """All active vertices sorted by effective timestamp.

        The simulated engine executes updates in this global virtual-time
        order; ties are broken by (π, thread) so the order is total and
        reproducible.
        """
        return sorted(
            self.slots,
            key=lambda v: (self.slots[v].time, self.slots[v].pi, self.slots[v].thread),
        )


def make_plan(
    active_sorted: np.ndarray | list[int],
    num_threads: int,
    *,
    policy: DispatchPolicy = DispatchPolicy.BLOCK,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> DispatchPlan:
    """Assign the (label-sorted) active vertices to ``num_threads`` threads.

    Parameters
    ----------
    active_sorted:
        The chosen vertices of this iteration, ascending by label (the
        caller — the frontier — guarantees sortedness).
    jitter:
        Magnitude of seeded environmental noise added to each task's
        effective timestamp: ``time = π + U(0, jitter)``.  ``0`` recovers
        Definitions 1–3 exactly.
    """
    active = np.asarray(active_sorted, dtype=np.int64)
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if jitter < 0:
        raise ValueError("jitter must be >= 0")
    if jitter > 0 and rng is None:
        raise ValueError("jitter > 0 requires an rng")
    k = int(active.size)
    slots: dict[int, TaskSlot] = {}
    per_thread: list[list[int]] = [[] for _ in range(num_threads)]

    if policy is DispatchPolicy.BLOCK:
        # Contiguous chunks; first (k % P) threads take one extra task,
        # matching OpenMP static scheduling of a non-divisible range.
        base = k // num_threads
        extra = k % num_threads
        start = 0
        for t in range(num_threads):
            size = base + (1 if t < extra else 0)
            chunk = active[start : start + size]
            start += size
            for pi, vid in enumerate(chunk.tolist()):
                noise = float(rng.uniform(0.0, jitter)) if jitter > 0 else 0.0
                slots[vid] = TaskSlot(vid=vid, thread=t, pi=pi, time=pi + noise)
                per_thread[t].append(vid)
    elif policy is DispatchPolicy.ROUND_ROBIN:
        for idx, vid in enumerate(active.tolist()):
            t = idx % num_threads
            pi = idx // num_threads
            noise = float(rng.uniform(0.0, jitter)) if jitter > 0 else 0.0
            slots[vid] = TaskSlot(vid=vid, thread=t, pi=pi, time=pi + noise)
            per_thread[t].append(vid)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown policy {policy}")

    return DispatchPlan(num_threads=num_threads, slots=slots, per_thread=per_thread)


def plan_arrays(
    active_sorted: np.ndarray | list[int],
    num_threads: int,
    *,
    policy: DispatchPolicy = DispatchPolicy.BLOCK,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array form of :func:`make_plan`: ``(thread, pi, time)`` per active vertex.

    Returns, aligned with ``active_sorted``, the thread id, per-thread
    position π, and effective timestamp ``π + U(0, jitter)`` of every
    task.  Draws the jitter noise from ``rng`` in ascending-label order —
    the same stream positions :func:`make_plan` consumes — so a run that
    mixes the two (e.g. the vectorized engine falling back mid-sweep)
    stays on the identical schedule sample.
    """
    active = np.asarray(active_sorted, dtype=np.int64)
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if jitter < 0:
        raise ValueError("jitter must be >= 0")
    if jitter > 0 and rng is None:
        raise ValueError("jitter > 0 requires an rng")
    k = int(active.size)
    idx = np.arange(k, dtype=np.int64)
    if policy is DispatchPolicy.BLOCK:
        base = k // num_threads
        extra = k % num_threads
        sizes = np.full(num_threads, base, dtype=np.int64)
        sizes[:extra] += 1
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        thread = np.repeat(np.arange(num_threads, dtype=np.int64), sizes)
        pi = idx - starts[thread]
    elif policy is DispatchPolicy.ROUND_ROBIN:
        thread = idx % num_threads
        pi = idx // num_threads
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown policy {policy}")
    if jitter > 0:
        # One bulk draw == k scalar draws from the same Generator stream.
        time = pi + rng.uniform(0.0, jitter, size=k)
    else:
        time = pi.astype(np.float64)
    return thread, pi, time
