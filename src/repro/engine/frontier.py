"""Active sets and the task-generation rule (§II, coordinated scheduling).

The scheduler organizes execution as iterations ``I_0, I_1, ...``; at
iteration ``n`` a set of updates ``S_n ⊆ V`` is chosen and each runs
exactly once.  The only rule the system model places on task generation:
if ``f(v)`` writes one of ``v``'s incident edges ``(v,u)`` or ``(u,v)``,
then ``u`` must be added to ``S_{n+1}``.  (The engines enforce this via
:meth:`repro.engine.program.UpdateContext.write_edge`.)

The frontier deduplicates and keeps vertices sorted by label, because
each thread executes its assigned updates small-label-first.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..graph import DiGraph
from .program import VertexProgram

__all__ = ["Frontier", "initial_frontier"]


class Frontier:
    """The active set ``S_n`` of one iteration."""

    def __init__(self, vertices: Iterable[int] = ()):
        self._set: set[int] = {int(v) for v in vertices}

    def __len__(self) -> int:
        return len(self._set)

    def __bool__(self) -> bool:
        return bool(self._set)

    def __contains__(self, vid: int) -> bool:
        return int(vid) in self._set

    def add(self, vid: int) -> None:
        self._set.add(int(vid))

    def sorted_vertices(self) -> np.ndarray:
        """Active vertices ascending by label (small-label-first)."""
        return np.fromiter(sorted(self._set), dtype=np.int64, count=len(self._set))

    def as_set(self) -> set[int]:
        return set(self._set)


def initial_frontier(program: VertexProgram, graph: DiGraph) -> Frontier:
    """Build ``S_0`` from the program's declaration."""
    spec = program.initial_frontier(graph)
    if isinstance(spec, str):
        if spec != "all":
            raise ValueError(f"unknown frontier spec {spec!r}")
        return Frontier(range(graph.num_vertices))
    frontier = Frontier(spec)
    for v in frontier.as_set():
        if not 0 <= v < graph.num_vertices:
            raise ValueError(f"initial frontier vertex {v} out of range")
    return frontier
