"""Deterministic asynchronous execution (the paper's "DE" baseline).

Models GraphChi's *external deterministic scheduler*: within each
iteration the chosen updates run one at a time in ascending label order,
and every read/write takes effect immediately (Gauss–Seidel).  As the
paper observes, this execution "does not scale — the updates are
actually conducted sequentially due to the data dependences among the
updates"; the cost model therefore charges it sequential time plus the
per-iteration path-plotting overhead regardless of how many processors
are configured.

No conflicts can occur (a single update runs at a time), so the conflict
log of a deterministic run is always empty — a property the test suite
asserts.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph import DiGraph
from .config import EngineConfig
from .frontier import Frontier, initial_frontier
from .program import UpdateContext, VertexProgram
from .result import IterationStats, RunResult
from .state import State

__all__ = ["DeterministicEngine"]


class _DirectStore:
    """In-place edge store: reads and writes effective immediately.

    Shared by the deterministic and chromatic engines.  With a recorder
    attached (write-recording policies only), every in-place write is
    emitted as ``write`` provenance — the execution admits no race, so
    ``order="before"``: each write is visible to every later read.  The
    disabled path is one pointer comparison per write.
    """

    __slots__ = ("_edges", "recorder", "iteration", "current_thread", "rule")

    def __init__(self, state: State, *, rule: str = "gauss-seidel"):
        self._edges = {name: state.edge(name) for name in state.edge_field_names}
        self.recorder = None
        self.iteration = 0
        self.current_thread = 0
        self.rule = rule

    def read(self, vid: int, eid: int, field: str) -> float:
        return self._edges[field][eid]

    def write(self, vid: int, eid: int, field: str, value: float) -> None:
        self._edges[field][eid] = value
        if self.recorder is not None:
            self.recorder.write_event(
                iteration=self.iteration,
                field=field,
                eid=eid,
                writer=vid,
                writer_thread=self.current_thread,
                value=float(value),
                rule=self.rule,
                order="before",
            )


class DeterministicEngine:
    """Sequential small-label-first asynchronous executor."""

    mode = "deterministic"

    def run(
        self,
        program: VertexProgram,
        graph: DiGraph,
        config: EngineConfig | None = None,
        *,
        state: State | None = None,
        observer=None,
        telemetry=None,
        record=None,
        supervisor=None,
    ) -> RunResult:
        config = config or EngineConfig()
        sink = telemetry
        if sink is not None:
            sink.begin_engine_run(self.mode, program, config)
        if record is not None:
            record.begin_engine_run(self.mode, program, config)
        state = state if state is not None else program.make_state(graph)
        store = _DirectStore(state)
        if record is not None and record.records_writes:
            store.recorder = record
        frontier = initial_frontier(program, graph)
        # Sub-stream 1 of the master seed is reserved for fp-noise.
        fp_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 1]))
            if config.fp_noise
            else None
        )

        stats: list[IterationStats] = []
        iteration = 0
        if supervisor is not None:
            iteration, frontier = supervisor.engine_start(
                self.mode, program, config, state=state, frontier=frontier,
                rngs={"fp": fp_rng} if fp_rng is not None else {},
            )
        converged = False
        while iteration < config.max_iterations:
            if not frontier:
                converged = True
                break
            if supervisor is not None:
                supervisor.pre_iteration(iteration)
            t0 = time.perf_counter() if sink is not None else 0.0
            store.iteration = iteration
            active = frontier.sorted_vertices()
            next_schedule: set[int] = set()
            reads = writes = 0
            for vid in active.tolist():
                ctx = UpdateContext(
                    vid, graph, state, store, next_schedule, gather_rng=fp_rng,
                    strict_scope=config.validate_scope,
                )
                program.update(ctx)
                reads += ctx.n_edge_reads
                writes += ctx.n_edge_writes
            if supervisor is not None:
                next_schedule = supervisor.post_iteration(
                    iteration, state=state, schedule=next_schedule)
            stats.append(
                IterationStats(
                    iteration=iteration,
                    num_active=int(active.size),
                    updates_per_thread=[int(active.size)],
                    reads_per_thread=[reads],
                    writes_per_thread=[writes],
                )
            )
            if sink is not None:
                # Sequential execution: a single update runs at a time,
                # so no conflicts can occur — both classes are zero.
                sink.iteration(
                    iteration=iteration,
                    num_active=int(active.size),
                    updates_per_thread=[int(active.size)],
                    reads_per_thread=[reads],
                    writes_per_thread=[writes],
                    frontier_size=len(next_schedule),
                    wall_time_s=time.perf_counter() - t0,
                )
            if observer is not None:
                observer(iteration, state, next_schedule)
            frontier = Frontier(next_schedule)
            iteration += 1
        # At-cap accounting: converged stays False unless the confirming
        # empty-frontier check at the top of an iteration ran (see
        # tests/test_convergence_conformance.py).

        result = RunResult(
            program=program,
            state=state,
            mode=self.mode,
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            config=config,
        )
        if record is not None:
            record.end_run(result)
        if sink is not None:
            sink.end_run(result)
        return result
