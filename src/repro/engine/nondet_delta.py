"""Delta-accumulative execution — propagate deltas, not states.

Maiter's formulation (PAPERS.md): an *accumulative* algorithm maintains
per-vertex ``(x, Δ)`` under an abelian monoid ``(⊕, identity)`` and a
per-edge gain ``g`` that distributes over ``⊕``.  A step at vertex ``v``
commits its pending delta and forwards only the *change*::

    d      = Δ[v];  Δ[v] = identity
    accum[v] = accum[v] ⊕ d
    x[v]     = x0[v] ⊕ accum[v]            (the accumulation identity)
    Δ[w]     = Δ[w] ⊕ g(d, v→w)   for each out-neighbour w

Work is proportional to what actually changed, not to the graph: vertices
whose residual delta is below threshold (ADD) or does not improve ``x``
(MIN) are never scheduled.  Because ``⊕`` is commutative/associative,
delivery *order* cannot change any folded value — the same algebra the
paper's push-mode condition rests on — so the scheduler is free to visit
the active set in any (seeded) order: this is the nondeterministic
execution model applied to deltas.

The accumulation identity ``x = x0 ⊕ Σ committed deltas`` holds **bit
exactly by construction**: the engine stores ``accum`` and *defines*
``x`` as ``fold(x0, accum)`` at each commit, so termination can check the
identity as a hard invariant rather than a tolerance.

On top of the standing loop this module opens the **dynamic graph**
workload (:mod:`repro.graph.mutations`): edge insert/delete batches are
*repaired* into the standing result instead of recomputed —

* invertible ``⊕`` (ADD): the stale contributions of every source whose
  out-edge set changed are subtracted and the fresh ones added
  (``Δ += g'(x) − g(x)``), leaving ``x`` untouched;
* non-invertible ``⊕`` (MIN): deletions may have removed the *support*
  of downstream values, so the engine grows the affected region by a
  bounded support-checking fixpoint (Ramalingam–Reps style), resets it
  to initial conditions, and re-seeds its boundary from clean
  neighbours.  If the region exceeds the cap the engine honestly falls
  back to a full delta restart and says so in ``extra``.

Eligibility is gated the same way the vectorized/push paths are gated:
a kernel must be registered here *and* pass
:func:`repro.theory.eligibility.check_delta_program`, which probes the
algebra on small graphs and refuses with a witness when it can.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph import DiGraph
from ..graph.mutations import EdgeDiff, MutationBatch, apply_batch
from ..obs.metrics import PhaseClock, peak_rss_bytes, record_iteration_metrics
from .config import EngineConfig
from .program import VertexProgram
from .push import CombineOp
from .result import ConflictLog, IterationStats, RunResult

__all__ = [
    "DeltaKernel",
    "register_delta_kernel",
    "resolve_delta_kernel",
    "delta_fallback_reasons",
    "run_delta",
    "SCHEDULES",
    "DELTA_DISPATCHES",
]

SCHEDULES = ("frontier", "priority")
DELTA_DISPATCHES = ("pull", "push")

#: Affected-region cap for the non-invertible delete repair, as a
#: fraction of ``num_vertices`` — beyond it a full delta restart is
#: cheaper than support checking, and honest about being one.
REPAIR_CAP_FRAC = 0.5


class DeltaKernel:
    """Maiter triple ``(⊕, identity, g_edge)`` for one vertex program.

    Subclasses declare the algebra as class attributes and implement the
    two array hooks.  ``identity`` is implied by ``op``
    (:attr:`CombineOp.identity`).

    Attributes
    ----------
    op:
        The abelian fold ``⊕`` (:class:`~repro.engine.push.CombineOp`).
    field:
        The vertex state field the program's result lives in.
    undirected:
        True when contributions flow against edge direction too
        (WCC-as-min treats the graph as undirected).
    strict_gain:
        True when ``g`` strictly worsens the value it forwards (SSSP/BFS:
        positive weights).  Strict gains make the plain support check of
        the delete repair sound (support chains strictly descend toward
        initial conditions, so no mutual-support cycle can keep a stale
        value alive).  Identity-gain kernels (WCC) must set this False:
        their support is only trusted from *grounded* vertices — ones
        whose value is their own initial condition — which over-grows
        the region but can never keep a stale label.
    contraction:
        For non-idempotent ``op`` (ADD): a certificate that total
        propagated mass shrinks geometrically — the per-step gain factor,
        which must be ``< 1`` for the residual to vanish.  ``None``
        declares no certificate (refused for ADD kernels).
    """

    op: CombineOp = CombineOp.MIN
    field: str = ""
    undirected: bool = False
    strict_gain: bool = True
    contraction: float | None = None

    def __init__(self, program: VertexProgram):
        self.program = program

    # -- array hooks ---------------------------------------------------
    def initial(self, graph: DiGraph) -> tuple[np.ndarray, np.ndarray]:
        """``(x0, Δ0)`` float64 arrays of length ``num_vertices``."""
        raise NotImplementedError

    def gains(self, graph: DiGraph, eids: np.ndarray,
              values: np.ndarray) -> np.ndarray:
        """``g(value, e)`` for each edge id in ``eids``.

        ``values[i]`` is the committed delta (or state value, during
        repair) flowing along ``eids[i]``.
        """
        raise NotImplementedError

    def default_threshold(self) -> float:
        """Residual magnitude below which an ADD vertex is not scheduled."""
        return 0.0


# -- kernel registry (mirrors the vectorized-kernel registry) ----------

_KERNELS: dict[type, type] = {}
_REGISTRY_LOADED = False


def register_delta_kernel(program_cls: type, kernel_cls: type) -> None:
    """Register ``kernel_cls(program)`` as the delta kernel for a program
    class.  Subclasses inherit the kernel as long as ``update`` is not
    overridden (an overridden update function is a different algorithm —
    see :func:`repro.engine.nondet_vectorized.resolve_nondet_kernel`)."""
    _KERNELS[program_cls] = kernel_cls


def _ensure_registry() -> None:
    global _REGISTRY_LOADED
    if not _REGISTRY_LOADED:
        from ..algorithms import delta_kernels  # noqa: F401  (registers)
        _REGISTRY_LOADED = True


def resolve_delta_kernel(program: VertexProgram):
    """The kernel class for ``program``, or ``None``."""
    _ensure_registry()
    for cls in type(program).__mro__:
        kernel_cls = _KERNELS.get(cls)
        if kernel_cls is not None:
            if type(program).update is not cls.update:
                return None
            return kernel_cls
    return None


def delta_fallback_reasons(program: VertexProgram) -> list[str]:
    """Why ``program`` cannot run delta-accumulatively (empty = can).

    Structural gates only; the full verdict — algebra probes on small
    graphs, witness search against the counterexample programs — is
    :func:`repro.theory.eligibility.check_delta_program`, which the
    engine entry point consults for its refusal message.
    """
    kernel_cls = resolve_delta_kernel(program)
    if kernel_cls is None:
        return [
            f"no delta-accumulative kernel registered for "
            f"{type(program).__name__}: the program declares no "
            "(⊕, identity, g_edge) formulation"
        ]
    reasons: list[str] = []
    if not kernel_cls.op.commutative_associative:
        reasons.append(f"⊕ ({kernel_cls.op.value}) is not commutative-associative")
    traits = program.traits
    if kernel_cls.op.idempotent:
        if not traits.monotonicity.is_monotone:
            reasons.append(
                "idempotent ⊕ requires a monotone program (Theorem 2 "
                "premise), but monotonicity is declared NONE")
    else:
        if kernel_cls.contraction is None:
            reasons.append(
                "non-idempotent ⊕ (ADD) requires a contraction "
                "certificate (< 1 gain mass per step) and the kernel "
                "declares none")
        elif not (0.0 < kernel_cls.contraction < 1.0):
            reasons.append(
                f"declared contraction factor {kernel_cls.contraction} "
                "is not in (0, 1): the residual mass does not vanish")
    return reasons


# -- engine internals --------------------------------------------------


def _fold_arr(op: CombineOp, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``a ⊕ b`` (``CombineOp.fold`` is scalar-only; its NaN
    guard does not vectorize).  ``np.minimum``/``maximum`` propagate NaN
    symmetrically, matching the scalar fold's semantics."""
    if op is CombineOp.ADD:
        return a + b
    if op is CombineOp.MIN:
        return np.minimum(a, b)
    return np.maximum(a, b)


def _fold_at(op: CombineOp, target: np.ndarray, idx: np.ndarray,
             contrib: np.ndarray) -> None:
    """``target[idx] ⊕= contrib`` with unbuffered (per-element) folding."""
    if op is CombineOp.ADD:
        np.add.at(target, idx, contrib)
    elif op is CombineOp.MIN:
        np.minimum.at(target, idx, contrib)
    else:
        np.maximum.at(target, idx, contrib)


def _active_ids(op: CombineOp, x: np.ndarray, delta: np.ndarray,
                threshold: float) -> np.ndarray:
    """Vertices whose pending delta would change (or meaningfully nudge)
    their committed value."""
    if op is CombineOp.ADD:
        mask = np.abs(delta) > threshold
    elif op is CombineOp.MIN:
        mask = delta < x
    else:
        mask = delta > x
    return np.flatnonzero(mask).astype(np.int64)


def _propagate(kernel: DeltaKernel, graph: DiGraph, order: np.ndarray,
               committed: np.ndarray, delta: np.ndarray,
               dispatch: str, out_deg: np.ndarray,
               in_deg: np.ndarray | None) -> int:
    """Scatter ``g(committed)`` from ``order`` into neighbours' Δ.

    ``push`` folds contributions in source-major (CSR slice) order —
    the order the committing vertices scatter; ``pull`` re-groups them
    destination-major first — the order a gathering destination would
    fold the same contributions.  For idempotent ⊕ the two are
    bit-identical; for ADD they differ in the low bits exactly as two
    real schedules would.  Returns the number of edge contributions.
    """
    eids = graph.out_edge_ids(order)
    values = np.repeat(committed, out_deg[order])
    contrib = kernel.gains(graph, eids, values)
    targets = graph.edge_dst[eids]
    if kernel.undirected:
        # Contributions also flow against edge direction: gather the
        # in-edges of the committing vertices and land on their sources.
        eids_in = graph.in_edge_ids(order)
        values_in = np.repeat(committed, in_deg[order])
        contrib = np.concatenate(
            [contrib, kernel.gains(graph, eids_in, values_in)])
        targets = np.concatenate([targets, graph.edge_src[eids_in]])
    if dispatch == "pull" and targets.size:
        regroup = np.argsort(targets, kind="stable")
        targets = targets[regroup]
        contrib = contrib[regroup]
    _fold_at(kernel.op, delta, targets, contrib)
    return int(targets.size)


def _pair_eids(graph: DiGraph, pairs: np.ndarray) -> np.ndarray:
    return np.array([graph.edge_id(int(u), int(v)) for u, v in pairs],
                    dtype=np.int64)


def _repair_invertible(kernel: DeltaKernel, old: DiGraph, new: DiGraph,
                       diff: EdgeDiff, x: np.ndarray,
                       delta: np.ndarray) -> dict:
    """ADD repair: ``Δ += g_new(x) − g_old(x)`` for every source whose
    out-edge multiset changed.  ``x``/``accum`` stay untouched — the
    inverse element absorbs the stale contributions."""
    sources = diff.affected_sources
    old_eids = old.out_edge_ids(sources)
    old_vals = np.repeat(x[sources], old.out_degrees()[sources])
    stale = kernel.gains(old, old_eids, old_vals)
    np.add.at(delta, old.edge_dst[old_eids], -stale)

    new_eids = new.out_edge_ids(sources)
    new_vals = np.repeat(x[sources], new.out_degrees()[sources])
    fresh = kernel.gains(new, new_eids, new_vals)
    np.add.at(delta, new.edge_dst[new_eids], fresh)

    touched = np.union1d(old.edge_dst[old_eids], new.edge_dst[new_eids])
    return {
        "repair_mode": "reseed",
        "repaired_vertices": int(touched.size),
        "seeds": [int(v) for v in sources[:32]],
        "region_capped": False,
    }


def _support_mask(kernel: DeltaKernel, graph: DiGraph, cand: np.ndarray,
                  x: np.ndarray, init_val: np.ndarray,
                  affected: np.ndarray) -> np.ndarray:
    """For each candidate, does a *clean* (unaffected) neighbour or its
    own initial condition still justify its current value?"""
    supported = x[cand] == init_val[cand]
    eids = graph.in_edge_ids(cand)
    if eids.size:
        srcs = graph.edge_src[eids]
        dsts = graph.edge_dst[eids]
        gains = kernel.gains(graph, eids, x[srcs])
        ok = (~affected[srcs]) & (gains == x[dsts])
        if not kernel.strict_gain:
            ok &= x[srcs] == init_val[srcs]
        flags = np.zeros(graph.num_vertices, dtype=bool)
        np.logical_or.at(flags, dsts[ok], True)
        supported |= flags[cand]
    if kernel.undirected:
        eids = graph.out_edge_ids(cand)
        if eids.size:
            srcs = graph.edge_src[eids]   # the candidate itself
            dsts = graph.edge_dst[eids]   # its potential supporter
            gains = kernel.gains(graph, eids, x[dsts])
            ok = (~affected[dsts]) & (gains == x[srcs])
            if not kernel.strict_gain:
                ok &= x[dsts] == init_val[dsts]
            flags = np.zeros(graph.num_vertices, dtype=bool)
            np.logical_or.at(flags, srcs[ok], True)
            supported |= flags[cand]
    return supported


def _repair_idempotent(kernel: DeltaKernel, old: DiGraph, new: DiGraph,
                       diff: EdgeDiff, x: np.ndarray, x0: np.ndarray,
                       delta0: np.ndarray, accum: np.ndarray,
                       delta: np.ndarray) -> dict:
    """MIN/MAX repair: bounded affected-region re-expansion.

    ⊕ has no inverse, so a deleted edge that *supported* a downstream
    value poisons everything derived from it.  Seed the affected set
    with deletion targets whose value the deleted edge justified, grow
    it along the new graph while no clean support exists, then reset the
    region to initial conditions and re-seed its boundary.
    """
    op = kernel.op
    n = new.num_vertices
    init_val = _fold_arr(op, x0, delta0)
    affected = np.zeros(n, dtype=bool)

    seeds: list[int] = []
    if diff.deleted.size:
        del_eids = _pair_eids(old, diff.deleted)
        del_src = diff.deleted[:, 0]
        del_dst = diff.deleted[:, 1]
        gains = kernel.gains(old, del_eids, x[del_src])
        hit = gains == x[del_dst]
        affected[del_dst[hit]] = True
        if kernel.undirected:
            rev = kernel.gains(old, del_eids, x[del_dst])
            rhit = rev == x[del_src]
            affected[del_src[rhit]] = True
        seeds = [int(v) for v in np.flatnonzero(affected)[:32]]

    cap = max(64, int(n * REPAIR_CAP_FRAC))
    capped = False
    frontier = np.flatnonzero(affected)
    rounds = 0
    while frontier.size:
        rounds += 1
        cand = new.edge_dst[new.out_edge_ids(frontier)]
        if kernel.undirected:
            cand = np.concatenate(
                [cand, new.edge_src[new.in_edge_ids(frontier)]])
        cand = np.unique(cand)
        cand = cand[~affected[cand] & (x[cand] != init_val[cand])]
        if not cand.size:
            break
        supported = _support_mask(kernel, new, cand, x, init_val, affected)
        grew = cand[~supported]
        if not grew.size:
            break
        affected[grew] = True
        frontier = grew
        if int(affected.sum()) > cap:
            capped = True
            break

    if capped:
        # Honest fallback: the affected region is most of the graph —
        # restart the delta computation from initial conditions.
        x[:] = x0
        accum[:] = op.identity
        delta[:] = delta0
        return {"repair_mode": "full_restart",
                "repaired_vertices": n, "seeds": seeds,
                "region_capped": True, "taint_rounds": rounds}

    region = np.flatnonzero(affected)
    if region.size:
        x[region] = x0[region]
        accum[region] = op.identity
        delta[region] = delta0[region]
        # Re-seed the region boundary from clean in-neighbours (and, on
        # undirected kernels, clean out-neighbours).
        eids = new.in_edge_ids(region)
        if eids.size:
            srcs = new.edge_src[eids]
            keep = ~affected[srcs]
            _fold_at(op, delta, new.edge_dst[eids][keep],
                     kernel.gains(new, eids[keep], x[srcs[keep]]))
        if kernel.undirected:
            eids = new.out_edge_ids(region)
            if eids.size:
                dsts = new.edge_dst[eids]
                keep = ~affected[dsts]
                _fold_at(op, delta, new.edge_src[eids][keep],
                         kernel.gains(new, eids[keep], x[dsts[keep]]))

    # Inserted edges between clean vertices contribute directly.
    if diff.inserted.size:
        ins = diff.inserted
        keep = ~affected[ins[:, 0]] & ~affected[ins[:, 1]]
        if keep.any():
            ins_eids = _pair_eids(new, ins[keep])
            _fold_at(op, delta, ins[keep][:, 1],
                     kernel.gains(new, ins_eids, x[ins[keep][:, 0]]))
            if kernel.undirected:
                _fold_at(op, delta, ins[keep][:, 0],
                         kernel.gains(new, ins_eids, x[ins[keep][:, 1]]))

    return {"repair_mode": "taint", "repaired_vertices": int(region.size),
            "seeds": seeds, "region_capped": False, "taint_rounds": rounds}


def _normalize_mutations(mutations) -> list[MutationBatch]:
    batches = []
    for item in mutations:
        if isinstance(item, MutationBatch):
            batches.append(item)
        elif isinstance(item, dict):
            batches.append(MutationBatch.from_dict(item))
        else:
            raise TypeError(
                f"mutations must be MutationBatch or dict, got {type(item)!r}")
    return batches


# -- the engine --------------------------------------------------------


def run_delta(
    program: VertexProgram,
    graph: DiGraph,
    config: EngineConfig | None = None,
    *,
    state=None,
    telemetry=None,
    record=None,
    metrics=None,
    direction: str = "pull",
    scheduling: str = "frontier",
    priority_frac: float = 0.25,
    threshold: float | None = None,
    mutations=None,
    interrupt=None,
) -> RunResult:
    """Run ``program`` delta-accumulatively; optionally stream mutation
    batches through the standing result.

    ``direction`` selects the fold order of propagated contributions
    (``push`` = source-major, ``pull`` = destination-major);
    ``scheduling`` either commits the whole active frontier or, with
    ``"priority"``, only the top ``priority_frac`` by residual
    magnitude per round (Maiter's priority scheduling).
    """
    from ..robust.errors import RunInterrupted
    from ..theory.eligibility import check_delta_program

    config = config or EngineConfig()
    report = check_delta_program(program)
    if not report.verdict.eligible:
        raise ValueError(
            "program is not eligible for delta-accumulative execution: "
            + "; ".join(report.reasons))
    if direction not in DELTA_DISPATCHES:
        raise ValueError(
            f"delta direction must be one of {DELTA_DISPATCHES}, "
            f"got {direction!r}")
    if scheduling not in SCHEDULES:
        raise ValueError(
            f"scheduling must be one of {SCHEDULES}, got {scheduling!r}")
    if state is not None:
        raise ValueError("mode='delta' builds its own state; state= is "
                         "not supported")

    kernel = resolve_delta_kernel(program)(program)
    op = kernel.op
    if threshold is None:
        threshold = kernel.default_threshold()
    batches = _normalize_mutations(mutations) if mutations else []

    sink = telemetry
    if sink is not None:
        sink.begin_engine_run("delta", program, config)
    if record is not None:
        record.begin_engine_run("delta", program, config)

    n = graph.num_vertices
    x0, delta0 = kernel.initial(graph)
    x = _fold_arr(op, x0, np.full(n, op.identity))
    accum = np.full(n, op.identity, dtype=np.float64)
    delta = delta0.copy()

    log = ConflictLog()
    stats: list[IterationStats] = []
    clock = PhaseClock() if (sink is not None or metrics is not None) else None
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 23]))
    p = config.threads

    iteration = 0
    converged = False
    committed_total = 0
    mutation_log: list[dict] = []
    pending_phases: dict[str, float] = {}
    batch_idx = 0

    while iteration < config.max_iterations:
        if interrupt is not None:
            reason = interrupt()
            if reason:
                raise RunInterrupted(str(reason), iteration=iteration)
        active = _active_ids(op, x, delta, threshold)
        if active.size == 0:
            if batch_idx < len(batches):
                # Standing result converged — stream in the next batch
                # and repair, then keep iterating on the new graph.
                t_rep = time.perf_counter()
                new_graph, diff = apply_batch(graph, batches[batch_idx])
                if op is CombineOp.ADD:
                    info = _repair_invertible(kernel, graph, new_graph,
                                              diff, x, delta)
                else:
                    info = _repair_idempotent(kernel, graph, new_graph,
                                              diff, x, x0, delta0,
                                              accum, delta)
                graph = new_graph
                dt = time.perf_counter() - t_rep
                info.update(batch=batch_idx,
                            inserted=int(diff.inserted.shape[0]),
                            deleted=int(diff.deleted.shape[0]),
                            repair_seconds=dt,
                            at_iteration=iteration)
                mutation_log.append(info)
                pending_phases["mutate_repair"] = \
                    pending_phases.get("mutate_repair", 0.0) + dt
                if record is not None and hasattr(record, "repair_event"):
                    record.repair_event(iteration=iteration, **{
                        k: info[k] for k in
                        ("batch", "repair_mode", "inserted", "deleted",
                         "repaired_vertices", "seeds", "region_capped")})
                if sink is not None:
                    sink.event("mutation_repair", **{
                        k: v for k, v in info.items() if k != "seeds"})
                batch_idx += 1
                continue
            converged = True
            break

        t0 = time.perf_counter() if clock is not None else 0.0
        if clock is not None:
            clock.start()

        # Nondeterministic schedule: a seeded permutation of the active
        # set stands in for "whichever threads get there first"; with
        # priority scheduling only the largest residuals commit.
        if scheduling == "priority" and active.size > 1:
            if op is CombineOp.ADD:
                score = np.abs(delta[active])
            else:
                score = x[active] - delta[active] if op is CombineOp.MIN \
                    else delta[active] - x[active]
            k = max(1, int(round(active.size * priority_frac)))
            top = np.argpartition(score, active.size - k)[active.size - k:]
            active = active[top]
        order = rng.permutation(active)

        # Commit: fold pending deltas into accum, re-derive x from the
        # accumulation identity (bit-exact by construction), clear Δ.
        committed = delta[order].copy()
        accum[order] = _fold_arr(op, accum[order], committed)
        x[order] = _fold_arr(op, x0[order], accum[order])
        delta[order] = op.identity
        committed_total += int(order.size)
        if clock is not None:
            clock.lap("delta_commit")

        out_deg = graph.out_degrees()
        in_deg = graph.in_degrees() if kernel.undirected else None
        edge_work = _propagate(kernel, graph, order, committed, delta,
                               direction, out_deg, in_deg)
        if clock is not None:
            clock.lap("delta_propagate")

        chunks = np.array_split(order, p)
        edges_per = [int(out_deg[c].sum() + (in_deg[c].sum() if in_deg
                                             is not None else 0))
                     for c in chunks]
        stats.append(IterationStats(
            iteration=iteration,
            num_active=int(order.size),
            updates_per_thread=[int(c.size) for c in chunks],
            reads_per_thread=edges_per,
            writes_per_thread=edges_per,
        ))

        next_active = _active_ids(op, x, delta, threshold)
        if clock is not None:
            wall = time.perf_counter() - t0
            phases = clock.drain()
            if pending_phases:
                for k, v in pending_phases.items():
                    phases[k] = phases.get(k, 0.0) + v
                pending_phases = {}
            if metrics is not None:
                record_iteration_metrics(
                    metrics, "delta", phases=phases,
                    num_active=int(order.size),
                    frontier_size=int(next_active.size),
                    read_write=0, write_write=0, wall_time_s=wall)
            if sink is not None:
                it = stats[-1]
                sink.iteration(
                    iteration=iteration,
                    num_active=it.num_active,
                    updates_per_thread=it.updates_per_thread,
                    reads_per_thread=it.reads_per_thread,
                    writes_per_thread=it.writes_per_thread,
                    frontier_size=int(next_active.size),
                    wall_time_s=wall,
                    phases=phases,
                    edge_contributions=edge_work,
                    peak_rss_bytes=peak_rss_bytes(),
                )
        iteration += 1

    identity_holds = bool(np.array_equal(
        x, _fold_arr(op, x0, accum), equal_nan=True))

    final_state = program.make_state(graph)
    final_state.vertex(kernel.field)[:] = x

    extra = {
        "delta": {
            "threshold": float(threshold),
            "scheduling": scheduling,
            "dispatch": direction,
            "committed_total": committed_total,
            "accumulation_identity": identity_holds,
            "op": op.value,
        },
    }
    if batches:
        extra["mutations"] = mutation_log
        extra["mutations_applied"] = batch_idx
        extra["final_num_edges"] = graph.num_edges

    result = RunResult(
        program=program,
        state=final_state,
        mode="delta",
        converged=converged,
        num_iterations=iteration,
        iterations=stats,
        conflicts=log,
        config=config,
        extra=extra,
    )
    if record is not None:
        record.end_run(result)
    if sink is not None:
        if metrics is not None:
            sink.metrics_snapshot(metrics)
        sink.end_run(result)
    return result
