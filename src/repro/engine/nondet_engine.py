"""The nondeterministic executor: the paper's subject of study.

This engine realizes, exactly, the system model of §II under which the
paper proves Theorems 1 and 2: the *synchronous implementation of the
asynchronous model*.  Execution proceeds in barrier-separated iterations;
within an iteration the chosen updates are dispatched to ``P`` virtual
threads (Fig. 1), run small-label-first per thread, and race on the edge
data they share.  Visibility between same-iteration accesses follows
Definitions 1–3, parameterized by the propagation delay ``d``, with
optional seeded timestamp jitter modelling environmental noise.

Because Python (the GIL, and this reproduction's single-core target)
cannot host genuinely racy native threads, concurrency is *simulated*:
updates execute one at a time in global virtual-time order while the
engine mediates every edge access through the visibility rule.  This is
a faithful — in fact strictly more controllable — realization of the
paper's model:

* a read sees a same-iteration write iff the writer ``≺`` the reader
  (Lemma 1: the edge transmits either the old or the new value, decided
  by the schedule);
* when several updates write one edge, the one with the maximal
  effective timestamp commits at the barrier (Lemma 2: exactly one of
  the competing values survives);
* every conflict is *observed and counted*, which a real racy execution
  cannot do without perturbing itself;
* the whole execution is a deterministic function of
  ``(program, graph, EngineConfig)`` — vary ``seed`` to sample the
  paper's "one run to another".

With ``atomicity=NONE`` the engine additionally injects torn values into
racing accesses, demonstrating why §III's minimal atomicity guarantee is
a precondition for everything else.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph import DiGraph
from ..obs.metrics import PhaseClock, peak_rss_bytes, record_iteration_metrics
from .atomicity import AtomicityPolicy, tear
from .config import EngineConfig
from .conflicts import (
    AccessRecord,
    ConflictLog,
    classify_access_counts,
    classify_accesses,
)
from .dispatch import make_plan
from .frontier import Frontier, initial_frontier
from .ordering import TaskSlot
from .program import UpdateContext, VertexProgram
from .result import IterationStats, RunResult
from .state import State

__all__ = ["NondeterministicEngine"]

# Write record layout inside the per-edge history: (time, thread, vid, value).
_T, _TH, _VID, _VAL = 0, 1, 2, 3


class _RacyStore:
    """Edge store implementing the Definitions 1–3 visibility rule.

    One instance lives for one iteration.  ``current`` is set by the
    engine to the executing update's :class:`TaskSlot` before each call
    into the program.

    With ``keep_access_log=True`` every read is recorded as an individual
    tuple so the barrier can materialize :class:`AccessRecord` streams
    (needed for :class:`~repro.engine.conflicts.ConflictEvent` capture);
    by default only per-reader counters are kept, which yields identical
    aggregate conflict totals at a fraction of the allocation cost.
    """

    __slots__ = (
        "_committed",
        "_delay",
        "_max_delay",
        "_torn",
        "_torn_p",
        "_torn_rng",
        "_keep_log",
        "_settled",
        "writes",
        "reads",
        "read_counts",
        "stale_reads",
        "torn_reads",
        "current",
    )

    def __init__(
        self,
        committed: dict[str, np.ndarray],
        delay_model,
        atomicity: AtomicityPolicy,
        torn_probability: float,
        torn_rng: np.random.Generator | None,
        *,
        keep_access_log: bool = True,
    ):
        self._committed = committed
        self._delay = delay_model  # DelayModel: pairwise propagation delays
        self._max_delay = delay_model.max_delay
        self._torn = atomicity is AtomicityPolicy.NONE
        self._torn_p = torn_probability
        self._torn_rng = torn_rng
        self._keep_log = keep_access_log
        # field -> eid -> list of write records.
        self.writes: dict[str, dict[int, list[tuple]]] = {f: {} for f in committed}
        # Detailed read records (keep_access_log): field -> eid -> [(t, thread, vid)].
        self.reads: dict[str, dict[int, list[tuple]]] = {f: {} for f in committed}
        # Compact read summary (default): field -> eid -> vid -> [thread, count].
        self.read_counts: dict[str, dict[int, dict[int, list[int]]]] = {
            f: {} for f in committed
        }
        # Settled-prefix cache: field -> eid -> [n_settled, best_key, best_val].
        # The first n_settled write records of an edge's history are old
        # enough (t_r - t_w >= max_delay) to be visible to *every* future
        # reader — global execution time is nondecreasing — so they are
        # folded into one running Lemma-2 maximum instead of rescanned.
        self._settled: dict[str, dict[int, list]] = {f: {} for f in committed}
        self.stale_reads = 0
        self.torn_reads = 0
        self.current: TaskSlot | None = None

    def read(self, vid: int, eid: int, field: str) -> float:
        slot = self.current
        t_r, thread_r = slot.time, slot.thread
        if self._keep_log:
            self.reads[field].setdefault(eid, []).append((t_r, thread_r, vid))
        else:
            counts = self.read_counts[field].setdefault(eid, {})
            entry = counts.get(vid)
            if entry is None:
                counts[vid] = [thread_r, 1]
            else:
                entry[1] += 1

        wlist = self.writes[field].get(eid)
        value = self._committed[field][eid]
        racing_value = None
        if wlist:
            cache = self._settled[field].get(eid)
            if cache is None:
                cache = self._settled[field][eid] = [0, None, None]
            n_settled, best_key, best_val = cache
            n_writes = len(wlist)
            # Advance the settled prefix: writes arrive in nondecreasing
            # time order, and a write with t_r - t_w >= max_delay is
            # visible under both the same-thread rule (t_w < t_r) and any
            # cross-thread pairwise delay — now and for every later read.
            while n_settled < n_writes and (
                t_r - wlist[n_settled][_T]
            ) >= self._max_delay:
                w = wlist[n_settled]
                key = (w[_T], w[_VID])
                if best_key is None or key > best_key:
                    best_key = key
                    best_val = w[_VAL]
                n_settled += 1
            cache[0], cache[1], cache[2] = n_settled, best_key, best_val
            if best_key is not None:
                value = best_val
            stale = False
            for i in range(n_settled, n_writes):
                t_w, thread_w, vid_w, val_w = wlist[i]
                if thread_w == thread_r:
                    visible = t_w < t_r
                else:
                    visible = (t_r - t_w) >= self._delay.delay(thread_w, thread_r)
                if visible:
                    key = (t_w, vid_w)
                    if best_key is None or key > best_key:
                        best_key = key
                        value = val_w
                elif vid_w != vid:
                    if t_w <= t_r:
                        stale = True
                    if (
                        self._torn
                        and thread_w != thread_r
                        and abs(t_r - t_w) < self._delay.delay(thread_w, thread_r)
                    ):
                        racing_value = val_w
            if stale:
                self.stale_reads += 1
        if racing_value is not None and self._torn_rng.random() < self._torn_p:
            self.torn_reads += 1
            return tear(float(value), float(racing_value), self._torn_rng)
        return float(value)

    def write(self, vid: int, eid: int, field: str, value: float) -> None:
        slot = self.current
        self.writes[field].setdefault(eid, []).append(
            (slot.time, slot.thread, vid, float(value))
        )

    # ------------------------------------------------------------------
    def commit(
        self,
        state: State,
        iteration: int,
        log: ConflictLog,
        recorder=None,
    ) -> None:
        """Barrier: resolve winners (Lemma 2), commit, classify conflicts.

        With a ``recorder``, every written edge additionally yields
        provenance events *before* its commit is applied — visibility is
        recomputed from the access records the store already holds, so
        the recording adds nothing to the per-access hot path.  Fields
        and edges are walked in sorted order so the event stream is a
        canonical function of the schedule (the property that lets the
        vectorized fast path reproduce it bulk-wise, bit for bit).
        """
        fields = sorted(self.writes) if recorder is not None else self.writes
        for field in fields:
            per_edge = self.writes[field]
            arr = state.edge(field)
            read_map = self.reads[field]
            count_map = self.read_counts[field]
            eids = sorted(per_edge) if recorder is not None else per_edge
            for eid in eids:
                wlist = per_edge[eid]
                winner = max(wlist, key=lambda w: (w[_T], w[_VID]))
                final = winner[_VAL]
                if self._torn and len(wlist) > 1:
                    # A pair of writes racing within the propagation window
                    # may commit a torn mix of the two values.
                    racing = [
                        w
                        for w in wlist
                        if w[_VID] != winner[_VID]
                        and w[_TH] != winner[_TH]
                        and abs(w[_T] - winner[_T])
                        < self._delay.delay(w[_TH], winner[_TH])
                    ]
                    if racing and self._torn_rng.random() < self._torn_p:
                        loser = max(racing, key=lambda w: (w[_T], w[_VID]))
                        final = tear(loser[_VAL], final, self._torn_rng)
                if recorder is not None:
                    self._record_provenance(
                        recorder,
                        iteration,
                        field,
                        eid,
                        wlist,
                        read_map.get(eid, ()),
                        float(arr[eid]),
                        winner,
                        float(final),
                    )
                arr[eid] = final
                if self._keep_log:
                    accesses = [
                        AccessRecord(vid=w[_VID], thread=w[_TH], time=w[_T], is_write=True, value=w[_VAL])
                        for w in wlist
                    ]
                    accesses.extend(
                        AccessRecord(vid=r[2], thread=r[1], time=r[0], is_write=False)
                        for r in read_map.get(eid, ())
                    )
                    classify_accesses(log, iteration, eid, field, accesses, winner[_VID])
                else:
                    classify_access_counts(
                        log,
                        iteration,
                        eid,
                        field,
                        [(w[_VID], w[_TH]) for w in wlist],
                        count_map.get(eid, {}),
                        winner[_VID],
                    )
        log.stale_reads += self.stale_reads

    # ------------------------------------------------------------------
    def _visible(self, t_w: float, thread_w: int, t_r: float, thread_r: int) -> bool:
        """Defs. 1–3: is a write at (t_w, thread_w) visible at (t_r, thread_r)?"""
        if thread_w == thread_r:
            return t_w < t_r
        return (t_r - t_w) >= self._delay.delay(thread_w, thread_r)

    def _record_provenance(
        self,
        recorder,
        iteration: int,
        field: str,
        eid: int,
        wlist: list[tuple],
        rlist,
        pre_value: float,
        winner: tuple,
        final: float,
    ) -> None:
        """Emit Lemma-1 read pairs and the Lemma-2 commit for one edge.

        Read pairs are derived by replaying the visibility rule over the
        recorded access log — every read of one update task shares the
        task's effective timestamp, so one (reader, writer) pair
        classifies uniformly and aggregates to a single ``count`` event.
        """
        # Effective (last) write per distinct writer; global time is
        # nondecreasing, so the last record per vid is its maximum.
        eff: dict[int, tuple] = {}
        for w in wlist:
            eff[w[_VID]] = w
        winner_vid, winner_thread = winner[_VID], winner[_TH]
        if recorder.wants_reads and self._keep_log and rlist:
            readers: dict[int, list] = {}
            for t_r, thread_r, vid_r in rlist:
                entry = readers.get(vid_r)
                if entry is None:
                    readers[vid_r] = [t_r, thread_r, 1]
                else:
                    entry[2] += 1
            for vid_r in sorted(readers):
                t_r, thread_r, count = readers[vid_r]
                observed, best_key = pre_value, None
                for w in wlist:
                    if self._visible(w[_T], w[_TH], t_r, thread_r):
                        key = (w[_T], w[_VID])
                        if best_key is None or key > best_key:
                            best_key, observed = key, w[_VAL]
                for vid_w in sorted(eff):
                    if vid_w == vid_r:
                        continue
                    w = eff[vid_w]
                    if self._visible(w[_T], w[_TH], t_r, thread_r):
                        order, rule = "before", "lemma1-fresh"
                    elif w[_T] <= t_r:
                        order, rule = "concurrent", "lemma1-stale"
                    else:
                        order, rule = "after", "lemma1-old"
                    recorder.read_event(
                        iteration=iteration,
                        field=field,
                        eid=eid,
                        reader=vid_r,
                        reader_thread=thread_r,
                        writer=vid_w,
                        writer_thread=w[_TH],
                        count=count,
                        order=order,
                        rule=rule,
                        value=float(observed),
                    )
        lost = []
        for vid_w in sorted(eff):
            if vid_w == winner_vid:
                continue
            w = eff[vid_w]
            if self._visible(w[_T], w[_TH], winner[_T], winner_thread):
                order = "before"
            elif self._visible(winner[_T], winner_thread, w[_T], w[_TH]):
                order = "after"
            else:
                order = "concurrent"
            lost.append(
                {"vid": vid_w, "thread": w[_TH], "value": float(w[_VAL]), "order": order}
            )
        recorder.commit_event(
            iteration=iteration,
            field=field,
            eid=eid,
            writer=winner_vid,
            writer_thread=winner_thread,
            value=final,
            lost=lost,
            rule="lemma2" if len(eff) > 1 else "uncontended",
        )


class NondeterministicEngine:
    """Simulated racy parallel executor (coordinated, asynchronous model)."""

    mode = "nondeterministic"

    @staticmethod
    def step_iteration(
        program: VertexProgram,
        graph: DiGraph,
        state: State,
        plan,
        config: EngineConfig,
        *,
        iteration: int = 0,
        log: ConflictLog | None = None,
        torn_rng: np.random.Generator | None = None,
        gather_rng: np.random.Generator | None = None,
        stats: list[IterationStats] | None = None,
        recorder=None,
    ) -> set[int]:
        """Execute one racy iteration under an explicit dispatch plan.

        Mutates ``state`` (the barrier commit) and returns ``S_{n+1}``.
        This is the engine's *only* iteration body — :meth:`run` loops it —
        factored out so external drivers, notably the exhaustive schedule
        explorer in :mod:`repro.theory.explore`, can steer the schedule
        directly instead of sampling it through seeds.  ``gather_rng``
        carries the fp-noise stream; when ``stats`` is given, an
        :class:`IterationStats` row with the per-thread work profile is
        appended to it.
        """
        log = log if log is not None else ConflictLog()
        delay_model = config.effective_delay_model()
        committed = {f: state.edge(f) for f in state.edge_field_names}
        store = _RacyStore(
            committed,
            delay_model,
            config.atomicity,
            config.torn_probability,
            torn_rng,
            keep_access_log=config.keep_conflict_events
            or (recorder is not None and recorder.wants_reads),
        )
        next_schedule: set[int] = set()
        p = config.threads
        upd = [0] * p
        reads = [0] * p
        writes = [0] * p
        for vid in plan.execution_order():
            slot = plan.slots[vid]
            store.current = slot
            ctx = UpdateContext(
                vid, graph, state, store, next_schedule, gather_rng=gather_rng,
                strict_scope=config.validate_scope,
            )
            program.update(ctx)
            upd[slot.thread] += 1
            reads[slot.thread] += ctx.n_edge_reads
            writes[slot.thread] += ctx.n_edge_writes
        store.commit(state, iteration, log, recorder=recorder)
        if stats is not None:
            stats.append(
                IterationStats(
                    iteration=iteration,
                    num_active=len(plan.slots),
                    updates_per_thread=upd,
                    reads_per_thread=reads,
                    writes_per_thread=writes,
                )
            )
        return next_schedule

    def run(
        self,
        program: VertexProgram,
        graph: DiGraph,
        config: EngineConfig | None = None,
        *,
        state: State | None = None,
        observer=None,
        telemetry=None,
        record=None,
        supervisor=None,
        metrics=None,
    ) -> RunResult:
        config = config or EngineConfig()
        sink = telemetry
        if sink is not None:
            sink.begin_engine_run(self.mode, program, config)
        if record is not None:
            record.begin_engine_run(self.mode, program, config)
        state = state if state is not None else program.make_state(graph)
        frontier = initial_frontier(program, graph)

        # Independent sub-streams of the master seed: fp-noise, jitter, tearing.
        fp_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 1]))
            if config.fp_noise
            else None
        )
        jitter_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 2]))
            if config.jitter > 0
            else None
        )
        torn_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 3]))
            if config.atomicity is AtomicityPolicy.NONE
            else None
        )

        log = ConflictLog(keep_events=config.keep_conflict_events)
        stats: list[IterationStats] = []
        iteration = 0
        if supervisor is not None:
            rngs = {n: r for n, r in (("fp", fp_rng), ("jitter", jitter_rng),
                                      ("torn", torn_rng)) if r is not None}
            iteration, frontier = supervisor.engine_start(
                self.mode, program, config, state=state, frontier=frontier,
                rngs=rngs, conflicts=log,
            )
        converged = False
        # Coarse phase attribution (pure timing, no RNG draw, so profiled
        # runs stay bit-identical): the object engine interleaves every
        # update with the racy store, so its whole iteration body is one
        # "gather" phase; only the dispatch plan and the span bookkeeping
        # separate out.
        clock = PhaseClock() if (sink is not None or metrics is not None) \
            else None
        while iteration < config.max_iterations:
            if not frontier:
                converged = True
                break
            if supervisor is not None:
                supervisor.pre_iteration(iteration)
                cfg_i = supervisor.iteration_config(iteration, config)
            else:
                cfg_i = config
            t0 = time.perf_counter() if clock is not None else 0.0
            if clock is not None:
                clock.start()
            rw0, ww0 = log.read_write, log.write_write
            active = frontier.sorted_vertices()
            plan = make_plan(
                active,
                config.threads,
                policy=config.dispatch,
                jitter=config.jitter,
                rng=jitter_rng,
            )
            if clock is not None:
                clock.lap("plan_build")
            next_schedule = self.step_iteration(
                program,
                graph,
                state,
                plan,
                cfg_i,
                iteration=iteration,
                log=log,
                torn_rng=torn_rng,
                gather_rng=fp_rng,
                stats=stats,
                recorder=record,
            )
            if supervisor is not None:
                next_schedule = supervisor.post_iteration(
                    iteration, state=state, schedule=next_schedule)
            if clock is not None:
                clock.lap("gather")
                wall = time.perf_counter() - t0
                phases = clock.drain()
                if metrics is not None:
                    record_iteration_metrics(
                        metrics, "object", phases=phases,
                        num_active=len(plan.slots),
                        frontier_size=len(next_schedule),
                        read_write=log.read_write - rw0,
                        write_write=log.write_write - ww0,
                        wall_time_s=wall,
                    )
            if sink is not None:
                it = stats[-1]
                sink.iteration(
                    iteration=iteration,
                    num_active=it.num_active,
                    updates_per_thread=it.updates_per_thread,
                    reads_per_thread=it.reads_per_thread,
                    writes_per_thread=it.writes_per_thread,
                    frontier_size=len(next_schedule),
                    wall_time_s=wall,
                    read_write=log.read_write - rw0,
                    write_write=log.write_write - ww0,
                    phases=phases,
                    peak_rss_bytes=peak_rss_bytes(),
                )
            if observer is not None:
                observer(iteration, state, next_schedule)
            frontier = Frontier(next_schedule)
            iteration += 1
        # At-cap accounting: converged stays False unless the confirming
        # empty-frontier check at the top of an iteration ran (see
        # tests/test_convergence_conformance.py).

        result = RunResult(
            program=program,
            state=state,
            mode=self.mode,
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            conflicts=log,
            config=config,
        )
        if record is not None:
            record.end_run(result)
        if sink is not None:
            if metrics is not None:
                sink.metrics_snapshot(metrics)
            sink.end_run(result)
        return result
