"""Out-of-core nondeterministic execution over PSW shard stores.

:class:`~repro.engine.nondet_vectorized.VectorizedNondetEngine` holds
every edge-indexed array (``committed``, ``seen``, ``ws/wd/wvs/wvd``,
``rs/rd``) fully in memory — ~10 arrays of ``m`` entries, which is what
actually caps the graph scale, not the topology.  This module executes
the *same* racy Defs. 1–3 + Lemma-1/2 model interval-by-interval over a
:class:`~repro.storage.shards.ShardStore`: edge-indexed data lives in
flat scratch files addressed by shard-major slot, and one fix-point pass
touches only the slot ranges incident to the interval it is running —
resident set stays bounded by the largest interval's incident set plus
the ``O(n)`` vertex-indexed arrays.

**Why the interval decomposition is exact.**  The §II scope rule means a
slot's src-side outputs (``ws/wvs/rs``) are written only by the interval
owning ``src[e]`` and its dst-side outputs (``wd/wvd/rd``) only by the
interval owning ``dst[e]`` — the source-sorted sliding windows make
every slot range single-writer across intervals, so a sweep over the
intervals computes exactly the arrays one whole-graph pass would.
Visibility (Defs. 1–3), the Lemma-2 commit rule, and the conflict
accounting are all per-edge predicates of the global dispatch plan,
which is vertex-indexed and in memory; evaluating them on a gathered
slot range is the same arithmetic as evaluating them on the full edge
list.  The chaotic fix-point composes because a *seen* value can only
change on a slot with an active endpoint, and every such slot belongs
to an active interval's shard (dst side) or sliding window (src side) —
the detect sweep covers precisely those.  ``tests/test_outofcore.py``
asserts bit-identity (state, trajectory, per-thread stats, conflict
totals, fix-point pass counts, recorder provenance) against both
in-memory engines per (kernel, seed).

**Fix-point barrier discipline.**  Within one iteration the runner
alternates *compute* sweeps (pass 1, repairs) and *detect* sweeps.  The
detect sweep materializes each side's seen value into ``seen_s``/
``seen_d`` scratch files for every covered slot; the following repair
sweep gathers seen values from those files rather than recomputing them
from the live write files — recomputing would let interval ``i``'s
round-``r+1`` writes leak into interval ``j > i``'s gather within the
same sweep, breaking the round-synchronous semantics the in-memory
engine has by construction.

**Process backend.**  ``backend="process"`` dispatches intervals to a
persistent pool of OS workers: worker ``w`` owns a contiguous BLOCK of
intervals, so every scratch range keeps a single writer across workers
too.  Only the ``O(n)`` master state (plan, ``v0``/``vout``, active and
dirty masks) is shared through one
:class:`~repro.storage.shm.SharedArrayPool` segment; edge data flows
through the page cache.  The pool survives across ``run()`` calls on
the same (store, program) — ``extra["pool_reused"]`` reports reuse —
and is torn down by :meth:`OutOfCoreNondetRunner.close`, on worker
failure, or at GC.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import threading
import time
import traceback
import weakref
from multiprocessing import connection as mp_connection

import numpy as np

from ..obs.metrics import PhaseClock, peak_rss_bytes, record_iteration_metrics
from ..robust.errors import WorkerDied, WorkerTimeout
from ..storage.shm import ArrayLayout, SharedArrayPool
from .config import EngineConfig
from .conflicts import ConflictLog
from .dispatch import plan_arrays
from .frontier import initial_frontier
from .nondet_vectorized import (
    NondetPassContext,
    emit_edge_provenance,
    fallback_reasons,
    resolve_nondet_kernel,
)
from .program import VertexProgram
from .result import IterationStats, RunResult
from .state import State

__all__ = ["FileArray", "OutOfCoreNondetRunner"]


# ----------------------------------------------------------------------
# flat scratch files
# ----------------------------------------------------------------------
class FileArray:
    """A flat on-disk array addressed by slot range, via pread/pwrite.

    Not memory-mapped on purpose: reads are explicit short-lived copies
    and writes go straight to the page cache, so the process RSS never
    grows with the file and concurrent writers to *disjoint* ranges are
    safe across processes (single-writer slot ownership is established
    by the PSW layout).  Created sparse; :meth:`zero` re-punches the
    whole file back to zeros in O(1) syscalls.
    """

    __slots__ = ("path", "dtype", "size", "_itemsize", "_fd", "_io")

    def __init__(self, path: str, dtype, size: int, io=None):
        self.path = path
        self.dtype = np.dtype(dtype)
        self.size = int(size)
        self._itemsize = self.dtype.itemsize
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        nbytes = self.size * self._itemsize
        if os.fstat(self._fd).st_size != nbytes:
            os.ftruncate(self._fd, nbytes)
        self._io = io

    def read(self, a: int, b: int) -> np.ndarray:
        """Slots ``[a, b)`` as a fresh writable array."""
        count = int(b) - int(a)
        nbytes = count * self._itemsize
        io = self._io
        t0 = time.perf_counter() if io is not None else 0.0
        buf = os.pread(self._fd, nbytes, int(a) * self._itemsize)
        if len(buf) != nbytes:  # pragma: no cover - scratch truncated
            raise OSError(f"{self.path}: short read ({len(buf)}/{nbytes} bytes)")
        if io is not None:
            io.bytes_read += nbytes
            io.seconds += time.perf_counter() - t0
        return np.frombuffer(buf, dtype=self.dtype).copy()

    def write(self, a: int, arr: np.ndarray) -> None:
        """Overwrite slots ``[a, a + arr.size)``."""
        data = np.ascontiguousarray(arr, dtype=self.dtype)
        io = self._io
        t0 = time.perf_counter() if io is not None else 0.0
        os.pwrite(self._fd, data.tobytes(), int(a) * self._itemsize)
        if io is not None:
            io.bytes_written += data.nbytes
            io.seconds += time.perf_counter() - t0

    def zero(self) -> None:
        """Reset every slot to zero (sparse, O(1))."""
        os.ftruncate(self._fd, 0)
        os.ftruncate(self._fd, self.size * self._itemsize)

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


class _Scratch:
    """The per-field scratch files of one (store, program) pairing.

    ``committed.<f>`` is the durable edge state (slot-ordered);
    ``seen_s/seen_d`` carry the detect sweep's materialized views;
    ``ws/wd/wvs/wvd/rs/rd`` are the per-iteration output slots, zeroed
    at every barrier.  All files live in ``<store path>.scratch/``.
    """

    def __init__(self, directory: str, field_dtypes: dict, written: tuple,
                 m: int, io=None):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.field_dtypes = {f: np.dtype(dt) for f, dt in field_dtypes.items()}
        self.written = tuple(written)
        self.m = int(m)

        def fa(name, dtype):
            return FileArray(os.path.join(directory, name), dtype, m, io=io)

        self.committed = {f: fa(f + ".committed", dt)
                          for f, dt in self.field_dtypes.items()}
        self.rs = {f: fa(f + ".rs", np.int8) for f in self.field_dtypes}
        self.rd = {f: fa(f + ".rd", np.int8) for f in self.field_dtypes}
        self.seen_s = {f: fa(f + ".seen_s", self.field_dtypes[f])
                       for f in self.written}
        self.seen_d = {f: fa(f + ".seen_d", self.field_dtypes[f])
                       for f in self.written}
        self.ws = {f: fa(f + ".ws", np.bool_) for f in self.written}
        self.wd = {f: fa(f + ".wd", np.bool_) for f in self.written}
        self.wvs = {f: fa(f + ".wvs", self.field_dtypes[f])
                    for f in self.written}
        self.wvd = {f: fa(f + ".wvd", self.field_dtypes[f])
                    for f in self.written}

    def signature(self) -> tuple:
        return (tuple(sorted((f, dt.str) for f, dt in self.field_dtypes.items())),
                tuple(self.written), self.m)

    def _all_files(self):
        for group in (self.committed, self.rs, self.rd, self.seen_s,
                      self.seen_d, self.ws, self.wd, self.wvs, self.wvd):
            yield from group.values()

    def zero_outputs(self) -> None:
        """Zero the per-iteration output slots (ws/wd/rs/rd)."""
        for group in (self.ws, self.wd, self.rs, self.rd):
            for f in group.values():
                f.zero()

    def close(self) -> None:
        for f in self._all_files():
            f.close()


# ----------------------------------------------------------------------
# lazy state facade
# ----------------------------------------------------------------------
class _OocState(State):
    """A :class:`State` whose edge arrays live in the scratch files.

    Vertex arrays are materialized normally (they are ``O(n)`` and the
    engine updates them in place).  ``edge(f)`` gathers the canonical
    ``m``-array from the committed file on demand and caches it; the
    runner flushes the cache back to the files at ``run()`` start (the
    checkpoint-restore path mutates these arrays in place) and clears
    it after every commit barrier so readers always see fresh values.
    """

    def __init__(self, runner: "OutOfCoreNondetRunner", view,
                 vertex_fields, edge_fields):
        self._graph = view
        self._runner = runner
        self._vertex = {name: spec.materialize(view, view.num_vertices)
                        for name, spec in vertex_fields.items()}
        self._edge: dict[str, np.ndarray] = {}
        self._edge_specs = dict(edge_fields)

    @property
    def edge_field_names(self) -> tuple[str, ...]:
        return tuple(self._edge_specs)

    def edge(self, field: str) -> np.ndarray:
        if field not in self._edge_specs:
            raise KeyError(
                f"unknown edge field {field!r}; have {list(self._edge_specs)}"
            )
        if field not in self._edge:
            self._edge[field] = self._runner._gather_canonical(field)
        return self._edge[field]

    def snapshot_edges(self) -> dict[str, np.ndarray]:
        return {f: self.edge(f).copy() for f in self._edge_specs}


# ----------------------------------------------------------------------
# vertex-indexed dispatch plan (PlanCache minus the edge gathers)
# ----------------------------------------------------------------------
class _VertexPlanCache:
    """Frontier-cached dispatch plan holding only ``O(n)`` arrays.

    Consumes the jitter stream at exactly the positions
    :class:`~repro.engine.nondet_vectorized.PlanCache` would — cache
    hits redraw only the per-task times, misses call
    :func:`~repro.engine.dispatch.plan_arrays` — so the out-of-core
    execution shares the in-memory engines' plan bit for bit.
    """

    def __init__(self, n: int, p: int, *, policy, jitter: float, rng):
        self.n, self.p = int(n), int(p)
        self.policy = policy
        self.jitter = jitter
        self.rng = rng
        self.hits = 0
        self._ids: np.ndarray | None = None
        self.thr_v = np.full(self.n, -1, dtype=np.int64)
        self.pi_v = np.zeros(self.n, dtype=np.int64)
        self.time_v = np.zeros(self.n, dtype=np.float64)
        self.active = np.zeros(self.n, dtype=bool)

    def plan(self, active_ids: np.ndarray, dm) -> "_VertexPlanCache":
        ids = np.asarray(active_ids, dtype=np.int64)
        hit = (
            self._ids is not None
            and ids.size == self._ids.size
            and bool(np.array_equal(ids, self._ids))
        )
        if hit:
            self.hits += 1
            if self.jitter > 0:
                self.time_a = self.pi_a + self.rng.uniform(
                    0.0, self.jitter, size=int(ids.size))
                self.time_v[self._ids] = self.time_a
        else:
            if self._ids is not None:
                old = self._ids
                self.thr_v[old] = -1
                self.pi_v[old] = 0
                self.time_v[old] = 0.0
                self.active[old] = False
            self._ids = ids.copy()
            self.thr_a, self.pi_a, self.time_a = plan_arrays(
                ids, self.p, policy=self.policy, jitter=self.jitter,
                rng=self.rng,
            )
            self.thr_v[ids] = self.thr_a
            self.pi_v[ids] = self.pi_a
            self.time_v[ids] = self.time_a
            self.active[ids] = True
        self.dm = dm
        return self


class _Pred:
    """Defs. 1–3 visibility + execution order on one gathered slot range."""

    __slots__ = ("vis_s2d", "vis_d2s", "lex_sd", "lex_ds", "dt",
                 "dst_wins", "thr_s", "thr_d", "t_s", "t_d")


def _edge_predicates(thr_v, pi_v, time_v, active, dm, ls, ld) -> _Pred:
    pr = _Pred()
    thr_s, thr_d = thr_v[ls], thr_v[ld]
    pi_s, pi_d = pi_v[ls], pi_v[ld]
    t_s, t_d = time_v[ls], time_v[ld]
    both = active[ls] & active[ld] & (ls != ld)
    same = thr_s == thr_d
    d_pair = dm.intra if dm.is_uniform else dm.delays(thr_s, thr_d)
    pi_sd = pi_s < pi_d
    pr.vis_s2d = both & np.where(same, pi_sd, (t_d - t_s) >= d_pair)
    pr.vis_d2s = both & np.where(same, pi_d < pi_s, (t_s - t_d) >= d_pair)
    pr.lex_sd = both & (
        (t_s < t_d)
        | ((t_s == t_d) & (pi_sd | ((pi_s == pi_d) & (thr_s < thr_d))))
    )
    pr.lex_ds = both & ~pr.lex_sd
    pr.dt = both & ~same
    pr.dst_wins = (t_d > t_s) | ((t_d == t_s) & (ld > ls))
    pr.thr_s, pr.thr_d = thr_s, thr_d
    pr.t_s, pr.t_d = t_s, t_d
    return pr


# ----------------------------------------------------------------------
# sweep executor (shared by the single-process master and the workers)
# ----------------------------------------------------------------------
class _Exec:
    """Everything one sweep needs over one set of owned intervals."""

    __slots__ = ("store", "scratch", "kernel", "written", "efields",
                 "n", "p", "dm", "active", "dirty", "thr_v", "pi_v",
                 "time_v", "v0", "vout", "out_degrees", "io", "intervals",
                 "_layouts")

    def __init__(self, store, scratch, kernel, intervals, io):
        self.store = store
        self.scratch = scratch
        self.kernel = kernel
        self.written = tuple(kernel.written_fields)
        self.efields = tuple(scratch.field_dtypes)
        self.n = store.num_vertices
        self.out_degrees = np.asarray(store.out_degrees)
        self.io = io
        self.intervals = list(intervals)
        self._layouts: dict[int, tuple] = {}

    def layout(self, k: int):
        """Slot-range layout of interval ``k``'s incident set.

        Returns ``(parts, total, dst_block, src_parts)`` where each part
        is ``(ga, gb, la)`` — global slot range and its local offset in
        the concatenated gather; ``dst_block`` is the full shard ``k``
        (dst-owned slots) and ``src_parts`` the ``(j, k)`` sliding
        windows (src-owned slots), the ``(k, k)`` window addressed
        inside the dst block.
        """
        got = self._layouts.get(k)
        if got is not None:
            return got
        store = self.store
        K = store.num_intervals
        parts: list[tuple[int, int, int]] = []
        src_parts: list[tuple[int, int, int]] = []
        dst_block = None
        off = 0
        for j in range(K):
            if j == k:
                ga = int(store.shard_offsets[j])
                gb = int(store.shard_offsets[j + 1])
                if gb > ga:
                    parts.append((ga, gb, off))
                    dst_block = (ga, gb, off)
                    wa = int(store.window_index[k, k])
                    wb = int(store.window_index[k, k + 1])
                    if wb > wa:
                        src_parts.append((wa, wb, off + wa - ga))
                    off += gb - ga
            else:
                ga = int(store.window_index[j, k])
                gb = int(store.window_index[j, k + 1])
                if gb > ga:
                    parts.append((ga, gb, off))
                    src_parts.append((ga, gb, off))
                    off += gb - ga
        got = (parts, off, dst_block, src_parts)
        self._layouts[k] = got
        return got

    def _topo(self, memmap_arr, parts, total) -> np.ndarray:
        out = np.empty(total, dtype=np.int64)
        for ga, gb, la in parts:
            out[la:la + gb - ga] = memmap_arr[ga:gb]
        self.io.bytes_read += total * 8
        return out

    def _gather(self, fa: FileArray, parts, total) -> np.ndarray:
        out = np.empty(total, dtype=fa.dtype)
        for ga, gb, la in parts:
            out[la:la + gb - ga] = fa.read(ga, gb)
        return out

    def active_intervals(self, sub: np.ndarray) -> list[int]:
        out = []
        for k in self.intervals:
            lo, hi = self.store.interval(k)
            if sub[lo:hi].any():
                out.append(k)
        return out

    # -- compute sweep ---------------------------------------------------
    def pass_sweep(self, sub: np.ndarray, use_seen: bool) -> None:
        """Run the kernel for ``sub``'s vertices, one interval at a time.

        Every interval's incident ranges are gathered into ONE
        concatenated context — a kernel pass must see the interval's
        full incidence at once (splitting per range would recompute
        ``vout`` from partial in-edge sets).  ``use_seen`` selects the
        seen source: committed (pass 1) or the detect sweep's seen
        files (repairs).
        """
        scr = self.scratch
        for k in self.active_intervals(sub):
            parts, total, dst_block, src_parts = self.layout(k)
            ls = self._topo(self.store.psw_src, parts, total)
            ld = self._topo(self.store.psw_dst, parts, total)
            ctx = NondetPassContext.__new__(NondetPassContext)
            ctx.graph = None
            ctx.src, ctx.dst = ls, ld
            ctx.n, ctx.m = self.n, total
            ctx.selfloop = ls == ld
            # Local (dst, src, slot) order == global CSC order restricted
            # to this interval's in-edges: they all live in shard k, and
            # within a shard slots carry strictly ascending canonical ids.
            ctx.in_order = np.lexsort((ls, ld))
            ctx.out_degrees = self.out_degrees
            ctx.active = self.active
            ctx.committed = {f: self._gather(scr.committed[f], parts, total)
                             for f in self.efields}
            ctx.v0 = self.v0
            ctx.vout = self.vout
            ctx.seen_s = dict(ctx.committed)
            ctx.seen_d = dict(ctx.committed)
            if use_seen:
                for f in self.written:
                    ctx.seen_s[f] = self._gather(scr.seen_s[f], parts, total)
                    ctx.seen_d[f] = self._gather(scr.seen_d[f], parts, total)
            ctx.ws = {f: self._gather(scr.ws[f], parts, total)
                      for f in self.written}
            ctx.wd = {f: self._gather(scr.wd[f], parts, total)
                      for f in self.written}
            ctx.wvs = {f: self._gather(scr.wvs[f], parts, total)
                       for f in self.written}
            ctx.wvd = {f: self._gather(scr.wvd[f], parts, total)
                       for f in self.written}
            ctx.rs = {f: self._gather(scr.rs[f], parts, total)
                      for f in self.efields}
            ctx.rd = {f: self._gather(scr.rd[f], parts, total)
                      for f in self.efields}
            # Restrict the recompute set to the interval's own vertices:
            # only they see their full incidence in this slice.  A
            # foreign source on a shard-k edge is recomputed by *its*
            # interval (whose windows hold all its out-edges), which
            # also keeps ``vout`` single-writer across intervals and
            # across pool workers.
            lo, hi = self.store.interval(k)
            sub_k = np.zeros(self.n, dtype=bool)
            sub_k[lo:hi] = sub[lo:hi]
            self.kernel.run_pass(ctx, sub_k)
            self.io.interval_loads += 1
            # Scatter back only the slot ranges this interval owns: the
            # dst side of its shard, the src side of its windows.  The
            # unwritten positions inside those ranges carry the gathered
            # file values, so full-range writes are value-preserving.
            if dst_block is not None:
                ga, gb, la = dst_block
                lb = la + gb - ga
                for f in self.written:
                    scr.wd[f].write(ga, ctx.wd[f][la:lb])
                    scr.wvd[f].write(ga, ctx.wvd[f][la:lb])
                for f in self.efields:
                    scr.rd[f].write(ga, ctx.rd[f][la:lb])
            for ga, gb, la in src_parts:
                lb = la + gb - ga
                for f in self.written:
                    scr.ws[f].write(ga, ctx.ws[f][la:lb])
                    scr.wvs[f].write(ga, ctx.wvs[f][la:lb])
                for f in self.efields:
                    scr.rs[f].write(ga, ctx.rs[f][la:lb])

    # -- detect sweep ----------------------------------------------------
    def detect_sweep(self, first: bool) -> bool:
        """Materialize seen values, mark dirty vertices; True if changed.

        Covers the dst side of every active shard and the src side of
        every active interval's windows — exactly the slots whose seen
        value can change (a change needs a visible fresh write, which
        needs both endpoints active).  ``first`` compares against the
        committed snapshot (round 1 of an iteration); later rounds
        compare against the previous round's seen files.
        """
        scr = self.scratch
        changed = False
        for k in self.active_intervals(self.active):
            parts, total, dst_block, src_parts = self.layout(k)
            if dst_block is not None:
                ga, gb, _ = dst_block
                ls = np.asarray(self.store.psw_src[ga:gb], dtype=np.int64)
                ld = np.asarray(self.store.psw_dst[ga:gb], dtype=np.int64)
                self.io.bytes_read += (gb - ga) * 16
                pr = _edge_predicates(self.thr_v, self.pi_v, self.time_v,
                                      self.active, self.dm, ls, ld)
                for f in self.written:
                    com = scr.committed[f].read(ga, gb)
                    ws = scr.ws[f].read(ga, gb)
                    wvs = scr.wvs[f].read(ga, gb)
                    cur = np.where(pr.vis_s2d & ws, wvs, com)
                    prev = com if first else scr.seen_d[f].read(ga, gb)
                    ch = cur != prev
                    if ch.any():
                        self.dirty[ld[ch]] = True
                        changed = True
                    scr.seen_d[f].write(ga, cur)
            for ga, gb, _ in src_parts:
                ls = np.asarray(self.store.psw_src[ga:gb], dtype=np.int64)
                ld = np.asarray(self.store.psw_dst[ga:gb], dtype=np.int64)
                self.io.bytes_read += (gb - ga) * 16
                pr = _edge_predicates(self.thr_v, self.pi_v, self.time_v,
                                      self.active, self.dm, ls, ld)
                for f in self.written:
                    com = scr.committed[f].read(ga, gb)
                    wd = scr.wd[f].read(ga, gb)
                    wvd = scr.wvd[f].read(ga, gb)
                    cur = np.where(pr.vis_d2s & wd, wvd, com)
                    prev = com if first else scr.seen_s[f].read(ga, gb)
                    ch = cur != prev
                    if ch.any():
                        self.dirty[ls[ch]] = True
                        changed = True
                    scr.seen_s[f].write(ga, cur)
        return changed


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------
_CMD_PASS1 = 1
_CMD_DETECT = 2
_CMD_REPAIR = 3


def _pool_watch(stop_event, barrier, sentinels) -> None:
    """Abort the barrier the moment any worker dies unexpectedly.

    Module-level on purpose: the watcher thread must hold no reference
    to the runner, or refcount GC (and with it the pool finalizer)
    never fires for runner-created temporaries.
    """
    while not stop_event.is_set():
        ready = mp_connection.wait(sentinels, timeout=0.2)
        if stop_event.is_set():
            return
        if ready:
            try:
                barrier.abort()
            except Exception:  # pragma: no cover
                pass
            return


#: Worker-side phase slots in the shared ``phase_w`` rows, in slot
#: order.  Sweep time lands in ``gather`` (pass 1) / ``repair_pass``
#: (detect + repairs) with the pread/pwrite portion carved out into
#: ``shard_io`` from the worker's own ``IOStats.seconds``.
_OOC_WPHASES = ("gather", "repair_pass", "barrier_wait", "shard_io")


def _ooc_worker_main(wid, seg_name, layout, store_path, scratch_dir,
                     program, intervals, conn, barrier, barrier_timeout):
    """OS-process entry point: sweeps over this worker's intervals.

    The worker idles in a pipe poll between iterations (so a persistent
    pool costs nothing while the master is between ``run()`` calls and
    an orphan notices the reparent), and is barrier-paced *within* an
    iteration: command words live in the shared ``ctrl`` block.

    When the master ships a profiling tuple ``(enabled, trace_dir,
    run_id)`` with the iteration message, the worker runs a
    :class:`PhaseClock` over the sweeps, publishes its per-iteration
    phase row into the single-writer ``phase_w`` block before barrier C
    (so the master folds it with the flags), and — when ``trace_dir``
    is set — appends a ``worker_span`` record to its own JSONL segment.
    Profiling is pure timing: no branch of the sweep code depends on
    it, so profiled runs stay bit-identical.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # master owns ^C
    except (ValueError, OSError):  # pragma: no cover
        pass
    ppid = os.getppid()
    pool = None
    seg_fh = None
    try:
        from ..storage.shards import IOStats, ShardStore

        store = ShardStore(store_path)
        kernel = resolve_nondet_kernel(program)(program)
        field_dtypes = {f: np.dtype(spec.dtype)
                        for f, spec in program.edge_fields().items()}
        wio = IOStats()
        scratch = _Scratch(scratch_dir, field_dtypes,
                           tuple(kernel.written_fields), store.num_edges,
                           io=wio)
        pool = SharedArrayPool.attach(seg_name, layout)
        ctrl = pool.array("ctrl")
        flags = pool.array("flags")
        iostat = pool.array("iostat")
        phase_w = pool.array("phase_w")
        wcount = pool.array("wcount")
        ex = _Exec(store, scratch, kernel, intervals, wio)
        ex.active = pool.array("active")
        ex.dirty = pool.array("dirty")
        ex.thr_v = pool.array("thr_v")
        ex.pi_v = pool.array("pi_v")
        ex.time_v = pool.array("time_v")
        ex.v0 = pool.arrays("v0:")
        ex.vout = pool.arrays("vout:")
        ex.dm = None
        epoch = 0
        prof_key = None
        trace_dir = None
        while True:
            while not conn.poll(1.0):
                if os.getppid() != ppid:
                    return
            msg = conn.recv()
            if msg[0] == "stop":
                return
            if msg[1] is not None:  # delay model shipped only on change
                ex.dm = msg[1]
            iteration = int(msg[2]) if len(msg) > 2 else 0
            prof = msg[3] if len(msg) > 3 else None
            clock = None
            if prof is not None and prof[0]:
                if prof_key != (prof[1], prof[2]):
                    # New run (or a redirected trace dir): fresh barrier
                    # epoch and a fresh segment file on a warm pool.
                    if seg_fh is not None:
                        seg_fh.close()
                        seg_fh = None
                    prof_key = (prof[1], prof[2])
                    trace_dir = prof[1]
                    epoch = 0
                clock = PhaseClock()
            sweeps = 0
            io_seen = wio.seconds

            def lap_io(phase):
                # Lap, then carve the pread/pwrite seconds accumulated
                # during it out into the dedicated shard_io phase.
                nonlocal io_seen
                clock.lap(phase)
                clock.split(phase, "shard_io", wio.seconds - io_seen)
                io_seen = wio.seconds

            # One iteration: PASS1 now, then barrier-paced rounds.
            if clock is not None:
                clock.start()
            ex.pass_sweep(ex.active, use_seen=False)
            sweeps += 1
            if clock is not None:
                lap_io("gather")
            barrier.wait(barrier_timeout)       # A: pass-1 writes durable
            epoch += 1
            if clock is not None:
                clock.lap("barrier_wait")
            while True:
                barrier.wait(barrier_timeout)   # B: dirty/flags cleared
                epoch += 1
                if clock is not None:
                    clock.lap("barrier_wait")
                first = bool(ctrl[1])
                changed = ex.detect_sweep(first)
                flags[wid] = 1 if changed else 0
                # Publish cumulative I/O counters (single-writer row);
                # barrier C orders the write before the master's fold.
                iostat[wid, 0] = ex.io.bytes_read
                iostat[wid, 1] = ex.io.bytes_written
                iostat[wid, 2] = ex.io.interval_loads
                if clock is not None:
                    # Phase row published before every C: the last write
                    # before the final C is what the master folds (the C
                    # wait itself ends the measured window, as in the
                    # in-memory process backend).
                    lap_io("repair_pass")
                    for k, name in enumerate(_OOC_WPHASES):
                        phase_w[wid, k] = clock.acc.get(name, 0.0)
                    wcount[wid] = sweeps
                barrier.wait(barrier_timeout)   # C: flags posted
                epoch += 1
                if not flags.any():
                    break
                if clock is not None:
                    clock.lap("barrier_wait")  # the C wait, non-final round
                ex.pass_sweep(ex.dirty & ex.active, use_seen=True)
                sweeps += 1
                if clock is not None:
                    lap_io("repair_pass")
                barrier.wait(barrier_timeout)   # D: repair writes durable
                epoch += 1
                if clock is not None:
                    clock.lap("barrier_wait")
            if clock is not None and trace_dir:
                phases = {k: v for k, v in clock.drain().items() if v > 0}
                if seg_fh is None:
                    seg_fh = open(
                        os.path.join(trace_dir, f"worker-{wid}.jsonl"),
                        "w", encoding="utf-8")
                    json.dump({"type": "event", "name": "worker_start",
                               "worker": wid, "pid": os.getpid(),
                               "intervals": len(intervals)},
                              seg_fh, separators=(",", ":"))
                    seg_fh.write("\n")
                json.dump({"type": "worker_span", "worker": wid,
                           "iteration": iteration, "epoch": epoch,
                           "phases": phases, "sweeps": sweeps,
                           "owned": len(intervals)},
                          seg_fh, separators=(",", ":"))
                seg_fh.write("\n")
                seg_fh.flush()
    except threading.BrokenBarrierError:
        return  # master aborted (timeout, shutdown, or a sibling died)
    except (EOFError, OSError):
        return  # master side of the pipe went away
    except Exception:  # pragma: no cover - exercised via chaos tests
        try:
            conn.send(("error", wid, traceback.format_exc()))
        except Exception:
            pass
        try:
            barrier.abort()
        except Exception:
            pass
    finally:
        if seg_fh is not None:
            try:
                seg_fh.close()
            except Exception:  # pragma: no cover
                pass
        if pool is not None:
            pool.release_views()
            pool.close()


def _destroy_pool(procs, conns, barrier, shm_pool, arrays, stop_event):
    """Last-resort teardown (weakref.finalize target: no pool ref)."""
    stop_event.set()
    for conn in conns:
        try:
            conn.send(("stop", None))
        except Exception:
            pass
    try:
        barrier.abort()
    except Exception:
        pass
    for proc in procs:
        proc.join(timeout=5.0)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - last resort
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    arrays.clear()  # drop numpy views pinning the segment
    shm_pool.close()


class _OocPool:
    """A persistent set of interval workers over one shm segment.

    Shares only the ``O(n)`` master state (plan, masks, ``v0``/``vout``)
    — edge data stays in the scratch files.  Interval ownership is a
    static BLOCK partition, so every scratch slot range keeps exactly
    one writer across workers.
    """

    def __init__(self, store, scratch, program, state, workers: int,
                 timeout: float | None):
        n = store.num_vertices
        K = store.num_intervals
        self.workers = workers
        self.timeout = None if timeout is None else float(timeout)
        specs: dict[str, tuple[tuple[int, ...], object]] = {
            "active": ((n,), np.bool_),
            "dirty": ((n,), np.bool_),
            "thr_v": ((n,), np.int64),
            "pi_v": ((n,), np.int64),
            "time_v": ((n,), np.float64),
            "flags": ((workers,), np.uint8),
            "ctrl": ((4,), np.int64),
            "iostat": ((workers, 3), np.int64),
            # Single-writer per-worker profiling rows, folded by the
            # master after barrier C exactly like ``iostat`` (zeroed by
            # the master at publish time, so they are per-iteration).
            "phase_w": ((workers, len(_OOC_WPHASES)), np.float64),
            "wcount": ((workers,), np.int64),
        }
        for f in state.vertex_field_names:
            dt = state.vertex(f).dtype
            specs["v0:" + f] = ((n,), dt)
            specs["vout:" + f] = ((n,), dt)
        self.layout = ArrayLayout.build(specs)
        self.shm = SharedArrayPool.create(self.layout)
        self.arrays = {name: self.shm.array(name)
                       for name in self.layout.names()}
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        self.barrier = ctx.Barrier(workers + 1)
        worker_timeout = (
            None if self.timeout is None else self.timeout * 4 + 30.0
        )
        self.procs: list = []
        self.conns: list = []
        self._stop_event = threading.Event()
        try:
            for w in range(workers):
                my = [k for k in range(K)
                      if w * K // workers <= k < (w + 1) * K // workers]
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_ooc_worker_main,
                    name=f"repro-ooc-worker-{w}",
                    args=(w, self.shm.name, self.layout, store.path,
                          scratch.directory, program, my, child,
                          self.barrier, worker_timeout),
                    daemon=True,
                )
                proc.start()
                child.close()
                self.procs.append(proc)
                self.conns.append(parent)
        except BaseException:
            _destroy_pool(self.procs, self.conns, self.barrier, self.shm,
                          self.arrays, self._stop_event)
            raise
        self._watcher = threading.Thread(
            target=_pool_watch, name="repro-ooc-watcher", daemon=True,
            args=(self._stop_event, self.barrier,
                  [p.sentinel for p in self.procs]))
        self._watcher.start()
        self._finalizer = weakref.finalize(
            self, _destroy_pool, self.procs, self.conns, self.barrier,
            self.shm, self.arrays, self._stop_event)
        self.last_dm = None
        self._io_seen = np.zeros((workers, 3), dtype=np.int64)

    def sync(self) -> None:
        """One master barrier step (raises BrokenBarrierError on loss)."""
        self.barrier.wait(self.timeout)

    def fold_io(self, io) -> None:
        """Fold worker-side I/O into ``io`` (delta vs the last fold, so
        reuse of a warm pool across ``run()`` calls stays correct)."""
        cur = self.arrays["iostat"].copy()
        delta = cur - self._io_seen
        self._io_seen = cur
        io.bytes_read += int(delta[:, 0].sum())
        io.bytes_written += int(delta[:, 1].sum())
        io.interval_loads += int(delta[:, 2].sum())

    def begin_iteration(self, dm, iteration: int = 0, prof=None) -> None:
        payload = dm if dm != self.last_dm else None
        if payload is not None:
            self.last_dm = dm
        for conn in self.conns:
            conn.send(("iter", payload, iteration, prof))

    def worker_phases(self) -> list[dict[str, float]]:
        """Per-worker phase dicts for the iteration just folded."""
        rows = self.arrays["phase_w"]
        return [
            {name: float(rows[w, k])
             for k, name in enumerate(_OOC_WPHASES) if rows[w, k] > 0}
            for w in range(self.workers)
        ]

    def failure(self, iteration: int):
        """Classify a broken barrier into WorkerDied/WorkerTimeout."""
        errors: list[tuple[int, str]] = []
        for w, conn in enumerate(self.conns):
            try:
                while conn.poll(0):
                    msg = conn.recv()
                    if msg and msg[0] == "error":
                        errors.append((w, msg[2]))
            except (EOFError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=0.2)
        dead = [w for w, proc in enumerate(self.procs)
                if not proc.is_alive()]
        if errors:
            wid, tb = errors[0]
            return WorkerDied(
                f"out-of-core worker {wid} raised at iteration "
                f"{iteration}:\n{tb}",
                iteration=iteration, workers=tuple(w for w, _ in errors))
        if dead:
            abnormal = [w for w in dead if self.procs[w].exitcode != 0]
            culprits = abnormal or dead
            codes = {w: self.procs[w].exitcode for w in culprits}
            return WorkerDied(
                f"out-of-core worker(s) {culprits} died at iteration "
                f"{iteration} (exit codes {codes})",
                iteration=iteration, workers=tuple(culprits))
        return WorkerTimeout(
            f"out-of-core workers failed to reach the barrier within "
            f"{self.timeout}s at iteration {iteration}",
            iteration=iteration, stuck=tuple(range(len(self.procs))))

    @property
    def alive(self) -> bool:
        return (self._finalizer.alive
                and all(proc.is_alive() for proc in self.procs))

    def close(self) -> None:
        if not self._finalizer.alive:
            return
        self._stop_event.set()
        for conn in self.conns:
            try:
                conn.send(("stop", None))
            except Exception:
                pass
        for proc in self.procs:
            proc.join(timeout=5.0)
        self._watcher.join(timeout=2.0)
        self._finalizer()


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class OutOfCoreNondetRunner:
    """Interval-sliced racy execution over a :class:`ShardStore`.

    Bit-for-bit identical to
    :class:`~repro.engine.nondet_vectorized.VectorizedNondetEngine` per
    (mode, seed) — final state, iteration/frontier trajectory,
    per-thread stats, conflict totals, fix-point pass counts, recorder
    provenance — while holding only ``O(n)`` vertex-indexed arrays plus
    one interval's incident slot ranges in memory.  Obtain one via
    :meth:`ShardStore.nondet_runner` (cached there so supervised
    restarts resume against the same live scratch), or pass the store
    straight to :func:`repro.engine.run`.
    """

    mode = "nondeterministic"

    #: Slots per streaming chunk for canonical gathers/scatters.
    CHUNK = 1 << 20

    def __init__(self, store):
        from ..storage.shards import IOStats

        self.store = store
        self._view = store.graph_view()
        self.io = IOStats()
        self._scratch: _Scratch | None = None
        self._pool: _OocPool | None = None
        self._pool_key = None
        # Monotone per-run id shipped to pool workers with the profiling
        # tuple: a warm pool resets its barrier epoch and reopens its
        # trace segment when the id changes.
        self._run_counter = 0

    # -- scratch management ---------------------------------------------
    def _ensure_scratch(self, program: VertexProgram, kernel) -> None:
        field_dtypes = {f: np.dtype(spec.dtype)
                        for f, spec in program.edge_fields().items()}
        written = tuple(kernel.written_fields)
        sig = (tuple(sorted((f, dt.str) for f, dt in field_dtypes.items())),
               written, self.store.num_edges)
        if self._scratch is not None:
            if self._scratch.signature() == sig:
                return
            self._teardown_pool()
            self._scratch.close()
            self._scratch = None
        self._scratch = _Scratch(self.store.path + ".scratch", field_dtypes,
                                 written, self.store.num_edges, io=self.io)

    def _scatter_canonical(self, fa: FileArray, arr: np.ndarray) -> None:
        """Write a canonical-order ``m``-array into slot order."""
        m = self.store.num_edges
        for a in range(0, m, self.CHUNK):
            b = min(a + self.CHUNK, m)
            eid = np.asarray(self.store.psw_eid[a:b], dtype=np.int64)
            fa.write(a, arr[eid])

    def _gather_canonical(self, field: str) -> np.ndarray:
        """The committed edge array for ``field`` in canonical order."""
        scr = self._scratch
        if scr is None or field not in scr.committed:
            raise KeyError(f"no scratch state for edge field {field!r}")
        m = self.store.num_edges
        out = np.empty(m, dtype=scr.field_dtypes[field])
        fa = scr.committed[field]
        for a in range(0, m, self.CHUNK):
            b = min(a + self.CHUNK, m)
            eid = np.asarray(self.store.psw_eid[a:b], dtype=np.int64)
            out[eid] = fa.read(a, b)
        return out

    def _sync_state(self, state: "_OocState") -> None:
        """Flush cached (possibly caller-mutated) edge arrays to disk."""
        for f, arr in state._edge.items():
            self._scatter_canonical(self._scratch.committed[f], arr)
        state._edge.clear()

    # -- state construction ----------------------------------------------
    def make_state(self, program: VertexProgram) -> _OocState:
        """Initial :class:`State` with edge fields in the scratch files.

        Scalar initializers are streamed (never materializing an
        ``m``-array); callable initializers are materialized once in
        canonical order and scattered to slot order in chunks.
        """
        factory = resolve_nondet_kernel(program)
        if factory is None:
            raise ValueError(
                "out-of-core execution needs a registered vectorized "
                f"kernel; none for {type(program).__name__}"
            )
        kernel = factory(program)
        self._ensure_scratch(program, kernel)
        state = _OocState(self, self._view, program.vertex_fields(),
                          program.edge_fields())
        m = self.store.num_edges
        for f, spec in program.edge_fields().items():
            fa = self._scratch.committed[f]
            if callable(spec.init):
                self._scatter_canonical(fa, spec.materialize(self._view, m))
            elif spec.init == 0:
                fa.zero()
            else:
                chunk = np.full(min(self.CHUNK, max(m, 1)), spec.init,
                                dtype=fa.dtype)
                for a in range(0, m, self.CHUNK):
                    b = min(a + self.CHUNK, m)
                    fa.write(a, chunk[:b - a])
        for group in (self._scratch.seen_s, self._scratch.seen_d,
                      self._scratch.wvs, self._scratch.wvd):
            for fa in group.values():
                fa.zero()
        self._scratch.zero_outputs()
        return state

    # -- pool management --------------------------------------------------
    @staticmethod
    def _program_sig(program: VertexProgram) -> tuple:
        items = []
        for k in sorted(vars(program)):
            v = vars(program)[k]
            if isinstance(v, np.ndarray):
                items.append((k, v.dtype.str, v.shape, hash(v.tobytes())))
            else:
                items.append((k, repr(v)))
        return (type(program), tuple(items))

    def _ensure_pool(self, program, state, config, workers):
        key = (self._program_sig(program), workers, config.worker_timeout_s,
               tuple(state.vertex_field_names),
               tuple(state.vertex(f).dtype.str
                     for f in state.vertex_field_names))
        if (self._pool is not None and self._pool.alive
                and self._pool_key == key):
            return self._pool, True
        self._teardown_pool()
        self._pool = _OocPool(self.store, self._scratch, program, state,
                              workers, config.worker_timeout_s)
        self._pool_key = key
        return self._pool, False

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_key = None

    def close(self) -> None:
        """Tear down the worker pool and close the scratch files."""
        self._teardown_pool()
        if self._scratch is not None:
            self._scratch.close()
            self._scratch = None

    # -- commit barrier ---------------------------------------------------
    def _finalize(self, plan, dm, log, record, iteration, p, written,
                  efields):
        """Lemma-2 commits + conflict/stat accounting, master side.

        Sweeps each shard once: active shards in full, inactive shards
        only through the sliding windows of active intervals — together
        exactly the slots that can hold a nonzero output (a src-side
        output implies an active source, hence an active window; a
        dst-side output implies an active destination, hence an active
        shard), each exactly once.
        """
        store, scr, io = self.store, self._scratch, self.io
        K = store.num_intervals
        n = store.num_vertices
        acts = []
        for k in range(K):
            lo, hi = store.interval(k)
            if plan.active[lo:hi].any():
                acts.append(k)
        act_set = set(acts)
        next_mask = np.zeros(n, dtype=bool)
        conf = {f: [0, 0, 0, 0] for f in written}
        reads_acc = {(f, side): np.zeros(p, dtype=np.float64)
                     for f in efields for side in (0, 1)}
        writes_t = np.zeros(p, dtype=np.int64)
        prov: dict[str, list] | None = (
            {f: [] for f in written} if record is not None else None)
        for j in range(K):
            a = int(store.shard_offsets[j])
            b = int(store.shard_offsets[j + 1])
            if b <= a:
                continue
            if j in act_set:
                subranges = [(a, b)]
            else:
                subranges = []
                for k in acts:
                    wa = int(store.window_index[j, k])
                    wb = int(store.window_index[j, k + 1])
                    if wb > wa:
                        if subranges and subranges[-1][1] == wa:
                            subranges[-1] = (subranges[-1][0], wb)
                        else:
                            subranges.append((wa, wb))
            for ga, gb in subranges:
                ls = np.asarray(store.psw_src[ga:gb], dtype=np.int64)
                ld = np.asarray(store.psw_dst[ga:gb], dtype=np.int64)
                io.bytes_read += (gb - ga) * 16
                pr = _edge_predicates(plan.thr_v, plan.pi_v, plan.time_v,
                                      plan.active, dm, ls, ld)
                rs_all = {f: scr.rs[f].read(ga, gb) for f in efields}
                rd_all = {f: scr.rd[f].read(ga, gb) for f in efields}
                for f in written:
                    ws = scr.ws[f].read(ga, gb)
                    wd = scr.wd[f].read(ga, gb)
                    wvs = scr.wvs[f].read(ga, gb)
                    wvd = scr.wvd[f].read(ga, gb)
                    rs, rd = rs_all[f], rd_all[f]
                    com = scr.committed[f].read(ga, gb)
                    if prov is not None:
                        sel = ws | wd
                        if sel.any():
                            eid = np.asarray(store.psw_eid[ga:gb],
                                             dtype=np.int64)
                            prov[f].append({
                                "eid": eid[sel], "u": ls[sel], "v": ld[sel],
                                "selfloop": (ls == ld)[sel],
                                "ws": ws[sel], "wd": wd[sel],
                                "wvs": wvs[sel], "wvd": wvd[sel],
                                "rs": rs[sel], "rd": rd[sel],
                                "pre": com[sel],
                                "vis_s2d": pr.vis_s2d[sel],
                                "vis_d2s": pr.vis_d2s[sel],
                                "dst_wins": pr.dst_wins[sel],
                                "t_s": pr.t_s[sel], "t_d": pr.t_d[sel],
                                "thr_s": pr.thr_s[sel],
                                "thr_d": pr.thr_d[sel],
                            })
                    new = com  # fresh read; safe to commit in place
                    only = ws & ~wd
                    new[only] = wvs[only]
                    only = wd & ~ws
                    new[only] = wvd[only]
                    both_w = ws & wd
                    sel2 = both_w & pr.dst_wins
                    new[sel2] = wvd[sel2]
                    sel2 = both_w & ~pr.dst_wins
                    new[sel2] = wvs[sel2]
                    scr.committed[f].write(ga, new)
                    # Task-generation rule: a written edge schedules the
                    # far endpoint.
                    next_mask[ld[ws]] = True
                    next_mask[ls[wd]] = True
                    dt = pr.dt
                    c = conf[f]
                    c[0] += int(rs[wd & dt].sum()) + int(rd[ws & dt].sum())
                    ww_mask = both_w & dt
                    c[1] += int(np.count_nonzero(ww_mask))
                    c[2] += int(np.count_nonzero(
                        ((rs > 0) & wd & dt) | ((rd > 0) & ws & dt) | ww_mask
                    ))
                    c[3] += int(rs[wd & pr.lex_ds & ~pr.vis_d2s].sum())
                    c[3] += int(rd[ws & pr.lex_sd & ~pr.vis_s2d].sum())
                    writes_t += np.bincount(pr.thr_s[ws], minlength=p)
                    writes_t += np.bincount(pr.thr_d[wd], minlength=p)
                for f in efields:
                    for counts, thr_e, side in ((rs_all[f], pr.thr_s, 0),
                                                (rd_all[f], pr.thr_d, 1)):
                        mask = counts > 0
                        if mask.any():
                            reads_acc[(f, side)] += np.bincount(
                                thr_e[mask],
                                weights=counts[mask].astype(np.float64),
                                minlength=p)
        for f in written:
            rw, ww, cont, stale = conf[f]
            log.read_write += rw
            log.write_write += ww
            log.contended_edges += cont
            log.lost_writes += ww
            log.stale_reads += stale
            if rw + ww:
                log.per_iteration[iteration] += rw + ww
        reads_t = np.zeros(p, dtype=np.int64)
        for f in efields:
            for side in (0, 1):
                reads_t += reads_acc[(f, side)].astype(np.int64)
        if record is not None:
            self._emit(record, prov, iteration, written)
        return next_mask, reads_t, writes_t

    @staticmethod
    def _emit(record, prov, iteration, written) -> None:
        """Replay the canonical provenance stream from slot-order tuples."""
        wants_reads = record.wants_reads
        for f in sorted(written):
            chunks = prov[f]
            if not chunks:
                continue
            cat = {k: np.concatenate([c[k] for c in chunks])
                   for k in chunks[0]}
            for i in np.argsort(cat["eid"], kind="stable"):
                emit_edge_provenance(
                    record, iteration, f, int(cat["eid"][i]),
                    u=int(cat["u"][i]), v=int(cat["v"][i]),
                    selfloop=bool(cat["selfloop"][i]),
                    ws=bool(cat["ws"][i]), wd=bool(cat["wd"][i]),
                    wvs=float(cat["wvs"][i]), wvd=float(cat["wvd"][i]),
                    rs=int(cat["rs"][i]), rd=int(cat["rd"][i]),
                    pre=float(cat["pre"][i]),
                    vis_s2d=bool(cat["vis_s2d"][i]),
                    vis_d2s=bool(cat["vis_d2s"][i]),
                    dst_wins=bool(cat["dst_wins"][i]),
                    t_s=float(cat["t_s"][i]), t_d=float(cat["t_d"][i]),
                    thr_s=int(cat["thr_s"][i]), thr_d=int(cat["thr_d"][i]),
                    wants_reads=wants_reads,
                )

    # -- the run loop ------------------------------------------------------
    def run(self, program: VertexProgram, config: EngineConfig | None = None,
            *, state: _OocState | None = None, observer=None, telemetry=None,
            record=None, supervisor=None, backend: str | None = None,
            metrics=None) -> RunResult:
        """Execute ``program`` out of core; mirrors the vectorized engine.

        ``backend="process"`` dispatches shard intervals to a persistent
        worker pool (BLOCK interval ownership); anything else runs the
        interval sweeps in this process.  Either way the result is
        bit-identical to the in-memory vectorized engine.
        """
        config = config or EngineConfig()
        reasons = fallback_reasons(program, config)
        if reasons:
            raise ValueError(
                "program/config not eligible for the out-of-core "
                "nondeterministic runner (it executes the vectorized "
                "kernels): " + "; ".join(reasons)
            )
        if backend not in (None, "", "process"):
            raise ValueError(
                f"unknown backend {backend!r} for the out-of-core runner; "
                "use 'process' or None"
            )
        use_pool = backend == "process"
        sink = telemetry
        if sink is not None:
            sink.begin_engine_run(self.mode, program, config)
        if record is not None:
            record.begin_engine_run(self.mode, program, config)
        kernel = resolve_nondet_kernel(program)(program)
        if state is None:
            state = self.make_state(program)
        else:
            if not isinstance(state, _OocState) or state._runner is not self:
                raise ValueError(
                    "state must come from this runner's make_state()")
            self._ensure_scratch(program, kernel)

        store = self.store
        n, K = store.num_vertices, store.num_intervals
        written = tuple(kernel.written_fields)
        efields = tuple(state.edge_field_names)
        vfields = tuple(state.vertex_field_names)
        p = config.threads
        delay_model = config.effective_delay_model()
        jitter_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 2]))
            if config.jitter > 0 else None
        )
        io = self.io
        io.bytes_read = 0
        io.bytes_written = 0
        io.interval_loads = 0
        io.seconds = 0.0

        log = ConflictLog(keep_events=config.keep_conflict_events)
        stats: list[IterationStats] = []
        frontier_ids = initial_frontier(program, self._view).sorted_vertices()
        iteration = 0
        if supervisor is not None:
            rngs = {"jitter": jitter_rng} if jitter_rng is not None else {}
            iteration, frontier_ids = supervisor.engine_start(
                self.mode, program, config, state=state,
                frontier=frontier_ids, rngs=rngs, conflicts=log)
        # A restored checkpoint (or caller edits) lands in the state's
        # cache; push it to the committed files before sweeping, and
        # clear any outputs left behind by an aborted run.
        self._sync_state(state)
        self._scratch.zero_outputs()

        converged = False
        total_passes = 0
        plan_cache = _VertexPlanCache(n, p, policy=config.dispatch,
                                      jitter=config.jitter, rng=jitter_rng)
        workers = max(1, min(p, K))
        pool = None
        pool_reused = False
        ex = _Exec(store, self._scratch, kernel, list(range(K)), io)
        # Phase attribution is pure timing — no branch of the sweep or
        # commit code depends on it — so profiled runs stay bit-identical
        # to bare ones.
        self._run_counter += 1
        profile_on = sink is not None or metrics is not None
        worker_dir = getattr(sink, "worker_dir", None)
        if worker_dir is not None:
            os.makedirs(worker_dir, exist_ok=True)
        prof = ((True, worker_dir, self._run_counter)
                if profile_on and use_pool else None)
        clock = PhaseClock() if profile_on else None
        epoch = 0
        io_seen = io.seconds

        def lap_io(phase):
            # Lap, then carve the pread/pwrite seconds accumulated
            # during it out into the dedicated shard_io phase.
            nonlocal io_seen
            clock.lap(phase)
            clock.split(phase, "shard_io", io.seconds - io_seen)
            io_seen = io.seconds

        try:
            while iteration < config.max_iterations:
                if frontier_ids.size == 0:
                    converged = True
                    break
                if use_pool and pool is None:
                    pool, pool_reused = self._ensure_pool(
                        program, state, config, workers)
                if supervisor is not None:
                    supervisor.pre_iteration(iteration)
                    dm_i = supervisor.iteration_delay_model(
                        iteration, delay_model) or delay_model
                else:
                    dm_i = delay_model
                t0 = time.perf_counter() if clock is not None else 0.0
                if clock is not None:
                    clock.start()
                    io_seen = io.seconds
                rw0, ww0 = log.read_write, log.write_write
                passes0 = total_passes
                active_ids = frontier_ids
                plan = plan_cache.plan(active_ids, dm_i)
                ex.dm = dm_i
                if clock is not None:
                    clock.lap("plan_build")
                worker_phases = None
                if pool is not None:
                    sh = pool.arrays
                    np.copyto(sh["thr_v"], plan.thr_v)
                    np.copyto(sh["pi_v"], plan.pi_v)
                    np.copyto(sh["time_v"], plan.time_v)
                    np.copyto(sh["active"], plan.active)
                    sh["dirty"].fill(False)
                    sh["flags"].fill(0)
                    sh["phase_w"].fill(0.0)
                    sh["wcount"].fill(0)
                    for f in vfields:
                        arr = state.vertex(f)
                        np.copyto(sh["v0:" + f], arr)
                        np.copyto(sh["vout:" + f], arr)
                    ex.vout = {f: sh["vout:" + f] for f in vfields}
                    ctrl = sh["ctrl"]
                    try:
                        # Workers run PASS1 on receipt.
                        pool.begin_iteration(dm_i, iteration, prof)
                        total_passes += 1
                        if clock is not None:
                            clock.lap("shm_sync")
                        pool.sync()                 # A: PASS1 writes visible
                        epoch += 1
                        if clock is not None:
                            clock.lap("barrier_wait")
                        for r in range(int(active_ids.size) + 2):
                            sh["dirty"].fill(False)
                            sh["flags"].fill(0)
                            ctrl[1] = 1 if r == 0 else 0
                            pool.sync()             # B: workers may detect
                            epoch += 1
                            pool.sync()             # C: flags published
                            epoch += 1
                            if clock is not None:
                                clock.lap("barrier_wait")
                            if not sh["flags"].any():
                                break
                            total_passes += 1
                            pool.sync()             # D: repair writes visible
                            epoch += 1
                            if clock is not None:
                                clock.lap("barrier_wait")
                        else:
                            raise RuntimeError(
                                "nondet fix-point failed to converge")
                    except (threading.BrokenBarrierError, BrokenPipeError,
                            OSError) as exc:
                        raise pool.failure(iteration) from exc
                    pool.fold_io(io)
                    if clock is not None:
                        worker_phases = pool.worker_phases()
                        sweeps = int(sh["wcount"].sum())
                        # Worker-side counters would otherwise vanish
                        # with the pool: fold them through the barrier
                        # into the master's sink/registry (summed, like
                        # every counter merge).
                        if sink is not None:
                            sink.counter("worker.sweeps").inc(sweeps)
                        if metrics is not None:
                            for w in range(workers):
                                metrics.counter(
                                    "repro_worker_sweeps_total",
                                    worker=str(w),
                                ).inc(int(sh["wcount"][w]))
                                metrics.counter(
                                    "repro_worker_barrier_wait_seconds_total",
                                    worker=str(w),
                                ).inc(worker_phases[w].get(
                                    "barrier_wait", 0.0))
                else:
                    ex.active = plan.active
                    ex.dirty = np.zeros(n, dtype=bool)
                    ex.thr_v = plan.thr_v
                    ex.pi_v = plan.pi_v
                    ex.time_v = plan.time_v
                    ex.v0 = {f: state.vertex(f) for f in vfields}
                    ex.vout = {f: state.vertex(f).copy() for f in vfields}
                    ex.pass_sweep(ex.active, use_seen=False)
                    total_passes += 1
                    if clock is not None:
                        lap_io("gather")
                    for r in range(int(active_ids.size) + 2):
                        ex.dirty[:] = False
                        if not ex.detect_sweep(first=(r == 0)):
                            break
                        ex.pass_sweep(ex.dirty & ex.active, use_seen=True)
                        total_passes += 1
                    else:
                        raise RuntimeError(
                            "nondet fix-point failed to converge")
                    if clock is not None:
                        lap_io("repair_pass")

                # Commit barrier (master side, both backends).
                next_mask, reads_t, writes_t = self._finalize(
                    plan, dm_i, log, record, iteration, p, written, efields)
                upd_t = np.bincount(plan.thr_a, minlength=p)
                stats.append(IterationStats(
                    iteration=iteration,
                    num_active=int(active_ids.size),
                    updates_per_thread=[int(x) for x in upd_t],
                    reads_per_thread=[int(x) for x in reads_t],
                    writes_per_thread=[int(x) for x in writes_t],
                ))
                for f in vfields:
                    state.vertex(f)[active_ids] = ex.vout[f][active_ids]
                self._scratch.zero_outputs()
                state._edge.clear()
                next_ids = np.flatnonzero(next_mask).astype(np.int64)
                if supervisor is not None:
                    next_ids = supervisor.post_iteration(
                        iteration, state=state, schedule=next_ids)
                    # Fault injection may have torn edge values through the
                    # state cache; make the files agree before the next pass.
                    self._sync_state(state)
                phases = None
                if clock is not None:
                    lap_io("lemma2_commit")
                    wall = time.perf_counter() - t0
                    phases = clock.drain()
                    if metrics is not None:
                        record_iteration_metrics(
                            metrics, "outofcore",
                            phases=phases,
                            num_active=int(active_ids.size),
                            frontier_size=int(next_ids.size),
                            read_write=log.read_write - rw0,
                            write_write=log.write_write - ww0,
                            wall_time_s=wall,
                        )
                if sink is not None:
                    it = stats[-1]
                    extra_kw = {}
                    if worker_phases is not None:
                        extra_kw["barrier_epoch"] = epoch
                        extra_kw["worker_phases"] = worker_phases
                    sink.iteration(
                        iteration=iteration,
                        num_active=it.num_active,
                        updates_per_thread=it.updates_per_thread,
                        reads_per_thread=it.reads_per_thread,
                        writes_per_thread=it.writes_per_thread,
                        frontier_size=int(next_ids.size),
                        wall_time_s=wall,
                        read_write=log.read_write - rw0,
                        write_write=log.write_write - ww0,
                        fixpoint_passes=total_passes - passes0,
                        phases=phases,
                        peak_rss_bytes=peak_rss_bytes(),
                        **extra_kw,
                    )
                if observer is not None:
                    observer(iteration, state, {int(v) for v in next_ids})
                frontier_ids = next_ids
                iteration += 1
            # At-cap accounting: converged stays False unless the confirming
            # empty-frontier check at the top of an iteration ran (see
            # tests/test_convergence_conformance.py).
        except BaseException:
            # Leave no pool behind an exceptional exit; a clean return
            # keeps it warm for the next run() on this runner.
            self._teardown_pool()
            raise

        extra = {
            "vectorized": True,
            "out_of_core": True,
            "num_intervals": K,
            "fixpoint_passes": total_passes,
            "plan_cache_hits": plan_cache.hits,
            "io": io.as_dict(),
        }
        if use_pool:
            extra["backend"] = "process"
            extra["workers"] = workers
            extra["pool_reused"] = pool_reused
        result = RunResult(
            program=program, state=state, mode=self.mode,
            converged=converged, num_iterations=iteration,
            iterations=stats, conflicts=log, config=config, extra=extra,
        )
        if record is not None:
            record.end_run(result)
        if sink is not None:
            if metrics is not None:
                # Must precede end_run: lint_trace rejects records after
                # the terminal run_end.
                sink.metrics_snapshot(metrics)
            sink.end_run(result)
        return result
