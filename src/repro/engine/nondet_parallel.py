"""True multi-core nondeterministic execution: the process backend.

:class:`~repro.engine.nondet_vectorized.VectorizedNondetEngine` made one
racy iteration a handful of whole-graph NumPy passes — but still on one
core, under one GIL.  This module runs the *same* batched Defs. 1–3 +
Lemma-1/2 model across ``P`` OS processes over
``multiprocessing.shared_memory``: CSR topology and vertex/edge state
arrays live in a single :class:`~repro.storage.shm.SharedArrayPool`
segment mapped zero-copy into every worker, so the workers literally
share memory the way the paper's racy threads share the cache-coherent
heap.

**Work division is the paper's own dispatch.**  The master runs
:func:`~repro.engine.dispatch.plan_arrays` (BLOCK policy: contiguous
small-label-first intervals, exactly GraphChi-style PSW intervals) and
worker ``w`` *is* model thread ``w``: it executes the kernel for the
vertices the plan assigned to thread ``w``.  That identification is what
makes the parallel run **bit-for-bit identical** to the single-process
fast path (and hence to the object engine), not merely equivalent:

* Per edge and field the §II scope rule allows at most two writers —
  the endpoints.  The src-side slots (``ws/wvs/rs``) are written only by
  the owner of ``src[e]``, the dst-side slots (``wd/wvd/rd``) only by
  the owner of ``dst[e]``, and ``vout[v]`` only by the owner of ``v`` —
  all cross-worker writes go to disjoint array slots, so the shared
  output arrays are data-race-free without locks.
* The chaotic fix-point decomposes by ownership: a *seen* value can only
  change on an edge whose reading endpoint is active, so each worker
  detects exactly the dirty vertices it owns; the union over workers
  equals the single-process dirty set, and the repair rounds (two
  barriers each: writes-visible, then change-flags) count identically.
* Cross-interval write–write races are resolved at the barrier by the
  master with the same vectorized Lemma-2 rule (later timestamp wins,
  tie → larger vid), so the committed state is one the object engine
  could also have produced — and in fact the very one it *would* have.

Conflict totals are counted per worker on its own edge interval into a
shared ``(P, 4)`` counter block and reduced by the master at the
barrier; the partition (src-side terms by src owner, dst-side terms by
dst owner, whole-edge terms by dst owner) provably counts every edge
once.  Telemetry spans, flight-recorder provenance, supervisor hooks
(fault injection, watchdog, checkpoint/resume) all run master-side on
the reduced arrays and therefore behave exactly as in the single-process
engines.

**Robustness.**  A worker that dies (SIGKILL, segfault, unhandled
exception) breaks the iteration barrier — a sentinel watcher aborts it
within a fraction of a second — and the master raises
:class:`~repro.robust.errors.WorkerDied` (a :class:`WorkerTimeout`
subclass, so the supervised degradation ladder restarts it with
backoff).  The master's canonical state is plain process-local memory,
committed only *after* a successful barrier, so it is always
barrier-consistent and memory-token restarts are valid.  Shared-memory
cleanup is guaranteed: the segment is unlinked in a ``finally`` on every
exit path (clean, raise, ``KeyboardInterrupt``), and the stdlib
``resource_tracker`` backstops a SIGKILLed master.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import threading
import time
import traceback
import weakref
from multiprocessing import connection as mp_connection

import numpy as np

from ..graph import DiGraph
from ..obs.metrics import PhaseClock, peak_rss_bytes, record_iteration_metrics
from ..robust.errors import WorkerDied, WorkerTimeout
from ..storage.shm import ArrayLayout, SharedArrayPool
from .config import EngineConfig
from .conflicts import ConflictLog
from .frontier import initial_frontier
from .nondet_vectorized import (
    DIRECTIONS,
    NondetPassContext,
    PlanCache,
    VectorizedNondetEngine,
    choose_direction,
    fallback_reasons,
    push_fallback_reasons,
    resolve_nondet_kernel,
)
from .program import VertexProgram
from .result import IterationStats, RunResult
from .state import State

__all__ = ["ParallelEngine", "parallel_fallback_reasons"]

#: Phase slots of the shared ``phase_w`` stat block, in row order.
#: ``plan_build`` is the worker-side Defs. 1–3 predicate construction;
#: ``barrier_wait`` covers the A/B fix-point barriers (C is excluded —
#: it ends the measured window); ``lemma2_commit`` is the worker's
#: conflict-counting tail before C.
_WPHASES = ("plan_build", "gather", "push_scatter", "repair_pass",
            "barrier_wait", "lemma2_commit")


def parallel_fallback_reasons(program: VertexProgram,
                              config: EngineConfig) -> list[str]:
    """Why ``(program, config)`` cannot run on the process backend.

    The backend executes the vectorized kernels, so the vectorized
    eligibility rules apply verbatim; there are no additional ones.
    """
    return fallback_reasons(program, config)


def _build_layout(graph: DiGraph, state: State,
                  written: tuple[str, ...], p: int) -> ArrayLayout:
    """One segment holding topology, plan, state, and per-worker slots."""
    n, m = graph.num_vertices, graph.num_edges
    specs: dict[str, tuple[tuple[int, ...], object]] = {
        "src": ((m,), np.int64),
        "dst": ((m,), np.int64),
        "in_order": ((m,), np.int64),
        "out_degrees": ((n,), np.int64),
        "active": ((n,), np.bool_),
        "thr_v": ((n,), np.int64),
        "pi_v": ((n,), np.int64),
        "time_v": ((n,), np.float64),
    }
    for f in state.vertex_field_names:
        dt = state.vertex(f).dtype
        specs["v0:" + f] = ((n,), dt)
        specs["vout:" + f] = ((n,), dt)
    for f in state.edge_field_names:
        dt = state.edge(f).dtype
        specs["committed:" + f] = ((m,), dt)
        specs["rs:" + f] = ((m,), np.int64)
        specs["rd:" + f] = ((m,), np.int64)
    for f in written:
        dt = state.edge(f).dtype
        specs["ws:" + f] = ((m,), np.bool_)
        specs["wd:" + f] = ((m,), np.bool_)
        specs["wvs:" + f] = ((m,), dt)
        specs["wvd:" + f] = ((m,), dt)
    specs["flags"] = ((p,), np.uint8)
    specs["upd_t"] = ((p,), np.int64)
    specs["reads_t"] = ((p,), np.int64)
    specs["writes_t"] = ((p,), np.int64)
    specs["conf"] = ((p, 4), np.int64)
    # Per-worker phase seconds (_WPHASES slots) and counter deltas
    # ([kernel passes, repaired vertices]), folded by the master at
    # barrier C exactly like ``conf``: each worker writes only its own
    # row before C, the master reads after — no locks, no races.
    specs["phase_w"] = ((p, len(_WPHASES)), np.float64)
    specs["wcount"] = ((p, 2), np.int64)
    return ArrayLayout.build(specs)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _Worker:
    """Worker ``w`` = model thread ``w`` of the paper's executor."""

    def __init__(self, wid: int, pool: SharedArrayPool, graph: DiGraph,
                 program: VertexProgram, barrier, barrier_timeout):
        self.wid = wid
        self.pool = pool
        self.graph = graph  # CSR/CSC edge-id slices for push iterations
        self.barrier = barrier
        self.timeout = barrier_timeout
        self.kernel = resolve_nondet_kernel(program)(program)
        self.written = tuple(self.kernel.written_fields)
        self.src = pool.array("src")
        self.dst = pool.array("dst")
        self.active = pool.array("active")
        self.thr_v = pool.array("thr_v")
        self.pi_v = pool.array("pi_v")
        self.time_v = pool.array("time_v")
        self.flags = pool.array("flags")
        self.upd_t = pool.array("upd_t")
        self.reads_t = pool.array("reads_t")
        self.writes_t = pool.array("writes_t")
        self.conf = pool.array("conf")
        self.phase_w = pool.array("phase_w")
        self.wcount = pool.array("wcount")
        # Profiling directives arrive with each iteration message; the
        # barrier epoch is this worker's cumulative wait count, reset
        # per run so it matches the master's count (the merge key).
        self._profile = False
        self._trace_dir: str | None = None
        self._run_id = None
        self._epoch = 0
        self._seg_fh = None
        committed = pool.arrays("committed:")
        self.committed = committed
        self.edge_fields = tuple(committed)
        self.n = graph.num_vertices
        self.m = graph.num_edges

        ctx = NondetPassContext.__new__(NondetPassContext)
        ctx.graph = graph
        ctx.src = self.src
        ctx.dst = self.dst
        ctx.n = self.n
        ctx.m = self.m
        ctx.selfloop = np.asarray(self.src == self.dst)
        ctx.in_order = pool.array("in_order")
        ctx.out_degrees = pool.array("out_degrees")
        ctx.active = self.active
        ctx.committed = committed
        ctx.v0 = pool.arrays("v0:")
        ctx.vout = pool.arrays("vout:")
        ctx.ws = pool.arrays("ws:")
        ctx.wd = pool.arrays("wd:")
        ctx.wvs = pool.arrays("wvs:")
        ctx.wvd = pool.arrays("wvd:")
        ctx.rs = pool.arrays("rs:")
        ctx.rd = pool.arrays("rd:")
        # Seen arrays are worker-local (each endpoint's view of an edge
        # is private to the task that owns the endpoint); read-only
        # fields alias committed, written fields get local buffers.
        ctx.seen_s = dict(committed)
        ctx.seen_d = dict(committed)
        self._seen_s = {f: np.empty(self.m, committed[f].dtype)
                        for f in self.written}
        self._seen_d = {f: np.empty(self.m, committed[f].dtype)
                        for f in self.written}
        self.ctx = ctx

    def configure_profile(self, prof) -> None:
        """Apply an ``(enabled, trace_dir, run_id)`` profiling directive.

        A new ``run_id`` starts a fresh run on a reused pool: the barrier
        epoch restarts at 0 (so it stays comparable to the master's
        count) and any open trace segment is replaced.
        """
        enabled, trace_dir, run_id = prof
        self._profile = bool(enabled)
        if run_id != self._run_id or trace_dir != self._trace_dir:
            if self._seg_fh is not None:
                self._seg_fh.close()
                self._seg_fh = None
            self._trace_dir = trace_dir
            self._run_id = run_id
            self._epoch = 0

    def close_segment(self) -> None:
        if self._seg_fh is not None:
            self._seg_fh.close()
            self._seg_fh = None

    def _emit_span(self, iteration: int, phases: dict, passes: int,
                   repaired: int, owned: int) -> None:
        """Append this iteration's span to my private JSONL segment.

        Worker-private file, flushed per record like the master sink: a
        SIGKILLed worker leaves at most one torn final line, which
        ``read_trace`` tolerates when the merge path reads the segment.
        """
        if self._trace_dir is None:
            return
        if self._seg_fh is None:
            path = os.path.join(self._trace_dir,
                                f"worker-{self.wid}.jsonl")
            self._seg_fh = open(path, "w", encoding="utf-8")
            json.dump({"type": "event", "name": "worker_start",
                       "worker": self.wid, "pid": os.getpid()},
                      self._seg_fh, separators=(",", ":"))
            self._seg_fh.write("\n")
        json.dump({"type": "worker_span", "worker": self.wid,
                   "iteration": iteration, "epoch": self._epoch,
                   "phases": phases, "passes": passes,
                   "repaired": repaired, "owned": owned},
                  self._seg_fh, separators=(",", ":"))
        self._seg_fh.write("\n")
        self._seg_fh.flush()

    def _predicates(self, eidx: np.ndarray, dm):
        """Defs. 1–3 visibility + execution order on an edge subset."""
        s, d = self.src[eidx], self.dst[eidx]
        ts, td = self.time_v[s], self.time_v[d]
        th_s, th_d = self.thr_v[s], self.thr_v[d]
        ps, pd = self.pi_v[s], self.pi_v[d]
        both = self.active[s] & self.active[d] & (s != d)
        same = th_s == th_d
        d_pair = dm.intra if dm.is_uniform else dm.delays(th_s, th_d)
        vis_s2d = both & np.where(same, ps < pd, (td - ts) >= d_pair)
        vis_d2s = both & np.where(same, pd < ps, (ts - td) >= d_pair)
        lex_sd = both & (
            (ts < td)
            | ((ts == td) & ((ps < pd) | ((ps == pd) & (th_s < th_d))))
        )
        lex_ds = both & ~lex_sd
        dt = both & (th_s != th_d)
        return vis_s2d, vis_d2s, lex_sd, lex_ds, dt

    def iterate(self, dm, push: bool = False, iteration: int = 0) -> None:
        wid, ctx = self.wid, self.ctx
        src, dst = self.src, self.dst
        clock = PhaseClock() if self._profile else None
        owned = self.active & (self.thr_v == wid)
        if push:
            # Sparse (push) direction: the same racy iteration over my
            # owned vertices' incident edge-id slices only.  es is the
            # identical edge set flatnonzero(owned[src]) yields; ed is
            # set-equal in CSC order — everything downstream is either
            # positional within (es, ed) or order-independent.
            owned_ids = np.flatnonzero(owned).astype(np.int64)
            es = self.graph.out_edge_ids(owned_ids)
            ed = self.graph.in_edge_ids(owned_ids)
        else:
            es = np.flatnonzero(owned[src])
            ed = np.flatnonzero(owned[dst])
        vis_s2d_es, vis_d2s_es, lex_sd_es, lex_ds_es, dt_es = \
            self._predicates(es, dm)
        vis_s2d_ed, vis_d2s_ed, lex_sd_ed, lex_ds_ed, dt_ed = \
            self._predicates(ed, dm)
        prev_s: dict[str, np.ndarray] = {}
        prev_d: dict[str, np.ndarray] = {}
        for f in self.written:
            com = self.committed[f]
            if push:
                # The kernel only reads seen values on (es, ed).
                self._seen_s[f][es] = com[es]
                self._seen_d[f][ed] = com[ed]
            else:
                np.copyto(self._seen_s[f], com)
                np.copyto(self._seen_d[f], com)
            ctx.seen_s[f] = self._seen_s[f]
            ctx.seen_d[f] = self._seen_d[f]
            prev_s[f] = com[es]
            prev_d[f] = com[ed]
        if clock is not None:
            clock.lap("plan_build")
        if push:
            self.kernel.run_push_pass(ctx, owned_ids, es, ed)
        else:
            self.kernel.run_pass(ctx, owned)
        if clock is not None:
            clock.lap("push_scatter" if push else "gather")
        passes = 1
        repaired = 0
        while True:
            self.barrier.wait(self.timeout)  # A: pass-k writes visible
            if clock is not None:
                self._epoch += 1
                clock.lap("barrier_wait")
            dirty = None
            changed = False
            for f in self.written:
                com = self.committed[f]
                # What my endpoints now see: committed overridden by the
                # far endpoint's write where Defs. 1–3 make it visible.
                sd = np.where(vis_s2d_ed & ctx.ws[f][ed],
                              ctx.wvs[f][ed], com[ed])
                ss = np.where(vis_d2s_es & ctx.wd[f][es],
                              ctx.wvd[f][es], com[es])
                dch = sd != prev_d[f]
                sch = ss != prev_s[f]
                if dch.any() or sch.any():
                    if dirty is None:
                        dirty = np.zeros(self.n, dtype=bool)
                    dirty[dst[ed[dch]]] = True
                    dirty[src[es[sch]]] = True
                    changed = True
                self._seen_d[f][ed] = sd
                self._seen_s[f][es] = ss
                prev_d[f] = sd
                prev_s[f] = ss
            self.flags[wid] = 1 if changed else 0
            if clock is not None:
                clock.lap("repair_pass")
            self.barrier.wait(self.timeout)  # B: all change flags posted
            if clock is not None:
                self._epoch += 1
                clock.lap("barrier_wait")
            if not self.flags.any():
                break
            passes += 1
            if dirty is not None:
                if push:
                    dirty_ids = np.flatnonzero(dirty).astype(np.int64)
                    repaired += int(dirty_ids.size)
                    self.kernel.run_push_pass(
                        ctx, dirty_ids,
                        self.graph.out_edge_ids(dirty_ids),
                        self.graph.in_edge_ids(dirty_ids),
                    )
                else:
                    repaired += int(np.count_nonzero(dirty))
                    self.kernel.run_pass(ctx, dirty)
            if clock is not None:
                clock.lap("repair_pass")
        # Conflict totals on my interval.  Src-side terms are mine via
        # ``es`` (a read/write by the src task implies active src, which
        # I own); whole-edge terms (write–write, contended) via ``ed``
        # (they imply an active dst) — every edge is counted exactly
        # once across workers, matching the single-process reductions.
        self.upd_t[wid] = int(np.count_nonzero(owned))
        reads = 0
        for f in self.edge_fields:
            reads += int(ctx.rs[f][es].sum()) + int(ctx.rd[f][ed].sum())
        writes = rw = ww = contended = stale = 0
        for f in self.written:
            ws_es, wd_es, rs_es = ctx.ws[f][es], ctx.wd[f][es], ctx.rs[f][es]
            ws_ed, wd_ed = ctx.ws[f][ed], ctx.wd[f][ed]
            rs_ed, rd_ed = ctx.rs[f][ed], ctx.rd[f][ed]
            writes += int(ws_es.sum()) + int(wd_ed.sum())
            rw += int(rs_es[wd_es & dt_es].sum())
            rw += int(rd_ed[ws_ed & dt_ed].sum())
            ww_mask = ws_ed & wd_ed & dt_ed
            ww += int(np.count_nonzero(ww_mask))
            contended += int(np.count_nonzero(
                ((rs_ed > 0) & wd_ed & dt_ed)
                | ((rd_ed > 0) & ws_ed & dt_ed)
                | ww_mask
            ))
            stale += int(rs_es[wd_es & lex_ds_es & ~vis_d2s_es].sum())
            stale += int(rd_ed[ws_ed & lex_sd_ed & ~vis_s2d_ed].sum())
        self.reads_t[wid] = reads
        self.writes_t[wid] = writes
        self.conf[wid, 0] = rw
        self.conf[wid, 1] = ww
        self.conf[wid, 2] = contended
        self.conf[wid, 3] = stale
        if clock is not None:
            clock.lap("lemma2_commit")
            ph = clock.drain()
            for k, name in enumerate(_WPHASES):
                self.phase_w[wid, k] = ph.get(name, 0.0)
            self.wcount[wid, 0] = passes
            self.wcount[wid, 1] = repaired
        self.barrier.wait(self.timeout)  # C: counters + writes final
        if clock is not None:
            self._epoch += 1
            self._emit_span(iteration, {k: v for k, v in ph.items() if v},
                            passes, repaired, int(self.upd_t[wid]))


def _worker_main(wid: int, seg_name: str, layout: ArrayLayout,
                 graph: DiGraph, program: VertexProgram,
                 conn, barrier, barrier_timeout) -> None:
    """OS-process entry point (module-level for spawn compatibility)."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # master owns ^C
    except (ValueError, OSError):  # pragma: no cover
        pass
    ppid = os.getppid()
    pool = None
    worker = None
    try:
        pool = SharedArrayPool.attach(seg_name, layout)
        worker = _Worker(wid, pool, graph, program, barrier, barrier_timeout)
        dm = None
        while True:
            # Poll so an orphaned worker (master SIGKILLed between
            # iterations) notices the reparent and exits on its own.
            while not conn.poll(1.0):
                if os.getppid() != ppid:
                    return
            msg = conn.recv()
            if msg[0] == "stop":
                return
            if msg[1] is not None:  # delay model shipped only on change
                dm = msg[1]
            if len(msg) > 4 and msg[4] is not None:
                worker.configure_profile(msg[4])
            worker.iterate(
                dm,
                push=bool(msg[2]) if len(msg) > 2 else False,
                iteration=int(msg[3]) if len(msg) > 3 else 0,
            )
    except threading.BrokenBarrierError:
        # Master aborted (its timeout, its shutdown, or a sibling died):
        # nothing to report, just leave.
        return
    except (EOFError, OSError):
        return  # master side of the pipe went away
    except Exception:  # pragma: no cover - exercised via chaos tests
        try:
            conn.send(("error", wid, traceback.format_exc()))
        except Exception:
            pass
        try:
            barrier.abort()
        except Exception:
            pass
    finally:
        if worker is not None:
            worker.close_segment()
        if pool is not None:
            pool.release_views()
            pool.close()


# ----------------------------------------------------------------------
# master side
# ----------------------------------------------------------------------
def _engine_watch(stop_event, barrier, sentinels) -> None:
    """Abort the barrier the moment any worker dies unexpectedly.

    Module-level on purpose: a bound-method watcher would be held by
    ``threading._active`` and keep the engine (and its shm segment)
    alive past its last reference, defeating teardown-at-GC.
    """
    while not stop_event.is_set():
        ready = mp_connection.wait(sentinels, timeout=0.2)
        if stop_event.is_set():
            return
        if ready:
            try:
                barrier.abort()
            except Exception:  # pragma: no cover
                pass
            return


def _destroy_engine_pool(procs, conns, barrier, shm_pool, stop_event):
    """Teardown shared by explicit shutdown and the GC finalizer."""
    stop_event.set()
    for conn in conns:
        try:
            conn.send(("stop",))
        except Exception:
            pass
    if barrier is not None:
        try:
            barrier.abort()  # unstick anything mid-barrier
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=5.0)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - last resort
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    if shm_pool is not None:
        shm_pool.close()  # releases views, unlinks, unmaps


class ParallelEngine:
    """Shared-memory process backend for the nondeterministic model.

    ``config.threads`` doubles as the worker count: worker ``w``
    executes exactly the tasks the BLOCK dispatch assigns to model
    thread ``w``, which is what makes the result bit-identical to
    ``vectorized=True`` (see the module docstring) at *any* ``P``.
    """

    mode = "nondeterministic"

    def __init__(self):
        self._pool: SharedArrayPool | None = None
        self._workers: list = []
        self._conns: list = []
        self._barrier = None
        self._watcher: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._timeout: float | None = None
        self._finalizer: weakref.finalize | None = None
        self._sh: dict[str, np.ndarray] = {}
        self._pool_key = None
        self._graph_ref = None
        self._last_dm = None
        self._run_counter = 0

    # -- process management ------------------------------------------------
    def _start_workers(self, graph: DiGraph, program: VertexProgram,
                       layout: ArrayLayout, p: int) -> None:
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        self._barrier = ctx.Barrier(p + 1)
        worker_timeout = (
            None if self._timeout is None else self._timeout * 4 + 30.0
        )
        for w in range(p):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                name=f"repro-nondet-worker-{w}",
                args=(w, self._pool.name, layout, graph, program,
                      child, self._barrier, worker_timeout),
                daemon=True,
            )
            proc.start()
            child.close()
            self._workers.append(proc)
            self._conns.append(parent)
        self._watcher = threading.Thread(
            target=_engine_watch, name="repro-worker-watcher", daemon=True,
            args=(self._stop_event, self._barrier,
                  [p_.sentinel for p_ in self._workers]))
        self._watcher.start()
        # The finalizer (not __del__) guarantees teardown when the last
        # reference to a pooled engine dies — no cycles through self.
        self._finalizer = weakref.finalize(
            self, _destroy_engine_pool, self._workers, self._conns,
            self._barrier, self._pool, self._stop_event)

    @staticmethod
    def _program_sig(program: VertexProgram) -> tuple:
        items = []
        for k in sorted(vars(program)):
            v = vars(program)[k]
            if isinstance(v, np.ndarray):
                items.append((k, v.dtype.str, v.shape, hash(v.tobytes())))
            else:
                items.append((k, repr(v)))
        return (type(program), tuple(items))

    def _pool_alive(self) -> bool:
        return (self._pool is not None
                and self._finalizer is not None and self._finalizer.alive
                and all(proc.is_alive() for proc in self._workers))

    def _barrier_sync(self, iteration: int) -> None:
        try:
            self._barrier.wait(self._timeout)
        except threading.BrokenBarrierError:
            self._raise_worker_failure(iteration)

    def _raise_worker_failure(self, iteration: int) -> None:
        errors: list[tuple[int, str]] = []
        for w, conn in enumerate(self._conns):
            try:
                while conn.poll(0):
                    msg = conn.recv()
                    if msg and msg[0] == "error":
                        errors.append((w, msg[2]))
            except (EOFError, OSError):
                pass
        for proc in self._workers:
            proc.join(timeout=0.2)
        dead = [w for w, proc in enumerate(self._workers)
                if not proc.is_alive()]
        if errors:
            wid, tb = errors[0]
            raise WorkerDied(
                f"worker {wid} raised at iteration {iteration}:\n{tb}",
                iteration=iteration, workers=tuple(w for w, _ in errors))
        if dead:
            # A sibling that saw the broken barrier exits 0; report the
            # abnormal exits (signal/nonzero) as the actual casualties.
            abnormal = [w for w in dead if self._workers[w].exitcode != 0]
            culprits = abnormal or dead
            codes = {w: self._workers[w].exitcode for w in culprits}
            raise WorkerDied(
                f"worker(s) {culprits} died at iteration {iteration} "
                f"(exit codes {codes})",
                iteration=iteration, workers=tuple(culprits))
        raise WorkerTimeout(
            f"workers failed to reach the iteration barrier within "
            f"{self._timeout}s at iteration {iteration}",
            iteration=iteration, stuck=tuple(range(len(self._workers))))

    def _shutdown(self) -> None:
        """Tear the pool down: stop workers, unlink the segment."""
        self._sh = {}
        if self._finalizer is not None:
            self._finalizer()  # idempotent: no-op if already dead
        elif self._pool is not None:  # pragma: no cover - startup failure
            _destroy_engine_pool(self._workers, self._conns, self._barrier,
                                 self._pool, self._stop_event)
        if self._watcher is not None:
            self._watcher.join(timeout=2.0)
        # Reset so the same instance can run again (fresh segment/pool).
        self._workers, self._conns = [], []
        self._pool = None
        self._barrier = None
        self._watcher = None
        self._stop_event = threading.Event()
        self._finalizer = None
        self._pool_key = None
        self._graph_ref = None
        self._last_dm = None

    def close(self) -> None:
        """Explicitly tear down a persistent worker pool."""
        self._shutdown()

    # -- the run loop ------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        graph: DiGraph,
        config: EngineConfig | None = None,
        *,
        state: State | None = None,
        observer=None,
        telemetry=None,
        record=None,
        supervisor=None,
        direction: str = "pull",
        metrics=None,
    ) -> RunResult:
        config = config or EngineConfig()
        reasons = parallel_fallback_reasons(program, config)
        if reasons:
            raise ValueError(
                "program/config not eligible for the process backend "
                "(it executes the vectorized kernels): " + "; ".join(reasons)
            )
        if direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            )
        push_ok = False
        if direction != "pull":
            push_reasons = push_fallback_reasons(program)
            if push_reasons and direction == "push":
                raise ValueError(
                    "program not eligible for the push direction: "
                    + "; ".join(push_reasons)
                )
            push_ok = not push_reasons
        sink = telemetry
        if sink is not None:
            sink.begin_engine_run(self.mode, program, config)
        if record is not None:
            record.begin_engine_run(self.mode, program, config)
        kernel_factory = resolve_nondet_kernel(program)
        written = tuple(kernel_factory(program).written_fields)
        state = state if state is not None else program.make_state(graph)

        n, m = graph.num_vertices, graph.num_edges
        src, dst = graph.edge_src, graph.edge_dst
        selfloop = src == dst
        out_degrees = graph.out_degrees()
        in_degrees = graph.in_degrees() if push_ok else None
        delay_model = config.effective_delay_model()
        jitter_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 2]))
            if config.jitter > 0
            else None
        )
        timeout = config.worker_timeout_s
        self._timeout = None if timeout is None else float(timeout)

        log = ConflictLog(keep_events=config.keep_conflict_events)
        stats: list[IterationStats] = []
        frontier_ids = initial_frontier(program, graph).sorted_vertices()
        iteration = 0
        if supervisor is not None:
            rngs = {"jitter": jitter_rng} if jitter_rng is not None else {}
            iteration, frontier_ids = supervisor.engine_start(
                self.mode, program, config, state=state,
                frontier=frontier_ids, rngs=rngs, conflicts=log,
            )
        converged = False
        total_passes = 0
        push_iterations = 0
        dir_trace: list[str] = []
        p = config.threads
        # The master only needs the plan + the Lemma-2 tiebreak; the
        # full-graph visibility masks are recomputed lazily for the
        # flight recorder (workers evaluate visibility on their own
        # intervals).
        plan_cache = PlanCache(graph, p, policy=config.dispatch,
                               jitter=config.jitter, rng=jitter_rng,
                               visibility=record is not None)
        vertex_fields = tuple(state.vertex_field_names)
        edge_fields = tuple(state.edge_field_names)
        layout = _build_layout(graph, state, written, p)
        # Pool reuse: keep the forked workers (and the segment) across
        # run() calls on the same (graph, program, layout, P, timeout) —
        # the per-run cost drops to array copies.  Anything else tears
        # the old pool down first.
        pool_key = (self._program_sig(program), p, self._timeout,
                    tuple(sorted(layout.entries.items())))
        preexisting = (
            self._pool_alive()
            and self._graph_ref is not None and self._graph_ref() is graph
            and self._pool_key == pool_key
        )
        if self._pool is not None and not preexisting:
            self._shutdown()
        pool_reused = False
        sh = self._sh
        # Profiling directive shipped with every iteration message: the
        # run id lets a reused pool's workers reset their barrier-epoch
        # counters (and start fresh trace segments) at each run start.
        # Pure timing plus single-writer shared rows — no RNG use, no
        # effect on the racy iteration itself, so bit-identity holds.
        self._run_counter += 1
        profile_on = sink is not None or metrics is not None
        worker_dir = getattr(sink, "worker_dir", None)
        if worker_dir is not None:
            os.makedirs(worker_dir, exist_ok=True)
        prof = (profile_on, worker_dir, self._run_counter)
        clock = PhaseClock() if profile_on else None
        epoch = 0
        try:
            while iteration < config.max_iterations:
                if frontier_ids.size == 0:
                    converged = True
                    break
                if self._pool is None:
                    # Lazy setup: a run that converges immediately never
                    # creates a segment or forks a worker.
                    self._pool = SharedArrayPool.create(layout)
                    sh = self._sh = {name: self._pool.array(name)
                                     for name in layout.names()}
                    sh["src"][:] = src
                    sh["dst"][:] = dst
                    sh["in_order"][:] = np.lexsort((src, dst))
                    sh["out_degrees"][:] = graph.out_degrees()
                    self._start_workers(graph, program, layout, p)
                    self._pool_key = pool_key
                    try:
                        self._graph_ref = weakref.ref(graph)
                    except TypeError:
                        # DiGraph has no __weakref__ slot; pin it for the
                        # pool's lifetime (the segment mirrors its arrays).
                        self._graph_ref = lambda _g=graph: _g
                elif preexisting:
                    pool_reused = True
                if supervisor is not None:
                    supervisor.pre_iteration(iteration)
                    dm_i = supervisor.iteration_delay_model(
                        iteration, delay_model)
                else:
                    dm_i = delay_model
                t0 = time.perf_counter() if clock is not None else 0.0
                if clock is not None:
                    clock.start()
                rw0, ww0 = log.read_write, log.write_write
                active_ids = frontier_ids
                # Per-iteration direction decision (pure function of the
                # frontier, graph, and config — identical across reruns
                # and backends).  The master's own bookkeeping stays
                # dense either way: the shared write-mask arrays are
                # zero-filled per iteration, so they are always valid
                # dense masks; only the workers execute sparsely.
                dir_i = choose_direction(
                    direction, active_ids, out_degrees, in_degrees,
                    m, n, config, push_ok,
                )
                if direction != "pull":
                    dir_trace.append(dir_i)
                if dir_i == "push":
                    push_iterations += 1
                plan = plan_cache.plan(active_ids, dm_i)
                if clock is not None:
                    clock.lap("plan_build")
                # Publish the plan and the pre-iteration state snapshot.
                np.copyto(sh["thr_v"], plan.thr_v)
                np.copyto(sh["pi_v"], plan.pi_v)
                np.copyto(sh["time_v"], plan.time_v)
                np.copyto(sh["active"], plan.active)
                for f in vertex_fields:
                    arr = state.vertex(f)
                    np.copyto(sh["v0:" + f], arr)
                    np.copyto(sh["vout:" + f], arr)
                for f in edge_fields:
                    np.copyto(sh["committed:" + f], state.edge(f))
                    sh["rs:" + f].fill(0)
                    sh["rd:" + f].fill(0)
                for f in written:
                    sh["ws:" + f].fill(False)
                    sh["wd:" + f].fill(False)
                sh["flags"].fill(0)
                sh["phase_w"].fill(0.0)
                sh["wcount"].fill(0)
                # Batched barrier message: the delay model rides along
                # only when it changed (it is pickled per send; the rest
                # of the iteration state travels through the segment).
                payload = dm_i if dm_i != self._last_dm else None
                if payload is not None:
                    self._last_dm = dm_i
                for conn in self._conns:
                    try:
                        conn.send(("iter", payload, dir_i == "push",
                                   iteration, prof))
                    except (BrokenPipeError, OSError):
                        self._raise_worker_failure(iteration)
                if clock is not None:
                    clock.lap("shm_sync")
                # Fix-point rounds: barrier A (pass-k writes visible),
                # barrier B (change flags posted); master counts rounds.
                passes = 1
                limit = int(active_ids.size) + 2
                while True:
                    self._barrier_sync(iteration)  # A
                    self._barrier_sync(iteration)  # B
                    if clock is not None:
                        clock.lap("barrier_wait")
                    if not sh["flags"].any():
                        break
                    if passes > limit:  # pragma: no cover - DAG bound
                        try:
                            self._barrier.abort()
                        except Exception:
                            pass
                        raise RuntimeError(
                            "nondet fix-point failed to converge")
                    passes += 1
                self._barrier_sync(iteration)  # C: counters final
                total_passes += passes
                if clock is not None:
                    clock.lap("barrier_wait")
                    epoch += 2 * passes + 1

                # Reduce the per-worker conflict counters (Lemma-1/2
                # classes partitioned by edge ownership, see _Worker).
                conf = sh["conf"]
                rw = int(conf[:, 0].sum())
                ww = int(conf[:, 1].sum())
                log.read_write += rw
                log.write_write += ww
                log.contended_edges += int(conf[:, 2].sum())
                log.lost_writes += ww
                log.stale_reads += int(conf[:, 3].sum())
                if rw + ww:
                    log.per_iteration[iteration] += rw + ww

                if record is not None:
                    # Pre-commit: events carry each edge's old value.
                    shim = NondetPassContext.__new__(NondetPassContext)
                    shim.src, shim.dst, shim.selfloop = src, dst, selfloop
                    shim.ws = {f: sh["ws:" + f] for f in written}
                    shim.wd = {f: sh["wd:" + f] for f in written}
                    shim.wvs = {f: sh["wvs:" + f] for f in written}
                    shim.wvd = {f: sh["wvd:" + f] for f in written}
                    shim.rs = {f: sh["rs:" + f] for f in edge_fields}
                    shim.rd = {f: sh["rd:" + f] for f in edge_fields}
                    VectorizedNondetEngine._emit_provenance(
                        record, shim, state, iteration, written,
                        plan.vis_s2d, plan.vis_d2s, plan.dst_wins,
                        plan.t_s, plan.t_d, plan.thr_s, plan.thr_d,
                    )

                # Barrier merge: Lemma-2 winners into the master state.
                next_mask = np.zeros(n, dtype=bool)
                dst_wins = plan.dst_wins
                for f in written:
                    ws, wd = sh["ws:" + f], sh["wd:" + f]
                    wvs, wvd = sh["wvs:" + f], sh["wvd:" + f]
                    arr = state.edge(f)
                    both_w = ws & wd
                    only = ws & ~wd
                    arr[only] = wvs[only]
                    only = wd & ~ws
                    arr[only] = wvd[only]
                    sel = both_w & dst_wins
                    arr[sel] = wvd[sel]
                    sel = both_w & ~dst_wins
                    arr[sel] = wvs[sel]
                    next_mask[dst[ws]] = True
                    next_mask[src[wd]] = True
                for f in vertex_fields:
                    state.vertex(f)[active_ids] = \
                        sh["vout:" + f][active_ids]

                stats.append(IterationStats(
                    iteration=iteration,
                    num_active=int(active_ids.size),
                    updates_per_thread=[int(x) for x in sh["upd_t"]],
                    reads_per_thread=[int(x) for x in sh["reads_t"]],
                    writes_per_thread=[int(x) for x in sh["writes_t"]],
                ))
                next_ids = np.flatnonzero(next_mask).astype(np.int64)
                if supervisor is not None:
                    next_ids = supervisor.post_iteration(
                        iteration, state=state, schedule=next_ids)
                if clock is not None:
                    # The barrier fold: per-worker phase rows and counter
                    # deltas written before C, read after — the same
                    # single-writer protocol as ``conf``.  Counter deltas
                    # are *summed* across workers (they are per-iteration
                    # deltas); per-worker detail survives via labels and
                    # the ``worker_phases`` rows.
                    clock.lap("lemma2_commit")
                    wall = time.perf_counter() - t0
                    phases = clock.drain()
                    worker_phases = [
                        {name: float(sh["phase_w"][w, k])
                         for k, name in enumerate(_WPHASES)
                         if sh["phase_w"][w, k]}
                        for w in range(p)
                    ]
                    kp = int(sh["wcount"][:, 0].sum())
                    rv = int(sh["wcount"][:, 1].sum())
                    if sink is not None:
                        sink.counter("worker.kernel_passes").inc(kp)
                        sink.counter("worker.repaired_vertices").inc(rv)
                    if metrics is not None:
                        record_iteration_metrics(
                            metrics, "process", phases=phases,
                            num_active=int(active_ids.size),
                            frontier_size=int(next_ids.size),
                            read_write=log.read_write - rw0,
                            write_write=log.write_write - ww0,
                            wall_time_s=wall,
                        )
                        for w in range(p):
                            metrics.counter(
                                "repro_worker_kernel_passes_total",
                                worker=str(w)).inc(int(sh["wcount"][w, 0]))
                            metrics.counter(
                                "repro_worker_barrier_wait_seconds_total",
                                worker=str(w)).inc(
                                float(sh["phase_w"][
                                    w, _WPHASES.index("barrier_wait")]))
                if sink is not None:
                    it = stats[-1]
                    sink.iteration(
                        iteration=iteration,
                        num_active=it.num_active,
                        updates_per_thread=it.updates_per_thread,
                        reads_per_thread=it.reads_per_thread,
                        writes_per_thread=it.writes_per_thread,
                        frontier_size=int(next_ids.size),
                        wall_time_s=wall,
                        read_write=log.read_write - rw0,
                        write_write=log.write_write - ww0,
                        fixpoint_passes=passes,
                        phases=phases,
                        barrier_epoch=epoch,
                        worker_phases=worker_phases,
                        peak_rss_bytes=peak_rss_bytes(),
                        **({"direction": dir_i}
                           if direction != "pull" else {}),
                    )
                if observer is not None:
                    observer(iteration, state, {int(v) for v in next_ids})
                frontier_ids = next_ids
                iteration += 1
            # At-cap accounting: converged stays False unless the confirming
            # empty-frontier check at the top of an iteration ran (see
            # tests/test_convergence_conformance.py).
        except BaseException:
            # Exceptional exit: never leave workers (or the segment)
            # behind.  A clean return keeps the pool warm for the next
            # run() on this engine instance; GC finalizes it otherwise.
            self._shutdown()
            raise

        extra = {"vectorized": True, "backend": "process", "workers": p,
                 "fixpoint_passes": total_passes,
                 "plan_cache_hits": plan_cache.hits,
                 "pool_reused": pool_reused}
        if direction != "pull":
            extra["direction"] = direction
            extra["push_iterations"] = push_iterations
            extra["direction_trace"] = dir_trace
        result = RunResult(
            program=program,
            state=state,
            mode=self.mode,
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            conflicts=log,
            config=config,
            extra=extra,
        )
        if record is not None:
            record.end_run(result)
        if sink is not None:
            if metrics is not None:
                sink.metrics_snapshot(metrics)
            sink.end_run(result)
        return result
