"""Vectorized nondeterministic execution: the racy NumPy fast path.

The object :class:`~repro.engine.nondet_engine.NondeterministicEngine`
mediates every edge access through Python-level dicts because the
paper's questions live at that granularity.  But the paper's own system
model makes whole iterations batchable: the §II *scope rule* says only
an edge's two endpoints may access it, and each endpoint runs at most
once per iteration, so per edge and field there are **at most two
readers and two writers** — the endpoints themselves.  The Definitions
1–3 visibility question therefore collapses to one pairwise predicate
per edge per direction, a pure function of the dispatch plan's
timestamp arrays:

* ``vis_s2d[e]`` — is ``f(src)``'s write visible to ``f(dst)``?  Same
  thread: ``π(src) < π(dst)``; different threads:
  ``t(dst) − t(src) ≥ d(thread_src, thread_dst)``.
* ``vis_d2s[e]`` — symmetric.

One racy iteration then becomes whole-graph array passes:

1. :func:`~repro.engine.dispatch.plan_arrays` produces the per-task
   ``(thread, π, time)`` arrays on the identical jitter stream the
   object planner consumes;
2. a registered :class:`NondetKernel` runs the program's
   gather/compute/scatter over all active vertices at once, reading
   *seen* edge arrays (``committed`` overridden by visible fresh
   writes);
3. because a fresh write only becomes visible to strictly later tasks
   (visibility implies precedence in the global execution order), the
   within-iteration dependences form a DAG — the engine repairs the
   one-shot pass by chaotic iteration, recomputing only vertices whose
   seen inputs changed, which converges to the exact sequential
   semantics in at most depth+1 passes;
4. Lemma-2 commit winners are a single vectorized lexicographic
   ``(time, vid)`` comparison per doubly-written edge;
5. conflict totals (read–write, write–write, lost writes, contended
   edges, stale reads) and the per-thread work profile fall out of
   masked reductions over the same arrays, feeding the same
   :class:`~repro.engine.conflicts.ConflictLog` counters.

The result is **bit-for-bit identical** to the object engine — final
state, iteration/frontier trajectory, per-thread stats, and conflict
totals — for every registered program (PageRank, WCC, SSSP, BFS, SpMV;
see ``tests/test_nondet_vectorized.py``), at one to two orders of
magnitude higher throughput.  Configurations the fast path does not
model (torn-value injection, runtime scope validation, fp-noise gather
permutation, per-event conflict capture) are reported by
:func:`fallback_reasons`; the runner silently falls back to the object
engine for them.
"""

from __future__ import annotations

import abc
import time

import numpy as np

from ..graph import DiGraph
from ..obs.metrics import PhaseClock, peak_rss_bytes, record_iteration_metrics
from .atomicity import AtomicityPolicy
from .config import EngineConfig
from .conflicts import ConflictLog
from .dispatch import plan_arrays
from .frontier import initial_frontier
from .program import VertexProgram
from .result import IterationStats, RunResult
from .state import State

__all__ = [
    "NondetKernel",
    "NondetPassContext",
    "PlanCache",
    "SparsePlan",
    "VectorizedNondetEngine",
    "register_nondet_kernel",
    "resolve_nondet_kernel",
    "fallback_reasons",
    "push_fallback_reasons",
    "choose_direction",
    "emit_edge_provenance",
]

DIRECTIONS = ("pull", "push", "auto")


def choose_direction(direction: str, active_ids: np.ndarray,
                     out_degrees: np.ndarray, in_degrees: np.ndarray,
                     num_edges: int, num_vertices: int,
                     config: EngineConfig, push_ok: bool) -> str:
    """Pick this iteration's execution direction: ``"push"`` or ``"pull"``.

    A pure function of (frontier, graph, config) — no run state, no
    randomness — so the per-iteration decision is identical across
    reruns and backends, preserving bit-reproducibility per (mode,
    seed).  The Beamer-style rule: run the sparse frontier-driven
    *push* strategy when the frontier's incident-edge mass is under
    ``m / direction_alpha`` and the frontier holds fewer than
    ``n / direction_beta`` vertices; run the dense whole-graph *pull*
    strategy otherwise.  Both strategies execute the same racy
    iteration bit for bit — direction is purely a performance knob.
    """
    if direction == "pull" or not push_ok:
        return "pull"
    if direction == "push":
        return "push"
    touched = int(out_degrees[active_ids].sum()) + int(
        in_degrees[active_ids].sum())
    if (touched * config.direction_alpha < num_edges
            and active_ids.size * config.direction_beta < num_vertices):
        return "push"
    return "pull"


class PlanCache:
    """Per-iteration dispatch plan with frontier-unchanged reuse.

    Fixed-point algorithms (PageRank, SpMV) schedule the *same* active
    set every iteration, yet the engine used to rebuild the whole plan —
    thread/π assignment, full-size vertex scatters, per-edge endpoint
    gathers, and the structural pair masks — from scratch every time.
    This cache recomputes only what can actually change:

    * frontier changed → full rebuild (exactly the uncached path);
    * frontier unchanged → thread/π arrays, scatters, gathers and the
      structural masks are reused verbatim.  With ``jitter > 0`` the
      per-task noise is still drawn from the *same stream positions*
      :func:`plan_arrays` would consume — bit-identity with the object
      planner is preserved — and only the time-dependent arrays
      (timestamps, Defs. 1–3 visibility, execution order, Lemma-2
      tiebreak) are recomputed.  With ``jitter == 0`` and an unchanged
      delay model, a cache hit costs two ``np.array_equal`` scans.

    ``visibility=False`` skips the Defs. 1–3 / execution-order masks for
    callers that only need the plan and the Lemma-2 tiebreak (the
    process-backend master, whose workers evaluate visibility on their
    own edge intervals).

    Direction-optimizing callers pass ``eidx=`` (the sorted union of the
    frontier's out- and in-edge ids) to :meth:`plan`: the vertex-level
    plan — and crucially the jitter stream position, one draw of size
    ``ids.size`` per iteration — is shared between directions, while the
    edge-level predicates are evaluated only on the touched slice (a
    :class:`SparsePlan` stored at :attr:`sparse`).  Dense edge arrays
    are rebuilt lazily the next time a pull iteration needs them, so
    alternating directions under ``direction="auto"`` stays bit-stable.
    """

    def __init__(self, graph: DiGraph, num_threads: int, *, policy,
                 jitter: float, rng, visibility: bool = True):
        self.src = graph.edge_src
        self.dst = graph.edge_dst
        self.n = graph.num_vertices
        self.p = num_threads
        self.policy = policy
        self.jitter = jitter
        self.rng = rng
        self.visibility = visibility
        self.hits = 0
        self._ids: np.ndarray | None = None
        self._dm = None
        self._d_pair = None
        self._d_pair_dm = None
        self._dense_valid = False
        self._dense_time_fresh = False
        self.sparse: SparsePlan | None = None

    def _rebuild_structure(self) -> None:
        src, dst = self.src, self.dst
        self.thr_s, self.thr_d = self.thr_v[src], self.thr_v[dst]
        pi_s, pi_d = self.pi_v[src], self.pi_v[dst]
        self.both = self.active[src] & self.active[dst] & (src != dst)
        self.same = self.thr_s == self.thr_d
        self.dt = self.both & (self.thr_s != self.thr_d)
        # π comparisons are time-independent; precompute for reuse.
        self._pi_sd = pi_s < pi_d
        self._pi_ds = pi_d < pi_s
        self._pi_tie_sd = (pi_s == pi_d) & (self.thr_s < self.thr_d)

    def _rebuild_time_dependent(self) -> None:
        src, dst = self.src, self.dst
        t_s, t_d = self.time_v[src], self.time_v[dst]
        self.t_s, self.t_d = t_s, t_d
        # Lemma-2 tiebreak: later time wins; equal time → larger vid.
        self.dst_wins = (t_d > t_s) | ((t_d == t_s) & (dst > src))
        if not self.visibility:
            return
        both, same, d_pair = self.both, self.same, self._d_pair
        self.vis_s2d = both & np.where(same, self._pi_sd, (t_d - t_s) >= d_pair)
        self.vis_d2s = both & np.where(same, self._pi_ds, (t_s - t_d) >= d_pair)
        self.lex_sd = both & (
            (t_s < t_d) | ((t_s == t_d) & (self._pi_sd | self._pi_tie_sd))
        )
        self.lex_ds = both & ~self.lex_sd

    def _rebuild_vertex(self) -> None:
        n = self.n
        self.thr_v = np.full(n, -1, dtype=np.int64)
        self.pi_v = np.zeros(n, dtype=np.int64)
        self.time_v = np.zeros(n, dtype=np.float64)
        self.active = np.zeros(n, dtype=bool)
        self.thr_v[self._ids] = self.thr_a
        self.pi_v[self._ids] = self.pi_a
        self.active[self._ids] = True

    def plan(self, active_ids: np.ndarray, dm,
             eidx: np.ndarray | None = None) -> "PlanCache":
        """(Re)compute the plan for ``active_ids`` under delay model ``dm``.

        With ``eidx`` (sorted edge-id subset) only the vertex-level plan
        and the sparse predicates at :attr:`sparse` are produced; the
        dense edge arrays are left alone and marked stale.
        """
        ids = np.asarray(active_ids, dtype=np.int64)
        hit = (
            self._ids is not None
            and ids.size == self._ids.size
            and bool(np.array_equal(ids, self._ids))
        )
        dm_changed = dm != self._dm
        if hit:
            self.hits += 1
            if self.jitter > 0:
                # Same draw plan_arrays would make, same stream position.
                self.time_a = self.pi_a + self.rng.uniform(
                    0.0, self.jitter, size=int(ids.size))
                self.time_v[self._ids] = self.time_a
        else:
            self._ids = ids.copy()
            self.thr_a, self.pi_a, self.time_a = plan_arrays(
                ids, self.p, policy=self.policy, jitter=self.jitter,
                rng=self.rng,
            )
            self._rebuild_vertex()
            self.time_v[self._ids] = self.time_a
            self._dense_valid = False
        if dm_changed:
            self._dm = dm
        time_stale = (not hit) or self.jitter > 0 or dm_changed
        if time_stale:
            self._dense_time_fresh = False
        if eidx is not None:
            self.sparse = SparsePlan(self, eidx, dm)
            return self
        self.sparse = None
        if not self._dense_valid:
            self._rebuild_structure()
            self._dense_valid = True
            self._dense_time_fresh = False
            self._d_pair_dm = None  # thr_s/thr_d changed under _d_pair
        if self._d_pair_dm != dm or self._d_pair is None:
            self._d_pair = dm.intra if dm.is_uniform else dm.delays(
                self.thr_s, self.thr_d)
            self._d_pair_dm = dm
        if not self._dense_time_fresh:
            self._rebuild_time_dependent()
            self._dense_time_fresh = True
        return self


class SparsePlan:
    """Edge-level plan predicates evaluated on a touched-edge slice.

    Same formulas as :meth:`PlanCache._rebuild_structure` /
    :meth:`PlanCache._rebuild_time_dependent`, gathered per element of
    ``eidx`` instead of over all ``m`` edges — the push direction's
    analogue of the dense edge arrays.  All attributes are aligned with
    ``eidx`` (length ``len(eidx)``).  Visibility/order masks are only
    computed when the owning cache was built with ``visibility=True``.
    """

    __slots__ = (
        "eidx", "thr_s", "thr_d", "t_s", "t_d", "dst_wins",
        "both", "same", "dt", "vis_s2d", "vis_d2s", "lex_sd", "lex_ds",
    )

    def __init__(self, cache: PlanCache, eidx: np.ndarray, dm):
        self.eidx = eidx
        s = cache.src[eidx]
        d = cache.dst[eidx]
        thr_s, thr_d = cache.thr_v[s], cache.thr_v[d]
        t_s, t_d = cache.time_v[s], cache.time_v[d]
        self.thr_s, self.thr_d = thr_s, thr_d
        self.t_s, self.t_d = t_s, t_d
        # Lemma-2 tiebreak: later time wins; equal time → larger vid.
        self.dst_wins = (t_d > t_s) | ((t_d == t_s) & (d > s))
        if not cache.visibility:
            return
        pi_s, pi_d = cache.pi_v[s], cache.pi_v[d]
        active = cache.active
        both = active[s] & active[d] & (s != d)
        same = thr_s == thr_d
        self.both, self.same = both, same
        self.dt = both & ~same
        d_pair = dm.intra if dm.is_uniform else dm.delays(thr_s, thr_d)
        pi_sd = pi_s < pi_d
        self.vis_s2d = both & np.where(same, pi_sd, (t_d - t_s) >= d_pair)
        self.vis_d2s = both & np.where(same, pi_d < pi_s, (t_s - t_d) >= d_pair)
        self.lex_sd = both & (
            (t_s < t_d)
            | ((t_s == t_d) & (pi_sd | ((pi_s == pi_d) & (thr_s < thr_d))))
        )
        self.lex_ds = both & ~self.lex_sd


class NondetPassContext:
    """Everything one whole-graph pass may read, and where it writes.

    The engine owns the arrays; a :class:`NondetKernel` fills the output
    slots for the vertices it is asked to (re)compute.  All edge-indexed
    arrays are full-size (``m`` entries) and CSR-aligned with
    ``graph.edge_src`` / ``graph.edge_dst``.
    """

    __slots__ = (
        "graph",
        "src",
        "dst",
        "n",
        "m",
        "selfloop",
        "in_order",
        "out_degrees",
        "active",
        "committed",
        "v0",
        "seen_s",
        "seen_d",
        "vout",
        "ws",
        "wvs",
        "wd",
        "wvd",
        "rs",
        "rd",
    )

    def __init__(self, graph: DiGraph, state: State, active: np.ndarray,
                 written_fields: tuple[str, ...], *,
                 in_order: np.ndarray | None = None,
                 out_degrees: np.ndarray | None = None):
        self.graph = graph
        self.src = graph.edge_src
        self.dst = graph.edge_dst
        self.n = graph.num_vertices
        self.m = graph.num_edges
        self.selfloop = self.src == self.dst
        # CSC permutation: edges grouped by destination, ascending source
        # — the order the scalar gather loops read in-edges, which float
        # kernels must accumulate in to match bit for bit.
        self.in_order = (
            in_order if in_order is not None else np.lexsort((self.src, self.dst))
        )
        self.out_degrees = (
            out_degrees if out_degrees is not None else graph.out_degrees()
        )
        self.active = active
        #: Pre-iteration edge arrays (what the last barrier committed).
        self.committed = {f: state.edge(f) for f in state.edge_field_names}
        #: Pre-iteration vertex arrays — kernels read these, never mutate.
        self.v0 = {f: state.vertex(f) for f in state.vertex_field_names}
        #: Post-iteration vertex values; applied to the state at the barrier.
        self.vout = {f: state.vertex(f).copy() for f in state.vertex_field_names}
        # What each endpoint *sees* on each edge: committed, overridden by
        # the other endpoint's write where visible.  Read-only fields stay
        # aliased to committed; written fields are replaced per fix-point
        # round by the engine.
        self.seen_s = dict(self.committed)
        self.seen_d = dict(self.committed)
        # Outputs: per written field, did src/dst write the edge and what.
        self.ws = {f: np.zeros(self.m, dtype=bool) for f in written_fields}
        self.wd = {f: np.zeros(self.m, dtype=bool) for f in written_fields}
        self.wvs = {
            f: np.zeros(self.m, dtype=self.committed[f].dtype) for f in written_fields
        }
        self.wvd = {
            f: np.zeros(self.m, dtype=self.committed[f].dtype) for f in written_fields
        }
        # Read-record counts per edge and side (src-task reads / dst-task
        # reads), for every edge field including read-only ones — they
        # drive both the conflict totals and the per-thread work profile.
        self.rs = {f: np.zeros(self.m, dtype=np.int64) for f in state.edge_field_names}
        self.rd = {f: np.zeros(self.m, dtype=np.int64) for f in state.edge_field_names}


class NondetKernel(abc.ABC):
    """One program's racy iteration as whole-graph array passes.

    ``written_fields`` names the edge fields the program may write.
    :meth:`run_pass` computes gather → compute → scatter for every
    vertex in ``sub`` (a boolean mask, subset of the active set) from
    the context's *seen* arrays, overwriting **all** outputs owned by
    those vertices: ``vout[v]``, and ``ws/wvs/rs`` (``wd/wvd/rd``) for
    every edge whose source (destination) lies in ``sub`` — a repair
    pass may legitimately flip an earlier pass's write off again.
    """

    written_fields: tuple[str, ...] = ()

    #: field -> :class:`~repro.engine.push.CombineOp` when every scatter
    #: of the kernel is an order-independent atomic combine (so the
    #: sparse push direction can re-run the same racy iteration over the
    #: frontier's touched edges only, bit for bit).  ``None`` = pull-only;
    #: :func:`push_fallback_reasons` additionally demands the combines
    #: be idempotent, since a non-idempotent float combine (ADD) leaks
    #: delivery order into the result.
    push_combines: dict[str, object] | None = None

    @abc.abstractmethod
    def run_pass(self, ctx: NondetPassContext, sub: np.ndarray) -> None:
        ...

    def run_push_pass(self, ctx: NondetPassContext, sub_ids: np.ndarray,
                      es: np.ndarray, ed: np.ndarray) -> None:
        """Sparse (push-direction) equivalent of :meth:`run_pass`.

        ``sub_ids`` are the sorted vertex ids to (re)compute; ``es`` /
        ``ed`` are their out- / in-edge ids (``graph.out_edge_ids`` /
        ``graph.in_edge_ids``).  The kernel must write exactly the
        positions a dense :meth:`run_pass` over the same vertices would
        — ``vout[sub_ids]``, ``ws/wvs/rs`` at ``es``, ``wd/wvd/rd`` at
        ``ed`` — with bitwise-identical values.  Only kernels declaring
        :attr:`push_combines` implement this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is pull-only (push_combines is None)"
        )


# -- kernel registry ------------------------------------------------------

#: program class -> factory(program) -> NondetKernel
_KERNELS: dict[type, object] = {}
_REGISTRY_LOADED = False


def register_nondet_kernel(program_cls: type, factory) -> None:
    """Register ``factory(program) -> NondetKernel`` for a program class.

    Subclasses of ``program_cls`` resolve to the same kernel as long as
    they inherit ``update`` unchanged (an overridden update function
    means the kernel no longer models the program — such subclasses fall
    back to the object engine).
    """
    _KERNELS[program_cls] = factory


def _ensure_registry() -> None:
    global _REGISTRY_LOADED
    if not _REGISTRY_LOADED:
        # Kernel implementations live next to their programs; importing
        # the module runs the register_nondet_kernel calls.  Lazy so the
        # engine package and the algorithms package don't import-cycle.
        from ..algorithms import vectorized  # noqa: F401

        _REGISTRY_LOADED = True


def resolve_nondet_kernel(program: VertexProgram):
    """The kernel factory for ``program``, or ``None`` if not vectorizable."""
    _ensure_registry()
    for cls in type(program).__mro__:
        factory = _KERNELS.get(cls)
        if factory is not None:
            # A subclass that overrides update() is a different algorithm.
            if type(program).update is not cls.update:
                return None
            return factory
    return None


def fallback_reasons(program: VertexProgram, config: EngineConfig) -> list[str]:
    """Why ``(program, config)`` cannot take the vectorized fast path.

    Empty list means eligible.  The conditions: the program needs a
    registered kernel whose update function it actually runs, and the
    configuration must not request behaviours that only the per-access
    object store models (torn-value injection, runtime scope checks,
    fp-noise gather permutation, individual conflict-event capture).
    """
    reasons = []
    if resolve_nondet_kernel(program) is None:
        reasons.append(
            f"no vectorized nondet kernel registered for {type(program).__name__}"
        )
    if config.atomicity is AtomicityPolicy.NONE:
        reasons.append("atomicity=NONE injects torn values per access")
    if config.fp_noise:
        reasons.append("fp_noise permutes gather order per update")
    if config.validate_scope:
        reasons.append("validate_scope checks each access at runtime")
    if config.keep_conflict_events:
        reasons.append("keep_conflict_events records individual events")
    return reasons


class _PushShadow:
    """Adapter presenting a pull-mode program's scatter semantics to
    :func:`repro.theory.eligibility.check_push_program`."""

    def __init__(self, traits, accumulators):
        self.traits = traits
        self._accumulators = accumulators

    def accumulators(self):
        return self._accumulators


def push_fallback_reasons(program: VertexProgram) -> list[str]:
    """Why ``program`` cannot run in the sparse *push* direction.

    Empty list means push-eligible.  Three gates, in order:

    1. a vectorized kernel must exist (push reuses the kernel registry);
    2. the kernel must declare :attr:`NondetKernel.push_combines` — a
       per-field :class:`~repro.engine.push.CombineOp` asserting every
       scatter is an atomic combine — and the §IV push-eligibility
       checker (:func:`~repro.theory.eligibility.check_push_program`)
       must return ``ELIGIBLE_PUSH`` for those combines under the
       program's declared traits;
    3. every combine must additionally be *idempotent* (MIN/MAX, not
       ADD): push re-derives each frontier vertex's value from its
       touched edges only, so an order-dependent float reduction would
       break the bit-reproducibility contract the engine promises per
       (mode, seed).
    """
    factory = resolve_nondet_kernel(program)
    if factory is None:
        return [
            f"no vectorized nondet kernel registered for {type(program).__name__}"
        ]
    combines = factory(program).push_combines
    if not combines:
        return [
            f"kernel for {type(program).__name__} has no push-mode scatter "
            "(push_combines is None: its scatters are not atomic combines)"
        ]
    from ..theory.eligibility import Verdict, check_push_program
    from .push import AccumulatorSpec

    shadow = _PushShadow(
        program.traits,
        {f: AccumulatorSpec(op) for f, op in combines.items()},
    )
    report = check_push_program(shadow)
    if report.verdict is not Verdict.ELIGIBLE_PUSH:
        return list(report.reasons) or [
            f"check_push_program verdict is {report.verdict.name}"
        ]
    non_idem = [f for f, op in sorted(combines.items()) if not op.idempotent]
    if non_idem:
        return [
            "combine for field(s) " + ", ".join(non_idem) + " is not "
            "idempotent: float delivery order would leak into the result, "
            "breaking per-(mode, seed) bit-reproducibility"
        ]
    return []


def emit_edge_provenance(
    record, iteration, f, e, *, u, v, selfloop,
    ws, wd, wvs, wvd, rs, rd, pre,
    vis_s2d, vis_d2s, dst_wins, t_s, t_d, thr_s, thr_d, wants_reads,
) -> None:
    """Canonical provenance events for one written edge (scalar inputs).

    Factored out of :meth:`VectorizedNondetEngine._emit_provenance` so
    engines that hold edge data in interval-local layouts (the
    out-of-core runner) can gather their sparse per-edge tuples into
    canonical order and replay the identical event stream.
    """
    if selfloop:
        # One task, one effective writer; reader==writer pairs are
        # skipped by the object engine too.
        record.commit_event(
            iteration=iteration, field=f, eid=e,
            writer=u, writer_thread=thr_s,
            value=wvs if ws else wvd, lost=[], rule="uncontended",
        )
        return
    pairs = []
    if rs > 0 and wd:
        pairs.append((u, v))
    if rd > 0 and ws:
        pairs.append((v, u))
    if wants_reads:
        for reader, writer in sorted(pairs):
            if reader == u:  # src reads dst's write
                visible = vis_d2s
                issued = t_d <= t_s
                observed = wvd if visible else pre
                count = rs
                thread_r, thread_w = thr_s, thr_d
            else:  # dst reads src's write
                visible = vis_s2d
                issued = t_s <= t_d
                observed = wvs if visible else pre
                count = rd
                thread_r, thread_w = thr_d, thr_s
            if visible:
                order, rule = "before", "lemma1-fresh"
            elif issued:
                order, rule = "concurrent", "lemma1-stale"
            else:
                order, rule = "after", "lemma1-old"
            record.read_event(
                iteration=iteration, field=f, eid=e,
                reader=reader, reader_thread=thread_r,
                writer=writer, writer_thread=thread_w,
                count=count, order=order, rule=rule,
                value=observed,
            )
    if ws and wd:
        if dst_wins:
            winner, winner_thread, value = v, thr_d, wvd
            loser, loser_thread, loser_value = u, thr_s, wvs
            vis_lw, vis_wl = vis_s2d, vis_d2s
        else:
            winner, winner_thread, value = u, thr_s, wvs
            loser, loser_thread, loser_value = v, thr_d, wvd
            vis_lw, vis_wl = vis_d2s, vis_s2d
        if vis_lw:
            order = "before"
        elif vis_wl:
            order = "after"
        else:
            order = "concurrent"
        lost = [{"vid": loser, "thread": loser_thread,
                 "value": loser_value, "order": order}]
        record.commit_event(
            iteration=iteration, field=f, eid=e,
            writer=winner, writer_thread=winner_thread,
            value=value, lost=lost, rule="lemma2",
        )
    elif ws:
        record.commit_event(
            iteration=iteration, field=f, eid=e,
            writer=u, writer_thread=thr_s,
            value=wvs, lost=[], rule="uncontended",
        )
    else:
        record.commit_event(
            iteration=iteration, field=f, eid=e,
            writer=v, writer_thread=thr_d,
            value=wvd, lost=[], rule="uncontended",
        )


class VectorizedNondetEngine:
    """Whole-graph racy iterations, bit-for-bit equal to the object engine."""

    mode = "nondeterministic"

    @staticmethod
    def _emit_provenance(
        record, ctx, state, iteration, written,
        vis_s2d, vis_d2s, dst_wins, t_s, t_d, thr_s, thr_d,
    ) -> None:
        """Bulk equivalent of ``_RacyStore._record_provenance``.

        Emits the identical canonical event stream the object engine
        produces on the same schedule — fields alphabetically, edges
        ascending, per edge the Lemma-1 read pairs (readers by vid) then
        the Lemma-2 commit.  The §II scope rule caps an edge at two
        readers and two writers (its endpoints), so the object engine's
        per-record replay collapses to the precomputed ``vis_s2d`` /
        ``vis_d2s`` / ``dst_wins`` predicates.  No pre-filtering by
        policy: the recorder's offered/dropped counters (and reservoir
        sampling stream) must also match the object engine's.
        """
        src, dst = ctx.src, ctx.dst
        selfloop = ctx.selfloop
        for f in sorted(written):
            ws, wd = ctx.ws[f], ctx.wd[f]
            wvs, wvd = ctx.wvs[f], ctx.wvd[f]
            rs, rd = ctx.rs[f], ctx.rd[f]
            pre = state.edge(f)
            wants_reads = record.wants_reads
            for e in np.flatnonzero(ws | wd):
                e = int(e)
                emit_edge_provenance(
                    record, iteration, f, e,
                    u=int(src[e]), v=int(dst[e]), selfloop=bool(selfloop[e]),
                    ws=bool(ws[e]), wd=bool(wd[e]),
                    wvs=float(wvs[e]), wvd=float(wvd[e]),
                    rs=int(rs[e]), rd=int(rd[e]), pre=float(pre[e]),
                    vis_s2d=bool(vis_s2d[e]), vis_d2s=bool(vis_d2s[e]),
                    dst_wins=bool(dst_wins[e]),
                    t_s=float(t_s[e]), t_d=float(t_d[e]),
                    thr_s=int(thr_s[e]), thr_d=int(thr_d[e]),
                    wants_reads=wants_reads,
                )

    @staticmethod
    def _emit_provenance_sparse(record, ctx, state, iteration, written,
                                eidx, sp) -> None:
        """Push-direction provenance: identical event stream, sparse walk.

        All writes land inside ``eidx`` (kernels only touch the
        frontier's out-/in-edge slices) and ``eidx`` is sorted, so
        walking its written positions visits edges in the same ascending
        canonical order the dense emitter uses — recorder byte-parity
        between directions.
        """
        src, dst = ctx.src, ctx.dst
        selfloop = ctx.selfloop
        for f in sorted(written):
            ws, wd = ctx.ws[f][eidx], ctx.wd[f][eidx]
            wvs, wvd = ctx.wvs[f][eidx], ctx.wvd[f][eidx]
            rs, rd = ctx.rs[f][eidx], ctx.rd[f][eidx]
            pre = state.edge(f)
            wants_reads = record.wants_reads
            for pos in np.flatnonzero(ws | wd):
                pos = int(pos)
                e = int(eidx[pos])
                emit_edge_provenance(
                    record, iteration, f, e,
                    u=int(src[e]), v=int(dst[e]), selfloop=bool(selfloop[e]),
                    ws=bool(ws[pos]), wd=bool(wd[pos]),
                    wvs=float(wvs[pos]), wvd=float(wvd[pos]),
                    rs=int(rs[pos]), rd=int(rd[pos]), pre=float(pre[e]),
                    vis_s2d=bool(sp.vis_s2d[pos]), vis_d2s=bool(sp.vis_d2s[pos]),
                    dst_wins=bool(sp.dst_wins[pos]),
                    t_s=float(sp.t_s[pos]), t_d=float(sp.t_d[pos]),
                    thr_s=int(sp.thr_s[pos]), thr_d=int(sp.thr_d[pos]),
                    wants_reads=wants_reads,
                )

    def _push_iteration(self, kernel, graph, state, plan_cache, dm_i,
                        active_ids, written, in_order, out_degrees, log,
                        record, iteration, p, total_passes, clock=None):
        """One racy iteration in the sparse *push* direction.

        Executes the identical iteration :meth:`_pull_iteration` would —
        same seen values, same fix-point schedule, same Lemma-2 commits,
        same conflict totals, same recorder events — but every edge
        computation runs only over the frontier's touched edges
        (out-edges ∪ in-edges of the active set) instead of all ``m``.
        """
        n = graph.num_vertices
        src, dst = graph.edge_src, graph.edge_dst
        es_all = graph.out_edge_ids(active_ids)
        ed_all = graph.in_edge_ids(active_ids)
        eidx = np.union1d(es_all, ed_all)
        plan = plan_cache.plan(active_ids, dm_i, eidx)
        sp = plan.sparse
        active = plan.active

        ctx = NondetPassContext(
            graph, state, active, written,
            in_order=in_order, out_degrees=out_degrees,
        )
        prev_seen_s = {f: ctx.committed[f][eidx] for f in written}
        prev_seen_d = {f: ctx.committed[f][eidx] for f in written}
        if clock is not None:
            clock.lap("plan_build")
        kernel.run_push_pass(ctx, active_ids, es_all, ed_all)
        total_passes += 1
        if clock is not None:
            clock.lap("push_scatter")
        for _ in range(int(active_ids.size) + 2):
            dirty = np.zeros(n, dtype=bool)
            changed_any = False
            for f in written:
                seen_d = np.where(
                    sp.vis_s2d & ctx.ws[f][eidx],
                    ctx.wvs[f][eidx], ctx.committed[f][eidx],
                )
                seen_s = np.where(
                    sp.vis_d2s & ctx.wd[f][eidx],
                    ctx.wvd[f][eidx], ctx.committed[f][eidx],
                )
                d_changed = seen_d != prev_seen_d[f]
                s_changed = seen_s != prev_seen_s[f]
                if d_changed.any() or s_changed.any():
                    changed_any = True
                    # Outside eidx nothing was written, so seen ==
                    # committed there; materialize private full-size
                    # buffers lazily on first divergence.
                    if ctx.seen_d[f] is ctx.committed[f]:
                        ctx.seen_d[f] = ctx.committed[f].copy()
                        ctx.seen_s[f] = ctx.committed[f].copy()
                    ctx.seen_d[f][eidx] = seen_d
                    ctx.seen_s[f][eidx] = seen_s
                    dirty[dst[eidx[d_changed]]] = True
                    dirty[src[eidx[s_changed]]] = True
                prev_seen_d[f] = seen_d
                prev_seen_s[f] = seen_s
            if not changed_any:
                break
            sub_ids = np.flatnonzero(dirty & active).astype(np.int64)
            kernel.run_push_pass(
                ctx, sub_ids,
                graph.out_edge_ids(sub_ids), graph.in_edge_ids(sub_ids),
            )
            total_passes += 1
        else:  # pragma: no cover - DAG depth bound violated
            raise RuntimeError("nondet fix-point failed to converge")
        if clock is not None:
            clock.lap("repair_pass")

        next_mask = np.zeros(n, dtype=bool)
        if record is not None:
            self._emit_provenance_sparse(
                record, ctx, state, iteration, written, eidx, sp)
        dt = sp.dt
        dst_wins = sp.dst_wins
        for f in written:
            ws, wd = ctx.ws[f][eidx], ctx.wd[f][eidx]
            wvs, wvd = ctx.wvs[f][eidx], ctx.wvd[f][eidx]
            arr = state.edge(f)
            both_w = ws & wd
            only = ws & ~wd
            arr[eidx[only]] = wvs[only]
            only = wd & ~ws
            arr[eidx[only]] = wvd[only]
            sel = both_w & dst_wins
            arr[eidx[sel]] = wvd[sel]
            sel = both_w & ~dst_wins
            arr[eidx[sel]] = wvs[sel]
            next_mask[dst[eidx[ws]]] = True
            next_mask[src[eidx[wd]]] = True

            rs, rd = ctx.rs[f][eidx], ctx.rd[f][eidx]
            rw = int(rs[wd & dt].sum()) + int(rd[ws & dt].sum())
            ww_mask = both_w & dt
            ww = int(np.count_nonzero(ww_mask))
            contended = int(
                np.count_nonzero(
                    ((rs > 0) & wd & dt) | ((rd > 0) & ws & dt) | ww_mask
                )
            )
            stale = int(rs[wd & sp.lex_ds & ~sp.vis_d2s].sum()) + int(
                rd[ws & sp.lex_sd & ~sp.vis_s2d].sum()
            )
            log.read_write += rw
            log.write_write += ww
            log.contended_edges += contended
            log.lost_writes += ww
            log.stale_reads += stale
            if rw + ww:
                log.per_iteration[iteration] += rw + ww

        upd_t = np.bincount(plan.thr_a, minlength=p)
        reads_t = np.zeros(p, dtype=np.int64)
        writes_t = np.zeros(p, dtype=np.int64)
        for f in state.edge_field_names:
            for counts, thr_e in (
                (ctx.rs[f][eidx], sp.thr_s), (ctx.rd[f][eidx], sp.thr_d)
            ):
                mask = counts > 0
                if mask.any():
                    reads_t += np.bincount(
                        thr_e[mask], weights=counts[mask], minlength=p
                    ).astype(np.int64)
        for f in written:
            writes_t += np.bincount(sp.thr_s[ctx.ws[f][eidx]], minlength=p)
            writes_t += np.bincount(sp.thr_d[ctx.wd[f][eidx]], minlength=p)
        return ctx, next_mask, upd_t, reads_t, writes_t, total_passes

    def _pull_iteration(self, kernel, graph, state, plan_cache, dm_i,
                        active_ids, written, in_order, out_degrees, log,
                        record, iteration, p, total_passes, clock=None):
        """One racy iteration in the dense *pull* direction (all m edges)."""
        n = graph.num_vertices
        src, dst = graph.edge_src, graph.edge_dst
        plan = plan_cache.plan(active_ids, dm_i)
        active = plan.active
        thr_s, thr_d = plan.thr_s, plan.thr_d
        t_s, t_d = plan.t_s, plan.t_d
        vis_s2d, vis_d2s = plan.vis_s2d, plan.vis_d2s
        lex_sd, lex_ds = plan.lex_sd, plan.lex_ds

        ctx = NondetPassContext(
            graph, state, active, written,
            in_order=in_order, out_degrees=out_degrees,
        )
        prev_seen_s = {f: ctx.committed[f] for f in written}
        prev_seen_d = {f: ctx.committed[f] for f in written}
        if clock is not None:
            clock.lap("plan_build")
        # Pass 1 computes every active vertex against the committed
        # snapshot; repair passes recompute only vertices whose seen
        # inputs changed.  Visibility implies strict precedence in
        # the execution order, so the dependence relation is a DAG
        # and this chaotic iteration reaches the exact per-access
        # semantics in at most depth+1 passes.
        kernel.run_pass(ctx, active)
        total_passes += 1
        if clock is not None:
            clock.lap("gather")
        for _ in range(int(active_ids.size) + 2):
            dirty = np.zeros(n, dtype=bool)
            changed_any = False
            for f in written:
                seen_d = np.where(
                    vis_s2d & ctx.ws[f], ctx.wvs[f], ctx.committed[f]
                )
                seen_s = np.where(
                    vis_d2s & ctx.wd[f], ctx.wvd[f], ctx.committed[f]
                )
                d_changed = seen_d != prev_seen_d[f]
                s_changed = seen_s != prev_seen_s[f]
                if d_changed.any():
                    dirty[dst[d_changed]] = True
                    changed_any = True
                if s_changed.any():
                    dirty[src[s_changed]] = True
                    changed_any = True
                ctx.seen_d[f] = prev_seen_d[f] = seen_d
                ctx.seen_s[f] = prev_seen_s[f] = seen_s
            if not changed_any:
                break
            kernel.run_pass(ctx, dirty & active)
            total_passes += 1
        else:  # pragma: no cover - DAG depth bound violated
            raise RuntimeError("nondet fix-point failed to converge")
        if clock is not None:
            clock.lap("repair_pass")

        # Barrier: Lemma-2 winners, conflict totals, work profile.
        next_mask = np.zeros(n, dtype=bool)
        dt = plan.dt
        dst_wins = plan.dst_wins
        if record is not None:
            # Provenance must flow *before* the commit assignments:
            # ctx.committed aliases the live state arrays, and the
            # events need each edge's pre-commit value.
            self._emit_provenance(
                record, ctx, state, iteration, written,
                vis_s2d, vis_d2s, dst_wins, t_s, t_d, thr_s, thr_d,
            )
        for f in written:
            ws, wd = ctx.ws[f], ctx.wd[f]
            wvs, wvd = ctx.wvs[f], ctx.wvd[f]
            arr = state.edge(f)
            both_w = ws & wd
            only = ws & ~wd
            arr[only] = wvs[only]
            only = wd & ~ws
            arr[only] = wvd[only]
            sel = both_w & dst_wins
            arr[sel] = wvd[sel]
            sel = both_w & ~dst_wins
            arr[sel] = wvs[sel]
            # Task-generation rule: a written edge schedules the far
            # endpoint (a written self-loop re-schedules its vertex).
            next_mask[dst[ws]] = True
            next_mask[src[wd]] = True

            rs, rd = ctx.rs[f], ctx.rd[f]
            rw = int(rs[wd & dt].sum()) + int(rd[ws & dt].sum())
            ww_mask = both_w & dt
            ww = int(np.count_nonzero(ww_mask))
            contended = int(
                np.count_nonzero(
                    ((rs > 0) & wd & dt) | ((rd > 0) & ws & dt) | ww_mask
                )
            )
            # A read is stale when the other endpoint's write was
            # already issued (lex before) yet not visible to it.
            stale = int(rs[wd & lex_ds & ~vis_d2s].sum()) + int(
                rd[ws & lex_sd & ~vis_s2d].sum()
            )
            log.read_write += rw
            log.write_write += ww
            log.contended_edges += contended
            log.lost_writes += ww
            log.stale_reads += stale
            if rw + ww:
                log.per_iteration[iteration] += rw + ww

        upd_t = np.bincount(plan.thr_a, minlength=p)
        reads_t = np.zeros(p, dtype=np.int64)
        writes_t = np.zeros(p, dtype=np.int64)
        for f in state.edge_field_names:
            for counts, thr_e in ((ctx.rs[f], thr_s), (ctx.rd[f], thr_d)):
                mask = counts > 0
                if mask.any():
                    reads_t += np.bincount(
                        thr_e[mask], weights=counts[mask], minlength=p
                    ).astype(np.int64)
        for f in written:
            writes_t += np.bincount(thr_s[ctx.ws[f]], minlength=p)
            writes_t += np.bincount(thr_d[ctx.wd[f]], minlength=p)
        return ctx, next_mask, upd_t, reads_t, writes_t, total_passes

    def run(
        self,
        program: VertexProgram,
        graph: DiGraph,
        config: EngineConfig | None = None,
        *,
        state: State | None = None,
        observer=None,
        telemetry=None,
        record=None,
        supervisor=None,
        direction: str = "pull",
        metrics=None,
    ) -> RunResult:
        config = config or EngineConfig()
        sink = telemetry
        reasons = fallback_reasons(program, config)
        if reasons:
            raise ValueError(
                "program/config not eligible for the vectorized nondeterministic "
                "fast path: " + "; ".join(reasons)
            )
        if direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            )
        push_ok = False
        if direction != "pull":
            push_reasons = push_fallback_reasons(program)
            if push_reasons and direction == "push":
                raise ValueError(
                    "program not eligible for the push direction: "
                    + "; ".join(push_reasons)
                )
            push_ok = not push_reasons
        if sink is not None:
            sink.begin_engine_run(self.mode, program, config)
        if record is not None:
            record.begin_engine_run(self.mode, program, config)
        kernel = resolve_nondet_kernel(program)(program)
        state = state if state is not None else program.make_state(graph)

        n, m = graph.num_vertices, graph.num_edges
        src, dst = graph.edge_src, graph.edge_dst
        in_order = np.lexsort((src, dst))
        out_degrees = graph.out_degrees()
        in_degrees = graph.in_degrees() if push_ok else None
        written = kernel.written_fields
        delay_model = config.effective_delay_model()
        jitter_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 2]))
            if config.jitter > 0
            else None
        )

        log = ConflictLog(keep_events=config.keep_conflict_events)
        stats: list[IterationStats] = []
        frontier_ids = initial_frontier(program, graph).sorted_vertices()
        iteration = 0
        if supervisor is not None:
            rngs = {"jitter": jitter_rng} if jitter_rng is not None else {}
            iteration, frontier_ids = supervisor.engine_start(
                self.mode, program, config, state=state, frontier=frontier_ids,
                rngs=rngs, conflicts=log,
            )
        converged = False
        total_passes = 0
        push_iterations = 0
        dir_trace: list[str] = []
        p = config.threads
        # Per-iteration plan with frontier-unchanged reuse: Defs. 1–3 for
        # every edge at once (only pairs of *distinct* active endpoints
        # can exchange same-iteration values) plus the global execution
        # order (time, π, thread) — an *invisible* write only stales
        # reads issued after it.
        plan_cache = PlanCache(graph, p, policy=config.dispatch,
                               jitter=config.jitter, rng=jitter_rng)
        # Phase attribution is pure timing (one perf_counter lap per
        # phase boundary, per iteration): it consumes no RNG stream and
        # touches no state, so profiled runs stay bit-identical.
        clock = PhaseClock() if (sink is not None or metrics is not None) \
            else None
        while iteration < config.max_iterations:
            if frontier_ids.size == 0:
                converged = True
                break
            if supervisor is not None:
                supervisor.pre_iteration(iteration)
                dm_i = supervisor.iteration_delay_model(iteration, delay_model)
            else:
                dm_i = delay_model
            t0 = time.perf_counter() if clock is not None else 0.0
            if clock is not None:
                clock.start()
            rw0, ww0 = log.read_write, log.write_write
            passes0 = total_passes
            active_ids = frontier_ids
            dir_i = choose_direction(
                direction, active_ids, out_degrees, in_degrees,
                m, n, config, push_ok,
            )
            if direction != "pull":
                dir_trace.append(dir_i)
            if dir_i == "push":
                push_iterations += 1
                step = self._push_iteration
            else:
                step = self._pull_iteration
            ctx, next_mask, upd_t, reads_t, writes_t, total_passes = step(
                kernel, graph, state, plan_cache, dm_i, active_ids,
                written, in_order, out_degrees, log, record,
                iteration, p, total_passes, clock,
            )
            stats.append(
                IterationStats(
                    iteration=iteration,
                    num_active=int(active_ids.size),
                    updates_per_thread=[int(x) for x in upd_t],
                    reads_per_thread=[int(x) for x in reads_t],
                    writes_per_thread=[int(x) for x in writes_t],
                )
            )

            for f in state.vertex_field_names:
                state.vertex(f)[active_ids] = ctx.vout[f][active_ids]

            next_ids = np.flatnonzero(next_mask).astype(np.int64)
            if supervisor is not None:
                next_ids = supervisor.post_iteration(
                    iteration, state=state, schedule=next_ids)
            if clock is not None:
                # Everything since the repair loop — Lemma-2 winners,
                # conflict totals, work profile, vertex writeback,
                # frontier materialization — is the commit barrier.
                clock.lap("lemma2_commit")
                wall = time.perf_counter() - t0
                phases = clock.drain()
                if metrics is not None:
                    record_iteration_metrics(
                        metrics, "vectorized", phases=phases,
                        num_active=int(active_ids.size),
                        frontier_size=int(next_ids.size),
                        read_write=log.read_write - rw0,
                        write_write=log.write_write - ww0,
                        wall_time_s=wall,
                    )
            if sink is not None:
                it = stats[-1]
                sink.iteration(
                    iteration=iteration,
                    num_active=it.num_active,
                    updates_per_thread=it.updates_per_thread,
                    reads_per_thread=it.reads_per_thread,
                    writes_per_thread=it.writes_per_thread,
                    frontier_size=int(next_ids.size),
                    wall_time_s=wall,
                    read_write=log.read_write - rw0,
                    write_write=log.write_write - ww0,
                    fixpoint_passes=total_passes - passes0,
                    phases=phases,
                    peak_rss_bytes=peak_rss_bytes(),
                    **({"direction": dir_i} if direction != "pull" else {}),
                )
            if observer is not None:
                observer(iteration, state, {int(v) for v in next_ids})
            frontier_ids = next_ids
            iteration += 1
        # At-cap accounting: converged stays False unless the confirming
        # empty-frontier check at the top of an iteration ran (see
        # tests/test_convergence_conformance.py).

        extra = {"vectorized": True, "fixpoint_passes": total_passes,
                 "plan_cache_hits": plan_cache.hits}
        if direction != "pull":
            extra["direction"] = direction
            extra["push_iterations"] = push_iterations
            extra["direction_trace"] = dir_trace
        result = RunResult(
            program=program,
            state=state,
            mode=self.mode,
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            conflicts=log,
            config=config,
            extra=extra,
        )
        if record is not None:
            record.end_run(result)
        if sink is not None:
            if metrics is not None:
                sink.metrics_snapshot(metrics)
            sink.end_run(result)
        return result
