"""Scheduling orders among update tasks (§II, Definitions 1–3).

Within one iteration every chosen update gets an absolute scheduling
position ``π(v)`` inside its processing thread (for the paper's Fig. 1
block dispatch over ``P`` threads with ``|S_n| = V``, that is
``π(v) = L_v mod (V / P)``).  Between two updates one of three mutually
exclusive relations holds, parameterized by the propagation delay ``d``
(the time, in update counts, for a result to travel between threads
through the cache-coherence fabric):

* ``f(v) ≺ f(u)`` — ``f(u)`` can use the results of ``f(v)``;
* ``f(v) ≻ f(u)`` — ``f(v)`` can use the results of ``f(u)``;
* ``f(v) ∥ f(u)`` — neither sees the other within this iteration.

This module gives the relation both in its pure form (Definitions 1–3,
integer ``π``) and in the jittered form used by the nondeterministic
engine, where effective timestamps carry seeded environmental noise
(§V-C's "uncertainty on scheduling, random IRQs, memory stalls").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Order", "classify", "classify_timestamps", "visible", "TaskSlot"]


class Order(enum.Enum):
    """The trichotomy of Definitions 1–3 (plus identity)."""

    SAME = "same"  #: the two arguments are the same update task
    PRECEDES = "precedes"  #: ≺ : left's results reach right
    FOLLOWS = "follows"  #: ≻ : right's results reach left
    CONCURRENT = "concurrent"  #: ∥ : neither reaches the other


@dataclass(frozen=True)
class TaskSlot:
    """Placement of one update in an iteration's schedule.

    ``time`` is the effective timestamp: exactly ``pi`` under the pure
    model, ``pi + jitter`` under environmental noise.
    """

    vid: int
    thread: int
    pi: int
    time: float

    @staticmethod
    def pure(vid: int, thread: int, pi: int) -> "TaskSlot":
        return TaskSlot(vid=vid, thread=thread, pi=pi, time=float(pi))


def classify(pi_v: int, thread_v: int, pi_u: int, thread_u: int, d: int) -> Order:
    """Relation of ``f(v)`` to ``f(u)`` per Definitions 1–3 (pure form).

    Returns ``Order.PRECEDES`` for ``f(v) ≺ f(u)``, ``Order.FOLLOWS`` for
    ``f(v) ≻ f(u)``, ``Order.CONCURRENT`` for ``f(v) ∥ f(u)``.

    Notes
    -----
    With ``d >= 1``, two updates at the same position on different
    threads are concurrent.  ``d = 0`` models instant propagation: the
    relation degenerates to a total order by ``π`` with simultaneous
    cross-thread tasks exchanging results both ways — the paper excludes
    this by taking ``d`` as a positive machine constant, and so do we.
    """
    if d < 1:
        raise ValueError(f"propagation delay d must be >= 1, got {d}")
    if thread_v == thread_u:
        if pi_v == pi_u:
            return Order.SAME
        return Order.PRECEDES if pi_v < pi_u else Order.FOLLOWS
    if pi_u - pi_v >= d:
        return Order.PRECEDES
    if pi_v - pi_u >= d:
        return Order.FOLLOWS
    return Order.CONCURRENT


def classify_timestamps(a: TaskSlot, b: TaskSlot, d: float) -> Order:
    """Relation of task ``a`` to task ``b`` under effective timestamps.

    Same structure as :func:`classify` but over (possibly jittered)
    float times; used by the nondeterministic engine.
    """
    if a.thread == b.thread:
        if a.pi == b.pi:
            return Order.SAME
        return Order.PRECEDES if a.pi < b.pi else Order.FOLLOWS
    if b.time - a.time >= d:
        return Order.PRECEDES
    if a.time - b.time >= d:
        return Order.FOLLOWS
    return Order.CONCURRENT


def visible(writer: TaskSlot, reader: TaskSlot, d: float) -> bool:
    """Can ``reader`` observe a same-iteration write by ``writer``?

    This is the engine's single visibility rule: same-thread writes are
    seen by later updates of that thread (program order); cross-thread
    writes are seen once at least ``d`` time units old.  Equivalent to
    ``classify_timestamps(writer, reader, d) is Order.PRECEDES``.
    """
    if writer.thread == reader.thread:
        return writer.pi < reader.pi
    return reader.time - writer.time >= d
