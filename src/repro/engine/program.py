"""The vertex-centric programming API (the paper's Algorithm 1).

A :class:`VertexProgram` defines the update function ``f(v)`` of §II:
its scope is the vertex ``v`` plus all of ``v``'s incident edges (pull
mode), organized as Gather (read a subset ``E_r`` of incident edges),
Compute, and Scatter (write a subset ``E_w``, optionally guarded by a
criterion).  Programs never touch state arrays directly — every edge
access goes through the :class:`UpdateContext`, which is where each
engine plugs in its visibility semantics (BSP snapshot, in-place
Gauss–Seidel, or the racy simulated-parallel store) and where access
events are counted for the conflict log and the cost model.
"""

from __future__ import annotations

import abc
from typing import Iterable, Literal, Mapping, Protocol, Sequence

import numpy as np

from ..graph import DiGraph
from .state import FieldSpec, State
from .traits import AlgorithmTraits

__all__ = ["EdgeStore", "UpdateContext", "VertexProgram", "Frontier0"]

#: What a program may return from :meth:`VertexProgram.initial_frontier`.
Frontier0 = Literal["all"] | Iterable[int]


class EdgeStore(Protocol):
    """Engine-side mediator for shared edge data.

    Each engine implements these two methods with its own visibility
    semantics; the context calls them for every individual read/write,
    which is exactly the granularity at which the paper's §III atomicity
    guarantee (and its absence) applies.
    """

    def read(self, vid: int, eid: int, field: str) -> float:
        """Value of edge ``eid``'s ``field`` as visible to ``f(vid)`` now."""
        ...

    def write(self, vid: int, eid: int, field: str, value: float) -> None:
        """Write issued by ``f(vid)`` to edge ``eid``'s ``field``."""
        ...


class UpdateContext:
    """Everything ``f(v)`` may legally see and do (the scope rule of §II).

    One context is constructed per executed update task.  The engine owns
    vertex-data arrays; since the paper's scope restricts vertex data to
    the update's own vertex, :meth:`get` / :meth:`set` address only
    ``self.vid``.

    The context also implements the paper's task-generation rule: a write
    to edge ``(u, v)`` by either endpoint schedules the *other* endpoint
    into ``S_{n+1}``.
    """

    __slots__ = (
        "vid",
        "_graph",
        "_state",
        "_store",
        "_schedule",
        "n_edge_reads",
        "n_edge_writes",
        "_gather_rng",
        "_scope",
    )

    def __init__(
        self,
        vid: int,
        graph: DiGraph,
        state: State,
        store: EdgeStore,
        schedule: set[int],
        gather_rng: np.random.Generator | None = None,
        strict_scope: bool = False,
    ):
        self.vid = vid
        self._graph = graph
        self._state = state
        self._store = store
        self._schedule = schedule
        self.n_edge_reads = 0
        self.n_edge_writes = 0
        self._gather_rng = gather_rng
        # §II scope rule enforcement: the set of edge ids f(vid) may touch.
        self._scope = (
            set(graph.incident_eids(vid).tolist()) if strict_scope else None
        )

    def _check_scope(self, eid: int) -> None:
        if self._scope is not None and eid not in self._scope:
            raise PermissionError(
                f"scope violation: f({self.vid}) accessed edge {eid}, which is "
                f"not incident to vertex {self.vid} (the paper's §II scope rule)"
            )

    # -- topology ------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        return self._graph

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def in_degree(self) -> int:
        return self._graph.in_degree(self.vid)

    @property
    def out_degree(self) -> int:
        return self._graph.out_degree(self.vid)

    def in_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sources, edge_ids)`` of edges entering this vertex."""
        return self._graph.in_edges(self.vid)

    def out_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """``(destinations, edge_ids)`` of edges leaving this vertex."""
        return self._graph.out_edges(self.vid)

    def incident_eids(self) -> np.ndarray:
        """Edge ids of all incident edges (in + out): the full scope."""
        return self._graph.incident_eids(self.vid)

    def gather_order(self, eids: Sequence[int]) -> np.ndarray:
        """Order in which to read edges during gather.

        Deterministic (identity) by default.  When the engine enables
        floating-point noise emulation (``fp_noise``), the order is a
        seeded permutation — modelling the float-non-associativity
        run-to-run differences the paper attributes its DE-vs-DE
        difference degrees to (§V-C).
        """
        eids = np.asarray(eids, dtype=np.int64)
        if self._gather_rng is None or eids.size <= 1:
            return eids
        return eids[self._gather_rng.permutation(eids.size)]

    def fp_round(self, value: float, dtype=np.float32) -> float:
        """One-ulp rounding uncertainty under fp-noise emulation.

        On the paper's testbed, deterministic reruns differ only through
        "the precision limit of float data type" — reassociated 32-bit
        summations land within an ulp of each other.  Our stand-in graphs
        have small in-degrees, so order permutation alone often rounds to
        the identical float; this hook completes the emulation by moving
        a computed aggregate one unit-in-the-last-place in a seeded
        random direction (staying put with probability 1/2).  Identity
        when fp-noise is disabled.
        """
        if self._gather_rng is None:
            return value
        r = self._gather_rng.random()
        v = dtype(value)
        if r < 0.25:
            return float(np.nextafter(v, dtype(np.inf)))
        if r < 0.5:
            return float(np.nextafter(v, dtype(-np.inf)))
        return float(v)

    # -- edge data (the contended resource) -----------------------------
    def read_edge(self, eid: int, field: str) -> float:
        """Atomic individual read of one edge value (§III granularity)."""
        eid = int(eid)
        self._check_scope(eid)
        self.n_edge_reads += 1
        return self._store.read(self.vid, eid, field)

    def write_edge(self, eid: int, field: str, value: float) -> None:
        """Atomic individual write of one edge value.

        Also applies the paper's task-generation rule: the endpoint of
        ``eid`` other than this vertex is added to ``S_{n+1}``.
        """
        eid = int(eid)
        self._check_scope(eid)
        self.n_edge_writes += 1
        self._store.write(self.vid, eid, field, value)
        u, v = self._graph.edge_endpoints(eid)
        other = v if u == self.vid else u
        self._schedule.add(other)

    # -- own vertex data (private by the scope rule) ---------------------
    def get(self, field: str) -> float:
        """This vertex's own value of ``field``."""
        return self._state.vertex(field)[self.vid]

    def set(self, field: str, value: float) -> None:
        """Set this vertex's own value of ``field`` (effective immediately)."""
        self._state.vertex(field)[self.vid] = value


class VertexProgram(abc.ABC):
    """A graph algorithm expressed as an update function (Algorithm 1).

    Subclasses provide the declared :class:`AlgorithmTraits`, the state
    schema, the initial active set ``S_0``, and the update body.
    """

    #: Declared algorithm properties (hypotheses for Theorems 1 and 2).
    traits: AlgorithmTraits

    @abc.abstractmethod
    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        """Schema of per-vertex data ``D_v``."""

    @abc.abstractmethod
    def edge_fields(self) -> Mapping[str, FieldSpec]:
        """Schema of per-edge data ``D_(u->v)``."""

    def initial_frontier(self, graph: DiGraph) -> Frontier0:
        """The initial active set ``S_0``; defaults to every vertex."""
        return "all"

    @abc.abstractmethod
    def update(self, ctx: UpdateContext) -> None:
        """The update function ``f(v)``: gather → compute → scatter."""

    def make_state(self, graph: DiGraph) -> State:
        """Materialize an initial :class:`State` for ``graph``."""
        return State(graph, self.vertex_fields(), self.edge_fields())

    # -- optional hooks -------------------------------------------------
    def result(self, state: State) -> np.ndarray:
        """The algorithm's primary per-vertex output (for analysis).

        Defaults to the first declared vertex field.
        """
        names = state.vertex_field_names
        if not names:
            raise ValueError(f"{type(self).__name__} declares no vertex fields")
        return state.vertex(names[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.traits.name})"
