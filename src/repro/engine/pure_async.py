"""Pure asynchronous execution: the paper's future-work model, built.

The paper studies the *synchronous implementation* of the asynchronous
model — iterations with barriers — and lists "pure asynchronous model"
(no barriers at all) as future work.  This engine provides it as a
discrete-event simulation:

* Each of ``P`` virtual threads owns a FIFO work queue of update tasks
  and a local clock; a thread repeatedly pops a task, executes it at its
  current clock time, and advances the clock by the task's duration
  (1 time unit + seeded jitter).
* There are **no barriers and no committed snapshots**: every write is
  appended to the edge's global version history, and a read by thread
  ``t`` at time ``τ`` observes the newest version that has *propagated*
  to ``t`` — its own writes immediately, another thread's writes once
  ``τ − write_time ≥ delay(writer_thread, t)``.
* Task generation follows the paper's rule — writing edge ``(v, u)``
  enqueues ``u`` — with *autonomous scheduling*: the new task goes to
  the queue of the thread that owns ``u`` (its block owner), and
  duplicate pending tasks collapse (a vertex is enqueued at most once
  until it runs, GraphLab-style).  When the program implements
  :meth:`~repro.engine.program.VertexProgram` plus a ``priority(vid,
  state) -> float`` method, ready tasks are ordered lowest-priority-
  value-first within each thread (§I's "autonomous scheduling [lets] a
  graph algorithm define the execution path of the updates so as to
  accelerate its convergence" — e.g. SSSP ordering by tentative
  distance approximates Dijkstra and cuts task counts).
* Termination: all queues empty.  Convergence properties carry over
  from the barriered model (Theorems 1 and 2 only need every write to
  become visible in finite time), which the test suite checks; GRACE's
  observation that the barriered implementation has comparable runtime
  to pure asynchrony is visible in the comparable task counts.

Conflicts (reads racing un-propagated writes, overlapping writes) are
accounted with the same :class:`~repro.engine.conflicts.ConflictLog`
vocabulary; "iterations" in the result are redefined as the number of
tasks executed divided by the active-thread count (a wall-clock-ish
progress measure) with per-thread work recorded for the cost model.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from ..graph import DiGraph
from .atomicity import AtomicityPolicy, tear
from .config import EngineConfig
from .conflicts import ConflictLog
from .frontier import initial_frontier
from .program import UpdateContext, VertexProgram
from .result import IterationStats, RunResult
from .state import State

__all__ = ["PureAsyncEngine"]


class _VersionedStore:
    """Barrier-free edge store with per-edge version histories."""

    __slots__ = (
        "_arrays",
        "_history",
        "_base",
        "_delay",
        "_max_delay",
        "_torn",
        "_torn_p",
        "_torn_rng",
        "current_thread",
        "current_time",
        "stale_reads",
        "racy_reads",
        "overlapping_writes",
        "recorder",
        "_rec_reads",
    )

    #: History length that triggers compaction of fully-propagated versions.
    PRUNE_THRESHOLD = 16

    def __init__(self, state: State, delay_model, atomicity, torn_probability, torn_rng):
        self._arrays = {f: state.edge(f) for f in state.edge_field_names}
        # (field, eid) -> list of (time, thread, vid, value).  The engine
        # executes tasks in nondecreasing virtual start time, so entries
        # are appended time-sorted; any version older than
        # ``now - max_delay`` is visible to every future reader, and all
        # versions older than the newest such one are dead — they get
        # compacted into `_base` so reads stay O(propagation window).
        self._history: dict[tuple[str, int], list[tuple]] = {}
        self._base: dict[tuple[str, int], float] = {}
        self._delay = delay_model
        self._max_delay = delay_model.max_delay
        self._torn = atomicity is AtomicityPolicy.NONE
        self._torn_p = torn_probability
        self._torn_rng = torn_rng
        self.current_thread = 0
        self.current_time = 0.0
        self.stale_reads = 0
        self.racy_reads = 0
        self.overlapping_writes = 0
        # Set by the engine when a flight recorder is attached; _rec_reads
        # additionally requires recorder.wants_reads (Lemma-1 provenance).
        self.recorder = None
        self._rec_reads = None

    def read(self, vid: int, eid: int, field: str) -> float:
        key = (field, eid)
        hist = self._history.get(key)
        if not hist:
            return float(self._base.get(key, self._arrays[field][eid]))
        t_r, thread_r = self.current_time, self.current_thread
        value = self._base.get(key, self._arrays[field][eid])
        best_t = -np.inf
        racing_value = None
        stale = False
        stale_writes = None
        for t_w, thread_w, vid_w, val_w in hist:
            if thread_w == thread_r:
                visible = t_w <= t_r
            else:
                visible = (t_r - t_w) >= self._delay.delay(thread_w, thread_r)
            if visible:
                if t_w > best_t:
                    best_t = t_w
                    value = val_w
            elif t_w <= t_r:
                stale = True
                if self._rec_reads is not None:
                    if stale_writes is None:
                        stale_writes = []
                    stale_writes.append((vid_w, thread_w))
                if self._torn and thread_w != thread_r:
                    racing_value = val_w
        if stale:
            self.stale_reads += 1
            self.racy_reads += 1
            if stale_writes is not None:
                # A same-thread write is always visible (t_w <= t_r), so
                # every stale pair here crosses threads: a genuine race.
                for vid_w, thread_w in stale_writes:
                    self._rec_reads.read_event(
                        iteration=0,
                        field=field,
                        eid=eid,
                        reader=vid,
                        reader_thread=thread_r,
                        writer=vid_w,
                        writer_thread=thread_w,
                        count=1,
                        order="concurrent",
                        rule="lemma1-stale",
                        value=float(value),
                    )
        if racing_value is not None and self._torn_rng.random() < self._torn_p:
            return tear(float(value), float(racing_value), self._torn_rng)
        return float(value)

    def write(self, vid: int, eid: int, field: str, value: float) -> None:
        key = (field, eid)
        hist = self._history.setdefault(key, [])
        if hist:
            last_t, last_thread, _, _ = hist[-1]
            if (
                last_thread != self.current_thread
                and abs(self.current_time - last_t)
                < self._delay.delay(last_thread, self.current_thread)
            ):
                self.overlapping_writes += 1
        hist.append((self.current_time, self.current_thread, vid, float(value)))
        # The backing array keeps the *initial* value during the run (it
        # is the fallback readers see before any version propagates);
        # finalize() installs the winning version at the end.
        if len(hist) > self.PRUNE_THRESHOLD:
            self._compact(key, hist)

    def _compact(self, key: tuple[str, int], hist: list[tuple]) -> None:
        """Fold fully-propagated versions into the base value.

        Valid because global virtual time is nondecreasing: every future
        read happens at ``t_r >= now``, so a version older than
        ``now - max_delay`` is already visible to every thread, and only
        the newest such version can ever be returned.
        """
        cutoff = self.current_time - self._max_delay
        idx = -1
        for i, entry in enumerate(hist):
            if entry[0] <= cutoff:
                idx = i
            else:
                break
        if idx >= 0:
            self._base[key] = hist[idx][3]
            del hist[: idx + 1]

    def _vis(self, t_w: float, thread_w: int, t_r: float, thread_r: int) -> bool:
        """Had the write at (t_w, thread_w) propagated to (t_r, thread_r)?"""
        if thread_w == thread_r:
            return t_w <= t_r
        return (t_r - t_w) >= self._delay.delay(thread_w, thread_r)

    def finalize(self, log: ConflictLog) -> None:
        log.stale_reads += self.stale_reads
        # Without barriers there is no commit point; report overlapping
        # writes as write-write conflicts and racy reads as read-write.
        log.read_write += self.racy_reads
        log.write_write += self.overlapping_writes
        recorder = self.recorder
        keys = sorted(self._history) if recorder is not None else self._history
        for key in keys:
            field, eid = key
            hist = self._history[key]
            # Final value: the maximal-time write (ties: later thread id),
            # falling back to the compacted base when the tail is empty.
            if hist:
                winner = max(hist, key=lambda h: (h[0], h[1]))
                self._arrays[field][eid] = winner[3]
                if recorder is not None:
                    # Provenance covers the retained (un-compacted) tail:
                    # versions folded into _base were visible to every
                    # thread and could not have contended with the winner.
                    eff: dict[int, tuple] = {}
                    for h in hist:
                        eff[h[2]] = h
                    lost = []
                    for vid_w in sorted(eff):
                        if vid_w == winner[2]:
                            continue
                        t_w, thread_w, _, val_w = eff[vid_w]
                        if self._vis(t_w, thread_w, winner[0], winner[1]):
                            order = "before"
                        elif self._vis(winner[0], winner[1], t_w, thread_w):
                            order = "after"
                        else:
                            order = "concurrent"
                        lost.append(
                            {"vid": vid_w, "thread": thread_w,
                             "value": float(val_w), "order": order}
                        )
                    recorder.commit_event(
                        iteration=0,
                        field=field,
                        eid=eid,
                        writer=winner[2],
                        writer_thread=winner[1],
                        value=float(winner[3]),
                        lost=lost,
                        rule="lemma2" if len(eff) > 1 else "uncontended",
                    )
            elif key in self._base:
                self._arrays[field][eid] = self._base[key]
            if len({h[2] for h in hist}) > 1:
                log.contended_edges += 1


class PureAsyncEngine:
    """Barrier-free asynchronous executor with autonomous scheduling."""

    mode = "pure-async"

    def run(
        self,
        program: VertexProgram,
        graph: DiGraph,
        config: EngineConfig | None = None,
        *,
        state: State | None = None,
        observer=None,
        telemetry=None,
        record=None,
        supervisor=None,
    ) -> RunResult:
        config = config or EngineConfig()
        sink = telemetry
        if sink is not None:
            sink.begin_engine_run(self.mode, program, config)
        if record is not None:
            record.begin_engine_run(self.mode, program, config)
        t0 = time.perf_counter() if sink is not None else 0.0
        state = state if state is not None else program.make_state(graph)
        p = config.threads
        delay_model = config.effective_delay_model()
        jitter_rng = np.random.default_rng(np.random.SeedSequence([config.seed, 4]))
        torn_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 3]))
            if config.atomicity is AtomicityPolicy.NONE
            else None
        )
        if supervisor is not None:
            # Barrier-free: no consistent cut exists, so the supervisor
            # refuses checkpoint/resume (frontier=None) and faults are
            # keyed by *task index* instead of iteration.
            supervisor.engine_start(
                self.mode, program, config, state=state, frontier=None,
                rngs={},
            )
        log = ConflictLog(keep_events=config.keep_conflict_events)
        store = _VersionedStore(
            state, delay_model, config.atomicity, config.torn_probability, torn_rng
        )
        if record is not None:
            store.recorder = record
            if record.wants_reads:
                store._rec_reads = record

        # Static block ownership: vertex v belongs to thread owner(v).
        n = graph.num_vertices
        chunk = max(1, -(-n // p))  # ceil division

        def owner(v: int) -> int:
            return min(v // chunk, p - 1)

        # Per-thread min-heaps of (ready_time, priority, seq, vid).  A
        # task's ready time is when the triggering write has propagated
        # to the owning thread: running it earlier could read the stale
        # value and lose the update forever — the failure mode the
        # barrier rules out in the paper's model, handled here by the
        # arrival constraint.  The priority component implements
        # autonomous scheduling: programs exposing priority(vid, state)
        # reorder runnable tasks, lowest value first.
        # Two heaps per thread: `future` ordered by arrival time (tasks
        # whose triggering information has not yet propagated), and
        # `runnable` ordered by the program's autonomous priority (among
        # tasks whose information has arrived, the algorithm chooses).
        future: list[list[tuple[float, float, int, int]]] = [[] for _ in range(p)]
        runnable: list[list[tuple[float, int, int]]] = [[] for _ in range(p)]
        prio_fn = getattr(program, "priority", None)

        def priority_of(v: int) -> float:
            return float(prio_fn(v, state)) if prio_fn is not None else 0.0

        # vid -> latest ready_time already enqueued (dedup: re-enqueue
        # only when newer information will arrive after that task runs).
        pending: dict[int, float] = {}
        seq = 0
        for v in initial_frontier(program, graph).sorted_vertices().tolist():
            heapq.heappush(runnable[owner(v)], (priority_of(v), seq, v))
            seq += 1
            pending[v] = 0.0

        clocks = [0.0] * p
        tasks_executed = 0
        reads_per_thread = [0] * p
        writes_per_thread = [0] * p
        updates_per_thread = [0] * p
        max_tasks = config.max_iterations * max(1, n)
        converged = True

        def promote(t: int, now: float) -> None:
            while future[t] and future[t][0][0] <= now:
                _, prio, sq, v = heapq.heappop(future[t])
                heapq.heappush(runnable[t], (prio, sq, v))

        while any(runnable) or any(future):
            if tasks_executed >= max_tasks:
                converged = False
                break
            # Next event: the thread that can start a task soonest —
            # immediately from its runnable heap, or after the earliest
            # future arrival.
            best_thread = -1
            best_start = np.inf
            for t in range(p):
                promote(t, clocks[t])
                if runnable[t]:
                    start = clocks[t]
                elif future[t]:
                    start = max(clocks[t], future[t][0][0])
                else:
                    continue
                if start < best_start:
                    best_start = start
                    best_thread = t
            thread = best_thread
            promote(thread, best_start)
            _, _, vid = heapq.heappop(runnable[thread])
            if pending.get(vid, -1.0) <= best_start:
                pending.pop(vid, None)
            if supervisor is not None:
                supervisor.pre_iteration(tasks_executed)
            store.current_thread = thread
            store.current_time = best_start
            schedule: set[int] = set()
            ctx = UpdateContext(vid, graph, state, store, schedule,
                                strict_scope=config.validate_scope)
            program.update(ctx)
            tasks_executed += 1
            updates_per_thread[thread] += 1
            reads_per_thread[thread] += ctx.n_edge_reads
            writes_per_thread[thread] += ctx.n_edge_writes
            # Task duration: one unit plus environmental jitter.
            duration = 1.0 + (
                float(jitter_rng.uniform(0.0, config.jitter)) if config.jitter else 0.0
            )
            end_time = best_start + duration
            clocks[thread] = end_time
            for u in sorted(schedule):
                target = owner(u)
                arrival = (
                    end_time
                    if target == thread
                    else end_time + delay_model.delay(thread, target)
                )
                if pending.get(u, -1.0) >= arrival:
                    continue  # an already-queued task will see this write
                pending[u] = arrival
                if arrival <= clocks[target]:
                    heapq.heappush(runnable[target], (priority_of(u), seq, u))
                else:
                    heapq.heappush(future[target], (arrival, priority_of(u), seq, u))
                seq += 1

        store.finalize(log)
        stats = [
            IterationStats(
                iteration=0,
                num_active=tasks_executed,
                updates_per_thread=updates_per_thread,
                reads_per_thread=reads_per_thread,
                writes_per_thread=writes_per_thread,
            )
        ]
        if sink is not None:
            # Barrier-free: the whole run is one span ("iterations" are
            # redefined as executed tasks / thread count, see module doc).
            sink.iteration(
                iteration=0,
                num_active=tasks_executed,
                updates_per_thread=updates_per_thread,
                reads_per_thread=reads_per_thread,
                writes_per_thread=writes_per_thread,
                frontier_size=0,
                wall_time_s=time.perf_counter() - t0,
                read_write=log.read_write,
                write_write=log.write_write,
                tasks_executed=tasks_executed,
            )
        if observer is not None:
            observer(0, state, set())
        result = RunResult(
            program=program,
            state=state,
            mode=self.mode,
            converged=converged and not any(runnable) and not any(future),
            num_iterations=max(1, -(-tasks_executed // max(1, n))),
            iterations=stats,
            conflicts=log,
            config=config,
        )
        if record is not None:
            record.end_run(result)
        if sink is not None:
            sink.end_run(result)
        return result
