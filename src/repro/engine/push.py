"""Push-mode execution — the paper's future-work condition, built out.

The paper's §II scopes update functions in *pull* mode (read in-edges,
write out-edges) and its future work asks for "more sufficient
conditions (e.g., those considering the push mode)".  In push mode
(Ligra's style, which §III cites for its whole-update CAS granularity),
``f(v)`` reads only its own state and *pushes* contributions into its
out-neighbours' **vertex accumulators**; the contended object moves
from edges to per-vertex accumulators, and the atomic primitive is an
atomic *combine* (fetch-and-min / fetch-and-add / CAS loop) rather than
an atomic load or store.

This module provides:

* :class:`CombineOp` — the accumulator algebra (MIN / MAX / ADD), with
  the properties the sufficient condition needs (commutative,
  associative, idempotent or not);
* :class:`PushProgram` / :class:`PushContext` — the push-mode program
  API: ``take`` your own accumulator, update your state, ``push`` to
  out-neighbours (which schedules them, mirroring the paper's task
  generation rule);
* :class:`PushEngine` — a barriered executor with the same virtual
  thread/dispatch/delay machinery as the pull-mode engine.  A push by
  task ``w`` is folded into the target's accumulator *as seen by* task
  ``r`` iff ``w ≺ r`` (Definitions 1–3); in-flight pushes are never
  lost — they are consumed at the next opportunity — because an atomic
  combine delivers every contribution exactly once.  With
  ``AtomicityPolicy.NONE`` racy combines drop contributions with the
  configured probability (the classic lost-update), so the engine can
  demonstrate why the atomic combine is the push-mode analogue of
  §III's atomicity guarantee.

The corresponding sufficient condition lives in
:func:`repro.theory.eligibility.check_push_program`:

    *If a push-mode algorithm converges under a deterministic schedule
    and every accumulator's combine operation is commutative and
    associative, and combines are applied atomically, then the
    algorithm converges nondeterministically* — order of delivery
    cannot change any folded value, so the proof of Theorem 1 carries
    over with "edge value" replaced by "accumulator value".
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..graph import DiGraph
from .atomicity import AtomicityPolicy
from .config import EngineConfig
from .conflicts import ConflictLog
from .dispatch import make_plan
from .frontier import Frontier, initial_frontier
from .result import IterationStats, RunResult
from .state import FieldSpec, State
from .traits import AlgorithmTraits

__all__ = [
    "CombineOp",
    "AccumulatorSpec",
    "PushContext",
    "PushProgram",
    "PushEngine",
    "run_push",
]


class CombineOp(enum.Enum):
    """Accumulator combine algebra."""

    MIN = "min"
    MAX = "max"
    ADD = "add"

    @property
    def commutative_associative(self) -> bool:
        return True  # all three are; a future SUBTRACT would not be

    @property
    def idempotent(self) -> bool:
        """Idempotent ops (min/max) tolerate duplicate delivery too."""
        return self in (CombineOp.MIN, CombineOp.MAX)

    def fold(self, a: float, b: float) -> float:
        if self is CombineOp.ADD:
            return a + b
        # MIN/MAX: propagate NaN symmetrically.  The naive
        # ``a if a <= b else b`` answers ``b`` whenever a comparison
        # involves NaN, so fold(nan, x) != fold(x, nan) — silently
        # breaking the commutativity check_push_program relies on.
        if a != a or b != b:
            return float("nan")
        if self is CombineOp.MIN:
            return a if a <= b else b
        return a if a >= b else b

    @property
    def identity(self) -> float:
        if self is CombineOp.MIN:
            return float(np.inf)
        if self is CombineOp.MAX:
            return float(-np.inf)
        return 0.0


@dataclass(frozen=True)
class AccumulatorSpec:
    """One named per-vertex accumulator."""

    op: CombineOp
    dtype: np.dtype | type | str = np.float64


class _PendingPush:
    """One in-flight contribution: (time, thread, sender, value)."""

    __slots__ = ("time", "thread", "sender", "value")

    def __init__(self, time: float, thread: int, sender: int, value: float):
        self.time = time
        self.thread = thread
        self.sender = sender
        self.value = value


class PushContext:
    """What a push-mode update may see and do.

    Scope: the update's own vertex fields and accumulators, plus
    *pushes* to out-neighbours.  There is no edge data and no reading of
    other vertices — the defining restriction of push mode.
    """

    __slots__ = ("vid", "_graph", "_state", "_engine", "_schedule", "n_pushes", "n_takes")

    def __init__(self, vid: int, graph: DiGraph, state: State, engine, schedule: set[int]):
        self.vid = vid
        self._graph = graph
        self._state = state
        self._engine = engine
        self._schedule = schedule
        self.n_pushes = 0
        self.n_takes = 0

    @property
    def graph(self) -> DiGraph:
        return self._graph

    @property
    def out_degree(self) -> int:
        return self._graph.out_degree(self.vid)

    def out_neighbors(self) -> np.ndarray:
        return self._graph.out_neighbors(self.vid)

    def get(self, field: str) -> float:
        return self._state.vertex(field)[self.vid]

    def set(self, field: str, value: float) -> None:
        self._state.vertex(field)[self.vid] = value

    def peek(self, field: str) -> float:
        """Current (visible) value of this vertex's accumulator."""
        return self._engine.fold_visible(self.vid, field, consume=False)

    def take(self, field: str) -> float:
        """Atomically read-and-reset this vertex's accumulator.

        Only contributions that have *propagated* to this task are
        consumed; in-flight pushes stay pending and re-activate the
        vertex later — no contribution is ever lost (the atomic-combine
        guarantee).
        """
        self.n_takes += 1
        return self._engine.fold_visible(self.vid, field, consume=True)

    def push(self, target: int, field: str, value: float) -> None:
        """Atomically combine ``value`` into ``target``'s accumulator and
        schedule ``target`` (the push-mode task-generation rule).

        A contribution dropped by a racy non-atomic combine
        (``AtomicityPolicy.NONE``) never landed anywhere, so it must not
        fire the task-generation rule: only a delivered push schedules
        its target.
        """
        self.n_pushes += 1
        if self._engine.deliver(self.vid, int(target), field, float(value)):
            self._schedule.add(int(target))


class PushProgram(abc.ABC):
    """A push-mode vertex program."""

    traits: AlgorithmTraits

    @abc.abstractmethod
    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        """Per-vertex state (private to the owner)."""

    @abc.abstractmethod
    def accumulators(self) -> Mapping[str, AccumulatorSpec]:
        """Named accumulators with their combine algebra."""

    def initial_frontier(self, graph: DiGraph):
        return "all"

    @abc.abstractmethod
    def update(self, ctx: PushContext) -> None:
        """take → compute → push."""

    def make_state(self, graph: DiGraph) -> State:
        return State(graph, self.vertex_fields(), {})

    def result(self, state: State) -> np.ndarray:
        names = state.vertex_field_names
        if not names:
            raise ValueError(f"{type(self).__name__} declares no vertex fields")
        return state.vertex(names[0])


class PushEngine:
    """Barriered push-mode executor (deterministic or simulated-racy).

    The same iteration/dispatch skeleton as the pull-mode engines; the
    shared mutable objects are per-vertex accumulators.  Visibility of a
    push follows Definitions 1–3 through the configured delay model;
    un-propagated pushes carry over to later iterations (timestamps are
    rebased so everything in flight is visible at the next barrier).
    """

    mode = "push"

    def __init__(self):
        self._acc_specs: Mapping[str, AccumulatorSpec] = {}
        self._pending: dict[str, dict[int, list[_PendingPush]]] = {}
        self._current_slot = None
        self._delay_model = None
        self._lost_rng = None
        self._lost_p = 0.0
        self.log = ConflictLog()

    # -- engine internals used by PushContext ---------------------------
    def deliver(self, sender: int, target: int, field: str, value: float) -> bool:
        """Fold one contribution into ``target``'s pending set.

        Returns whether the contribution landed: ``False`` means a racy
        non-atomic combine lost it (the classic lost-update), in which
        case the caller must not schedule the target.
        """
        slot = self._current_slot
        pushes = self._pending[field].setdefault(target, [])
        racing = any(
            p.thread != slot.thread
            and abs(p.time - slot.time) < self._delay_model.delay(p.thread, slot.thread)
            for p in pushes
        )
        if racing:
            # Concurrent combines on one accumulator: contention exists
            # under every policy; only a non-atomic combine loses one.
            self.log.write_write += 1
            if self._lost_rng is not None and self._lost_rng.random() < self._lost_p:
                self.log.lost_writes += 1
                return False
        pushes.append(_PendingPush(slot.time, slot.thread, sender, value))
        return True

    def fold_visible(self, vid: int, field: str, *, consume: bool) -> float:
        spec = self._acc_specs[field]
        slot = self._current_slot
        pushes = self._pending[field].get(vid)
        acc = spec.op.identity
        if not pushes:
            return acc
        kept: list[_PendingPush] = []
        invisible = 0
        for p in pushes:
            if p.thread == slot.thread:
                visible = p.time < slot.time
            else:
                visible = (slot.time - p.time) >= self._delay_model.delay(
                    p.thread, slot.thread
                )
            if visible:
                acc = spec.op.fold(acc, p.value)
                if not consume:
                    kept.append(p)
            else:
                invisible += 1
                kept.append(p)
        # Per-contribution accounting, matching pull mode's per-access
        # stale-read counters: every in-flight push this fold failed to
        # observe is one stale read, not one per fold call.
        self.log.stale_reads += invisible
        if consume or len(kept) != len(pushes):
            if kept:
                self._pending[field][vid] = kept
            else:
                del self._pending[field][vid]
        return acc

    def _rebase_pending(self) -> set[int]:
        """At the barrier, mark all in-flight pushes as propagated and
        return the vertices that still hold contributions."""
        holders: set[int] = set()
        for field, per_vertex in self._pending.items():
            for vid, pushes in per_vertex.items():
                for p in pushes:
                    p.time = -np.inf  # visible to everyone next iteration
                holders.add(vid)
        return holders

    # -- main loop --------------------------------------------------------
    def run(
        self,
        program: PushProgram,
        graph: DiGraph,
        config: EngineConfig | None = None,
        *,
        state: State | None = None,
        observer=None,
    ) -> RunResult:
        config = config or EngineConfig()
        state = state if state is not None else program.make_state(graph)
        self._acc_specs = dict(program.accumulators())
        self._pending = {f: {} for f in self._acc_specs}
        self._delay_model = config.effective_delay_model()
        self.log = ConflictLog(keep_events=config.keep_conflict_events)
        if config.atomicity is AtomicityPolicy.NONE:
            self._lost_rng = np.random.default_rng(
                np.random.SeedSequence([config.seed, 3])
            )
            self._lost_p = config.torn_probability
        else:
            self._lost_rng = None
        jitter_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 2]))
            if config.jitter > 0
            else None
        )

        frontier = initial_frontier(program, graph)
        stats: list[IterationStats] = []
        iteration = 0
        converged = False
        p = config.threads
        while iteration < config.max_iterations:
            if not frontier:
                converged = True
                break
            active = frontier.sorted_vertices()
            plan = make_plan(
                active, p, policy=config.dispatch, jitter=config.jitter, rng=jitter_rng
            )
            next_schedule: set[int] = set()
            upd = [0] * p
            pushes = [0] * p
            takes = [0] * p
            for vid in plan.execution_order():
                slot = plan.slots[vid]
                self._current_slot = slot
                ctx = PushContext(vid, graph, state, self, next_schedule)
                program.update(ctx)
                upd[slot.thread] += 1
                pushes[slot.thread] += ctx.n_pushes
                takes[slot.thread] += ctx.n_takes
            # Barrier: everything in flight becomes visible; vertices
            # still holding contributions must run again.
            next_schedule.update(self._rebase_pending())
            stats.append(
                IterationStats(
                    iteration=iteration,
                    num_active=int(active.size),
                    updates_per_thread=upd,
                    reads_per_thread=takes,
                    writes_per_thread=pushes,
                )
            )
            if observer is not None:
                observer(iteration, state, next_schedule)
            frontier = Frontier(next_schedule)
            iteration += 1
        # When the iteration cap expires, ``converged`` stays False even
        # if the *next* frontier happens to be empty: convergence is only
        # claimed by the confirming check at the top of an executed
        # iteration (the barrier merges in-flight holders into the
        # schedule, so an empty frontier also certifies an empty pending
        # store).  All engines share this at-cap accounting — see
        # tests/test_convergence_conformance.py.

        return RunResult(
            program=program,  # type: ignore[arg-type] — same duck interface
            state=state,
            mode=self.mode,
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            conflicts=self.log,
            config=config,
        )


def run_push(
    program: PushProgram,
    graph: DiGraph,
    *,
    mode: str = "nondeterministic",
    config: EngineConfig | None = None,
    observer=None,
    **config_kwargs,
) -> RunResult:
    """Execute a push-mode program.

    ``mode="deterministic"`` forces a single virtual thread without
    jitter (a sequential small-label sweep); ``"nondeterministic"`` uses
    the configured thread count/delay/jitter.
    """
    if config is not None and config_kwargs:
        raise ValueError("pass either config= or individual config kwargs, not both")
    if config is None:
        config = EngineConfig(**config_kwargs)
    if mode == "deterministic":
        config = config.with_(threads=1, jitter=0.0)
    elif mode != "nondeterministic":
        raise ValueError(f"unknown push mode {mode!r}")
    return PushEngine().run(program, graph, config, observer=observer)
