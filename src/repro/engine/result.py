"""Run results: everything an execution produces besides the final state.

A :class:`RunResult` carries the converged state, per-iteration work
profile (the input to the virtual-time cost model), the conflict log,
and bookkeeping that the theory and analysis packages consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .conflicts import ConflictLog
from .state import State

if TYPE_CHECKING:  # pragma: no cover
    from .program import VertexProgram
    from .runner import EngineConfig

__all__ = ["IterationStats", "RunResult"]


@dataclass
class IterationStats:
    """Work performed in one iteration, split per (virtual) thread.

    The per-thread resolution is what lets the cost model compute the
    barrier time ``max_t Σ work(t)`` for Fig. 3.
    """

    iteration: int
    num_active: int
    updates_per_thread: list[int]
    reads_per_thread: list[int]
    writes_per_thread: list[int]

    @property
    def total_reads(self) -> int:
        return sum(self.reads_per_thread)

    @property
    def total_writes(self) -> int:
        return sum(self.writes_per_thread)


@dataclass
class RunResult:
    """Outcome of executing a program on a graph with one engine."""

    program: "VertexProgram"
    state: State
    mode: str  #: "sync" | "deterministic" | "nondeterministic" | "threads"
    converged: bool
    num_iterations: int
    iterations: list[IterationStats] = field(default_factory=list)
    conflicts: ConflictLog = field(default_factory=ConflictLog)
    config: "EngineConfig | None" = None
    extra: dict = field(default_factory=dict)  #: engine-specific facts (e.g. num_colors)

    @property
    def total_updates(self) -> int:
        return sum(sum(s.updates_per_thread) for s in self.iterations)

    @property
    def total_reads(self) -> int:
        return sum(s.total_reads for s in self.iterations)

    @property
    def total_writes(self) -> int:
        return sum(s.total_writes for s in self.iterations)

    def result(self) -> np.ndarray:
        """The program's primary per-vertex output."""
        return self.program.result(self.state)

    def summary(self) -> dict:
        """Compact dict for reports and experiment tables."""
        return {
            "mode": self.mode,
            "converged": self.converged,
            "iterations": self.num_iterations,
            "updates": self.total_updates,
            "edge_reads": self.total_reads,
            "edge_writes": self.total_writes,
            **self.conflicts.summary(),
        }
