"""Unified front-end for executing a program with any of the engines."""

from __future__ import annotations

from typing import Literal

from ..graph import DiGraph
from .config import EngineConfig
from .chromatic import ChromaticEngine
from .gauss_seidel import DeterministicEngine
from .nondet_engine import NondeterministicEngine
from .pure_async import PureAsyncEngine
from .program import VertexProgram
from .result import RunResult
from .state import State
from .sync_engine import SynchronousEngine
from .threads_engine import ThreadsEngine

__all__ = ["Mode", "run", "ENGINES"]

Mode = Literal[
    "sync", "deterministic", "chromatic", "nondeterministic", "pure-async", "threads"
]

ENGINES = {
    "sync": SynchronousEngine,
    "deterministic": DeterministicEngine,
    "chromatic": ChromaticEngine,
    "nondeterministic": NondeterministicEngine,
    "pure-async": PureAsyncEngine,
    "threads": ThreadsEngine,
}


def run(
    program: VertexProgram,
    graph: DiGraph,
    *,
    mode: Mode = "nondeterministic",
    config: EngineConfig | None = None,
    state: State | None = None,
    observer=None,
    vectorized: bool | str = False,
    telemetry=None,
    record=None,
    **config_kwargs,
) -> RunResult:
    """Execute ``program`` on ``graph`` under the chosen execution model.

    Parameters
    ----------
    mode:
        ``"sync"`` — BSP (Theorem 1's premise);
        ``"deterministic"`` — sequential asynchronous Gauss–Seidel, the
        paper's DE baseline (external deterministic scheduler);
        ``"chromatic"`` — deterministic *parallel* asynchronous execution
        via color classes (the related-work chromatic scheduler);
        ``"nondeterministic"`` — the simulated racy parallel executor
        (the paper's NE);
        ``"pure-async"`` — barrier-free asynchronous executor with
        autonomous scheduling (the paper's future-work model);
        ``"threads"`` — best-effort real-thread backend.
    config:
        Full :class:`EngineConfig`; alternatively pass individual fields
        as keyword arguments (``threads=8, seed=3, ...``).
    state:
        Resume from an existing state instead of the program's initial
        one (used by the convergence-chain tracer).
    observer:
        Optional callback ``observer(iteration, state, next_schedule)``
        invoked at every iteration barrier (not supported by the
        real-thread backend).  Observers compose with ``vectorized=``:
        the fast path invokes the callback at its barriers with the
        identical iteration/schedule trajectory the object engine would
        produce, so enabling the fast path never changes what an
        observer sees.  For pure observability prefer ``telemetry=`` —
        unlike an observer it also works for ``mode="threads"``.
    vectorized:
        Nondeterministic mode only.  ``True`` takes the whole-graph NumPy
        fast path (:class:`~repro.engine.nondet_vectorized.VectorizedNondetEngine`)
        when the program has a registered kernel and the configuration is
        eligible, silently falling back to the object engine otherwise —
        both produce bit-identical results.  ``"require"`` raises instead
        of falling back, listing the reasons.  Default ``False`` always
        uses the object engine.  The value is normalized once on entry:
        the empty string is accepted as ``False`` (falsy pass-through,
        e.g. from CLI/env plumbing) and, like ``False``, is valid for
        every mode; any other string except ``"require"`` is rejected.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` sink.  Every engine
        (including the real-thread backend and the vectorized fast path)
        records one span per iteration — per-thread work profile,
        conflict classes, frontier size, wall time — plus run metadata;
        when the vectorized dispatch falls back, the reasons are
        recorded as a ``vectorized_fallback`` event.  ``None`` (the
        default) costs one pointer check per iteration.
    record:
        Optional flight recorder capturing event-level race provenance:
        every contended edge access becomes a provenance event —
        ``(iteration, edge, writer, committer, Def. 1–3 order,
        Lemma-1/2 rule, value committed, values lost)``.  Accepts a
        :class:`~repro.obs.Recorder` instance, a path (``str`` /
        ``os.PathLike``) to stream JSONL provenance to, or ``True`` for
        an in-memory recorder with the default conflicts-only policy.
        ``None`` (the default) costs one pointer check per commit
        barrier, matching the ``telemetry=`` contract.

    Examples
    --------
    >>> from repro.graph import generators
    >>> from repro.algorithms import WeaklyConnectedComponents
    >>> g = generators.path_graph(8)
    >>> res = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
    ...           threads=4, seed=1)
    >>> res.converged
    True
    """
    # Normalize vectorized= once, up front: booleans pass through, the
    # empty string is a falsy pass-through equivalent to False (and so
    # must be valid for every mode), and the only meaningful string is
    # "require".  Everything downstream sees only False/True/"require".
    if isinstance(vectorized, str):
        if vectorized == "":
            vectorized = False
        elif vectorized != "require":
            raise ValueError(
                f"vectorized={vectorized!r} not understood: use True, False or 'require'"
            )
    # Normalize record= the same way: None passes through untouched, a
    # Recorder instance is used as-is, True means "in-memory recorder with
    # defaults", and a path means "stream JSONL provenance there".
    if record is not None and not hasattr(record, "begin_engine_run"):
        from ..obs import Recorder

        if record is True:
            record = Recorder()
        elif isinstance(record, (str, bytes)) or hasattr(record, "__fspath__"):
            record = Recorder(trace_path=record)
        else:
            raise ValueError(
                f"record={record!r} not understood: use a Recorder, a trace "
                "path, or True"
            )
    if config is not None and config_kwargs:
        raise ValueError("pass either config= or individual config kwargs, not both")
    if config is None:
        config = EngineConfig(**config_kwargs)
    try:
        engine_cls = ENGINES[mode]
    except KeyError:
        raise ValueError(f"unknown mode {mode!r}; choose from {sorted(ENGINES)}") from None
    if vectorized:
        if mode != "nondeterministic":
            raise ValueError(
                "vectorized= applies to mode='nondeterministic' only "
                "(use run_vectorized for the BSP fast path)"
            )
        # Imported lazily: the fast path pulls in the kernel registry.
        from .nondet_vectorized import VectorizedNondetEngine, fallback_reasons

        reasons = fallback_reasons(program, config)
        if not reasons:
            return VectorizedNondetEngine().run(
                program, graph, config, state=state, observer=observer,
                telemetry=telemetry, record=record,
            )
        if vectorized == "require":
            raise ValueError(
                "vectorized='require' but the fast path is not eligible: "
                + "; ".join(reasons)
            )
        if telemetry is not None:
            telemetry.event("vectorized_fallback", reasons=reasons)
    if mode == "threads":
        if observer is not None:
            raise ValueError("the real-thread backend does not support observers")
        return engine_cls().run(program, graph, config, state=state,
                                telemetry=telemetry, record=record)
    return engine_cls().run(program, graph, config, state=state, observer=observer,
                            telemetry=telemetry, record=record)
