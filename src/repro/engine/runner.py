"""Unified front-end for executing a program with any of the engines."""

from __future__ import annotations

from typing import Literal

from ..graph import DiGraph
from .config import EngineConfig
from .chromatic import ChromaticEngine
from .gauss_seidel import DeterministicEngine
from .nondet_engine import NondeterministicEngine
from .pure_async import PureAsyncEngine
from .program import VertexProgram
from .result import RunResult
from .state import State
from .sync_engine import SynchronousEngine
from .threads_engine import ThreadsEngine

__all__ = ["Mode", "run", "ENGINES"]

Mode = Literal[
    "sync", "deterministic", "chromatic", "nondeterministic", "pure-async",
    "threads", "delta"
]

ENGINES = {
    "sync": SynchronousEngine,
    "deterministic": DeterministicEngine,
    "chromatic": ChromaticEngine,
    "nondeterministic": NondeterministicEngine,
    "pure-async": PureAsyncEngine,
    "threads": ThreadsEngine,
}


def _require_positive(name: str, value, *, integer: bool = False) -> None:
    """Reject non-numeric and <= 0 values with a clear error, up front.

    Without this, a bad ``max_iterations``/``deadline_s``/
    ``checkpoint_every`` surfaces as a confusing comparison error deep
    inside an engine loop (or worse, silently never checkpoints).
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"{name} must be a positive number, got {value!r} "
            f"({type(value).__name__})"
        )
    if value != value or value <= 0:  # NaN or non-positive
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if integer and float(value) != int(value):
        raise ValueError(f"{name} must be a positive integer, got {value!r}")


def run(
    program: VertexProgram,
    graph: DiGraph,
    *,
    mode: Mode = "nondeterministic",
    config: EngineConfig | None = None,
    state: State | None = None,
    observer=None,
    vectorized: bool | str = False,
    backend: str | None = None,
    direction: str = "pull",
    telemetry=None,
    metrics=None,
    record=None,
    supervisor=None,
    faults=None,
    watchdog=None,
    policy=None,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume_from=None,
    deadline_s: float | None = None,
    interrupt=None,
    mutations=None,
    delta_threshold: float | None = None,
    delta_scheduling: str = "frontier",
    **config_kwargs,
) -> RunResult:
    """Execute ``program`` on ``graph`` under the chosen execution model.

    Parameters
    ----------
    mode:
        ``"sync"`` — BSP (Theorem 1's premise);
        ``"deterministic"`` — sequential asynchronous Gauss–Seidel, the
        paper's DE baseline (external deterministic scheduler);
        ``"chromatic"`` — deterministic *parallel* asynchronous execution
        via color classes (the related-work chromatic scheduler);
        ``"nondeterministic"`` — the simulated racy parallel executor
        (the paper's NE);
        ``"pure-async"`` — barrier-free asynchronous executor with
        autonomous scheduling (the paper's future-work model);
        ``"threads"`` — best-effort real-thread backend.
    config:
        Full :class:`EngineConfig`; alternatively pass individual fields
        as keyword arguments (``threads=8, seed=3, ...``).
    state:
        Resume from an existing state instead of the program's initial
        one (used by the convergence-chain tracer).
    observer:
        Optional callback ``observer(iteration, state, next_schedule)``
        invoked at every iteration barrier (not supported by the
        real-thread backend).  Observers compose with ``vectorized=``:
        the fast path invokes the callback at its barriers with the
        identical iteration/schedule trajectory the object engine would
        produce, so enabling the fast path never changes what an
        observer sees.  For pure observability prefer ``telemetry=`` —
        unlike an observer it also works for ``mode="threads"``.
    vectorized:
        Nondeterministic mode only.  ``True`` takes the whole-graph NumPy
        fast path (:class:`~repro.engine.nondet_vectorized.VectorizedNondetEngine`)
        when the program has a registered kernel and the configuration is
        eligible, silently falling back to the object engine otherwise —
        both produce bit-identical results.  ``"require"`` raises instead
        of falling back, listing the reasons.  Default ``False`` always
        uses the object engine.  The value is normalized once on entry:
        the empty string is accepted as ``False`` (falsy pass-through,
        e.g. from CLI/env plumbing) and, like ``False``, is valid for
        every mode; any other string except ``"require"`` is rejected.
    backend:
        Nondeterministic mode only.  ``"process"`` executes the
        vectorized model across ``config.threads`` OS worker processes
        over shared memory
        (:class:`~repro.engine.nondet_parallel.ParallelEngine`) —
        bit-identical to ``vectorized=True`` at any worker count, but
        actually multi-core.  Unlike ``vectorized=True`` there is no
        silent fallback: an ineligible program/config raises, listing
        the reasons (the backend has nothing to fall back to that would
        honour the request for real parallelism).  Mutually exclusive
        with ``vectorized=``; ``None``/``""`` mean the default
        single-process engines.  Worker death raises
        :class:`~repro.robust.errors.WorkerDied`, which the supervised
        retry loop (``faults=``/``policy=`` etc.) recovers like any
        other worker timeout.
    direction:
        Nondeterministic mode only: the direction-optimizing execution
        strategy of the vectorized fast path and the process backend.
        ``"pull"`` (default) runs the dense whole-graph masks;
        ``"push"`` runs every iteration sparsely over the frontier's
        touched edges (out-edges ∪ in-edges of the active set), which
        requires the program's kernel to declare atomic-combine scatter
        semantics (``push_combines``) that pass the §IV push-eligibility
        check — otherwise the run raises, listing the reasons;
        ``"auto"`` picks per iteration with the Beamer-style heuristic
        (``config.direction_alpha`` / ``direction_beta``), silently
        pinning pull for push-ineligible programs.  Every direction
        executes the *same* racy iteration — final state, trajectory,
        conflict totals, and recorder provenance are bit-identical per
        (mode, seed) — so direction is purely a performance knob; the
        decision is a pure function of (frontier, graph, config).
        Direction is a fast-path concept: requesting ``"push"`` or
        ``"auto"`` without ``backend="process"`` implies
        ``vectorized="require"`` (the interpreting object engine has no
        dense/sparse distinction).  Not yet composable with the
        fault-tolerance kwargs or out-of-core ShardStore graphs.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` sink.  Every engine
        (including the real-thread backend and the vectorized fast path)
        records one span per iteration — per-thread work profile,
        conflict classes, frontier size, wall time — plus run metadata;
        when the vectorized dispatch falls back, the reasons are
        recorded as a ``vectorized_fallback`` event.  ``None`` (the
        default) costs one pointer check per iteration.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  Nondeterministic
        mode only.  Every nondeterministic engine (object, vectorized,
        process backend, out-of-core) records per-iteration phase
        timers, conflict/update counters, and iteration-latency
        histograms into it — standing totals that accumulate *across*
        runs and merge across processes, complementing the per-run
        ``telemetry=`` spans.  When both sinks are given, a
        ``{"type": "metrics"}`` snapshot record is appended to the
        telemetry stream just before ``run_end``.  ``None`` (the
        default) costs one pointer check per iteration.  Does not
        compose with the fault-tolerance kwargs yet.
    record:
        Optional flight recorder capturing event-level race provenance:
        every contended edge access becomes a provenance event —
        ``(iteration, edge, writer, committer, Def. 1–3 order,
        Lemma-1/2 rule, value committed, values lost)``.  Accepts a
        :class:`~repro.obs.Recorder` instance, a path (``str`` /
        ``os.PathLike``) to stream JSONL provenance to, or ``True`` for
        an in-memory recorder with the default conflicts-only policy.
        ``None`` (the default) costs one pointer check per commit
        barrier, matching the ``telemetry=`` contract.
    supervisor:
        A pre-built :class:`~repro.robust.Supervisor` hook object, for
        callers driving the fault-tolerance layer manually.  ``None``
        (the default) costs one pointer check per iteration.  Mutually
        exclusive with the convenience kwargs below, which build one.
    faults:
        Fault-injection plan: a :class:`~repro.robust.FaultPlan`, a list
        of :class:`~repro.robust.Fault`, or a spec string such as
        ``"crash@3;torn@5"`` (see :meth:`FaultPlan.from_spec`).
    watchdog:
        A :class:`~repro.robust.ConvergenceWatchdog` monitoring every
        iteration barrier for stalls, Theorem-2 oscillation, and
        deadline breaches.
    policy:
        A :class:`~repro.robust.DegradationPolicy` controlling how
        crashes and watchdog alarms are recovered (restart budget,
        backoff, atomicity escalation, deterministic fallback engine).
    checkpoint / checkpoint_every:
        Path to write a barrier checkpoint to every ``checkpoint_every``
        iterations (atomically, last one wins).
    resume_from:
        Path of a checkpoint to restart from; the run continues
        bit-identically to the uninterrupted execution.  When no
        explicit ``config`` is given the checkpointed one is adopted.
    deadline_s:
        Wall-clock budget for the run; breaches raise through the
        degradation policy.
    interrupt:
        Zero-argument callable polled at every iteration barrier, after
        that barrier's checkpoint and restart token are taken.  A truthy
        return value (the reason string) stops the run by raising
        :class:`~repro.robust.RunInterrupted` — the cooperative stop the
        always-on service uses for graceful drain and job cancellation:
        because the raise happens after the checkpoint, resuming from it
        continues bit-identically.  Routes the run through the
        supervised loop like the other fault-tolerance kwargs.

    Passing any of ``faults``/``watchdog``/``policy``/``checkpoint``/
    ``resume_from``/``deadline_s`` routes the run through
    :func:`repro.robust.supervised_run` (the retry loop); a bare
    ``supervisor=`` only installs the hooks without retry semantics.

    Examples
    --------
    >>> from repro.graph import generators
    >>> from repro.algorithms import WeaklyConnectedComponents
    >>> g = generators.path_graph(8)
    >>> res = run(WeaklyConnectedComponents(), g, mode="nondeterministic",
    ...           threads=4, seed=1)
    >>> res.converged
    True
    """
    # Normalize vectorized= once, up front: booleans pass through, the
    # empty string is a falsy pass-through equivalent to False (and so
    # must be valid for every mode), and the only meaningful string is
    # "require".  Everything downstream sees only False/True/"require".
    if isinstance(vectorized, str):
        if vectorized == "":
            vectorized = False
        elif vectorized != "require":
            raise ValueError(
                f"vectorized={vectorized!r} not understood: use True, False or 'require'"
            )
    # Normalize backend= the same way: None/"" mean in-process engines.
    if backend == "":
        backend = None
    if backend is not None:
        if backend != "process":
            raise ValueError(
                f"backend={backend!r} not understood: use 'process' or None"
            )
        if mode != "nondeterministic":
            raise ValueError(
                "backend='process' applies to mode='nondeterministic' only"
            )
        if vectorized:
            raise ValueError(
                "pass either backend='process' or vectorized=, not both "
                "(the process backend runs the vectorized kernels already)"
            )
    # Normalize record= the same way: None passes through untouched, a
    # Recorder instance is used as-is, True means "in-memory recorder with
    # defaults", and a path means "stream JSONL provenance there".
    if record is not None and not hasattr(record, "begin_engine_run"):
        from ..obs import Recorder

        if record is True:
            record = Recorder()
        elif isinstance(record, (str, bytes)) or hasattr(record, "__fspath__"):
            record = Recorder(trace_path=record)
        else:
            raise ValueError(
                f"record={record!r} not understood: use a Recorder, a trace "
                "path, or True"
            )
    if direction not in ("pull", "push", "auto"):
        raise ValueError(
            f"direction={direction!r} not understood: use 'pull', 'push' or 'auto'"
        )
    if metrics is not None and mode not in ("nondeterministic", "delta"):
        raise ValueError(
            "metrics= applies to mode='nondeterministic' or 'delta' only")
    if direction != "pull" and mode not in ("nondeterministic", "delta"):
        raise ValueError(
            "direction= applies to mode='nondeterministic' or 'delta' only")
    if mode != "delta":
        if mutations is not None:
            raise ValueError("mutations= applies to mode='delta' only "
                             "(the incremental engine repairs the standing "
                             "result; other modes recompute)")
        if delta_threshold is not None or delta_scheduling != "frontier":
            raise ValueError(
                "delta_threshold=/delta_scheduling= apply to mode='delta' only")
    if direction != "pull" and mode != "delta" and backend is None and not vectorized:
        # Direction is a fast-path concept — the interpreting object
        # engine has no dense/sparse distinction, so a non-default
        # direction must not silently run it.
        vectorized = "require"
    if config is not None and config_kwargs:
        raise ValueError("pass either config= or individual config kwargs, not both")
    # Up-front validation: catch bad run bounds before any engine (or a
    # long supervised retry loop) starts working with them.
    if "max_iterations" in config_kwargs:
        _require_positive("max_iterations", config_kwargs["max_iterations"],
                          integer=True)
    elif config is not None:
        _require_positive("max_iterations", config.max_iterations, integer=True)
    if deadline_s is not None:
        _require_positive("deadline_s", deadline_s)
    robust = any(
        x is not None
        for x in (faults, watchdog, policy, checkpoint, resume_from,
                  deadline_s, interrupt)
    )
    if robust or checkpoint_every != 1:
        _require_positive("checkpoint_every", checkpoint_every, integer=True)
    explicit_config = config is not None or bool(config_kwargs)
    if config is None:
        config = EngineConfig(**config_kwargs)
    if mode == "delta":
        # The delta-accumulative engine: its own execution model, its
        # own (vectorized) loop — the fast-path/backend switches do not
        # apply, and of the robustness kwargs only the cooperative
        # interrupt= composes (no barrier checkpoints yet: a killed
        # delta job re-runs from scratch).
        if vectorized:
            raise ValueError(
                "vectorized= does not apply to mode='delta' (the delta "
                "engine is already array-based)")
        if backend is not None:
            raise ValueError(
                "backend= does not apply to mode='delta' (single-process "
                "engine; parallelism comes from the array model)")
        if observer is not None:
            raise ValueError("mode='delta' does not support observers; "
                             "use telemetry=")
        if state is not None:
            raise ValueError("mode='delta' builds its own (x, Δ, accum) "
                             "state; state= is not supported")
        if direction == "auto":
            raise ValueError(
                "mode='delta' supports direction='pull' or 'push' only "
                "(no per-iteration heuristic for delta dispatch yet)")
        if supervisor is not None or any(
                x is not None for x in (faults, watchdog, policy,
                                        checkpoint, resume_from, deadline_s)):
            raise ValueError(
                "mode='delta' does not compose with the fault-tolerance "
                "kwargs yet (interrupt= is supported)")
        from .nondet_delta import run_delta

        return run_delta(
            program, graph, config, telemetry=telemetry, record=record,
            metrics=metrics, direction=direction,
            scheduling=delta_scheduling, threshold=delta_threshold,
            mutations=mutations, interrupt=interrupt,
        )
    if robust:
        if direction != "pull":
            raise ValueError(
                "direction= does not compose with the fault-tolerance "
                "kwargs yet; run with direction='pull' (the default)"
            )
        if metrics is not None:
            raise ValueError(
                "metrics= does not compose with the fault-tolerance "
                "kwargs yet; attach a Telemetry sink instead"
            )
        if supervisor is not None:
            raise ValueError(
                "pass either supervisor= or the fault-tolerance kwargs "
                "(faults=/watchdog=/policy=/checkpoint=/resume_from=/"
                "deadline_s=), not both"
            )
        # Imported lazily: the robust layer pulls in the storage package.
        from ..robust.supervisor import supervised_run

        return supervised_run(
            program, graph, mode=mode,
            # With no explicit config, let resume adopt the checkpointed
            # one instead of silently overriding it with defaults.
            config=config if explicit_config else None,
            state=state, observer=observer, vectorized=vectorized,
            backend=backend, telemetry=telemetry, record=record,
            faults=faults, watchdog=watchdog, policy=policy,
            checkpoint=checkpoint, checkpoint_every=checkpoint_every,
            resume_from=resume_from, deadline_s=deadline_s,
            interrupt=interrupt,
        )
    # Out-of-core dispatch: a ShardStore stands in for the graph and
    # routes the run through its interval-sliced runner (always the
    # vectorized execution model; backend="process" fans the intervals
    # out to its worker pool).
    from ..storage.shards import ShardStore  # lazy: pulls the container

    if isinstance(graph, ShardStore):
        if mode != "nondeterministic":
            raise ValueError(
                "out-of-core execution (a ShardStore graph) supports "
                "mode='nondeterministic' only"
            )
        if direction != "pull":
            raise ValueError(
                "out-of-core execution (a ShardStore graph) supports "
                "direction='pull' only: its interval slicing is already "
                "the sparse decomposition"
            )
        return graph.nondet_runner().run(
            program, config, state=state, observer=observer,
            telemetry=telemetry, record=record, supervisor=supervisor,
            backend=backend, metrics=metrics,
        )
    try:
        engine_cls = ENGINES[mode]
    except KeyError:
        raise ValueError(f"unknown mode {mode!r}; choose from {sorted(ENGINES)}") from None
    if backend == "process":
        # Imported lazily: the backend pulls in multiprocessing + shm.
        from .nondet_parallel import ParallelEngine

        return ParallelEngine().run(
            program, graph, config, state=state, observer=observer,
            telemetry=telemetry, record=record, supervisor=supervisor,
            direction=direction, metrics=metrics,
        )
    if vectorized:
        if mode != "nondeterministic":
            raise ValueError(
                "vectorized= applies to mode='nondeterministic' only "
                "(use run_vectorized for the BSP fast path)"
            )
        # Imported lazily: the fast path pulls in the kernel registry.
        from .nondet_vectorized import VectorizedNondetEngine, fallback_reasons

        reasons = fallback_reasons(program, config)
        if not reasons:
            return VectorizedNondetEngine().run(
                program, graph, config, state=state, observer=observer,
                telemetry=telemetry, record=record, supervisor=supervisor,
                direction=direction, metrics=metrics,
            )
        if vectorized == "require":
            raise ValueError(
                "vectorized='require' but the fast path is not eligible: "
                + "; ".join(reasons)
            )
        if telemetry is not None:
            telemetry.event("vectorized_fallback", reasons=reasons)
    if mode == "threads":
        if observer is not None:
            raise ValueError("the real-thread backend does not support observers")
        return engine_cls().run(program, graph, config, state=state,
                                telemetry=telemetry, record=record,
                                supervisor=supervisor)
    # metrics= reaches only the nondeterministic object engine here (the
    # mode check above rejects it elsewhere); other engines don't take
    # the kwarg, so pass it conditionally.
    extra_kw = {"metrics": metrics} if metrics is not None else {}
    return engine_cls().run(program, graph, config, state=state, observer=observer,
                            telemetry=telemetry, record=record,
                            supervisor=supervisor, **extra_kw)
