"""Computation state: the paper's per-vertex data ``D_v`` and per-edge data ``D_(u->v)``.

A :class:`FieldSpec` declares one named array of values (dtype + initial
value); a :class:`State` bundles the vertex-field and edge-field arrays
for one run.  Vertex data is private to its owning update function (the
paper's scope rule), so it is stored as plain arrays mutated in place.
Edge data is the shared, contended resource — the engines mediate every
edge access through their own visibility machinery, and use
:meth:`State.snapshot_edges` / :meth:`State.commit_edges` at iteration
barriers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..graph import DiGraph

__all__ = ["FieldSpec", "State", "INF"]

#: Sentinel "infinite" value the paper uses for unreached labels/distances.
INF = np.inf

Initializer = float | int | Callable[[DiGraph], np.ndarray]


@dataclass(frozen=True)
class FieldSpec:
    """Declaration of one named value array.

    Parameters
    ----------
    dtype:
        NumPy dtype of the array.
    init:
        Either a scalar broadcast to every element, or a callable
        ``f(graph) -> ndarray`` producing the initial array (used e.g. by
        SSSP's random edge weights and PageRank's ``1/out_degree`` edge
        values).
    """

    dtype: np.dtype | type | str
    init: Initializer = 0.0

    def materialize(self, graph: DiGraph, size: int) -> np.ndarray:
        """Produce the initial array of ``size`` elements."""
        if callable(self.init):
            arr = np.asarray(self.init(graph), dtype=self.dtype)
            if arr.shape != (size,):
                raise ValueError(
                    f"field initializer returned shape {arr.shape}, expected ({size},)"
                )
            return arr.copy()
        return np.full(size, self.init, dtype=self.dtype)


class State:
    """Vertex and edge value arrays for one execution.

    Access vertex arrays via :meth:`vertex` and edge arrays via
    :meth:`edge`.  The engines — not user programs — are the only code
    that should touch edge arrays directly; programs go through their
    :class:`~repro.engine.program.UpdateContext`.
    """

    def __init__(
        self,
        graph: DiGraph,
        vertex_fields: Mapping[str, FieldSpec],
        edge_fields: Mapping[str, FieldSpec],
    ):
        self._graph = graph
        self._vertex: dict[str, np.ndarray] = {
            name: spec.materialize(graph, graph.num_vertices)
            for name, spec in vertex_fields.items()
        }
        self._edge: dict[str, np.ndarray] = {
            name: spec.materialize(graph, graph.num_edges)
            for name, spec in edge_fields.items()
        }

    @property
    def graph(self) -> DiGraph:
        return self._graph

    @property
    def vertex_field_names(self) -> tuple[str, ...]:
        return tuple(self._vertex)

    @property
    def edge_field_names(self) -> tuple[str, ...]:
        return tuple(self._edge)

    def vertex(self, field: str) -> np.ndarray:
        """The full per-vertex array for ``field`` (mutable view)."""
        try:
            return self._vertex[field]
        except KeyError:
            raise KeyError(
                f"unknown vertex field {field!r}; have {list(self._vertex)}"
            ) from None

    def edge(self, field: str) -> np.ndarray:
        """The full per-edge array for ``field`` (mutable view)."""
        try:
            return self._edge[field]
        except KeyError:
            raise KeyError(f"unknown edge field {field!r}; have {list(self._edge)}") from None

    # ------------------------------------------------------------------
    # Barrier support
    # ------------------------------------------------------------------
    def snapshot_edges(self) -> dict[str, np.ndarray]:
        """Copy of all edge arrays — the values committed at the last barrier."""
        return {name: arr.copy() for name, arr in self._edge.items()}

    def commit_edges(self, updates: Mapping[str, Mapping[int, float]]) -> None:
        """Apply ``{field: {eid: value}}`` to the edge arrays (barrier commit)."""
        for field, writes in updates.items():
            arr = self.edge(field)
            for eid, value in writes.items():
                arr[eid] = value

    def copy(self) -> "State":
        """Deep copy (same graph, copied arrays)."""
        clone = State.__new__(State)
        clone._graph = self._graph
        clone._vertex = {k: v.copy() for k, v in self._vertex.items()}
        clone._edge = {k: v.copy() for k, v in self._edge.items()}
        return clone
