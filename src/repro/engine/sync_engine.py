"""Synchronous (Bulk Synchronous Parallel) execution (§I, §II).

Under the BSP model the effectiveness of all updates is postponed to the
next iteration: every read during iteration ``n`` observes the values
committed at the end of iteration ``n-1``, and all writes commit at the
barrier.  This exempts the updates of one iteration from any data
dependences among themselves — which is why Theorem 1 takes "converges
with synchronous model execution" as its premise.

Two updates may still write the same edge in one iteration (e.g. WCC on
edge ``(v, u)`` written by both endpoints); the commit applies writes in
ascending writer-label order, so the largest label deterministically
wins.  That choice is arbitrary but fixed, keeping BSP runs
bit-reproducible.
"""

from __future__ import annotations

import time

import numpy as np

from ..graph import DiGraph
from .config import EngineConfig
from .dispatch import make_plan
from .frontier import Frontier, initial_frontier
from .program import UpdateContext, VertexProgram
from .result import IterationStats, RunResult
from .state import State

__all__ = ["SynchronousEngine"]


class _SnapshotStore:
    """Reads from the pre-iteration snapshot; buffers writes for the barrier."""

    __slots__ = ("_snapshot", "pending", "writers")

    def __init__(self, snapshot: dict[str, np.ndarray], *, log_writers: bool = False):
        self._snapshot = snapshot
        # field -> eid -> (writer_vid, value); later (higher-label) writers
        # overwrite earlier ones because updates run in ascending order.
        self.pending: dict[str, dict[int, float]] = {f: {} for f in snapshot}
        # With a recorder attached: field -> eid -> [(vid, value), ...] in
        # execution (ascending-label) order, so the barrier can attribute
        # the surviving write and the overwritten ones.
        self.writers: dict[str, dict[int, list]] | None = (
            {f: {} for f in snapshot} if log_writers else None
        )

    def read(self, vid: int, eid: int, field: str) -> float:
        return self._snapshot[field][eid]

    def write(self, vid: int, eid: int, field: str, value: float) -> None:
        self.pending[field][eid] = value
        if self.writers is not None:
            self.writers[field].setdefault(eid, []).append((vid, float(value)))


class SynchronousEngine:
    """BSP executor: barrier-deferred writes, snapshot reads."""

    mode = "sync"

    def run(
        self,
        program: VertexProgram,
        graph: DiGraph,
        config: EngineConfig | None = None,
        *,
        state: State | None = None,
        observer=None,
        telemetry=None,
        record=None,
        supervisor=None,
    ) -> RunResult:
        config = config or EngineConfig()
        sink = telemetry
        if sink is not None:
            sink.begin_engine_run(self.mode, program, config)
        if record is not None:
            record.begin_engine_run(self.mode, program, config)
        state = state if state is not None else program.make_state(graph)
        frontier = initial_frontier(program, graph)
        fp_rng = (
            np.random.default_rng(np.random.SeedSequence([config.seed, 1]))
            if config.fp_noise
            else None
        )

        stats: list[IterationStats] = []
        iteration = 0
        if supervisor is not None:
            iteration, frontier = supervisor.engine_start(
                self.mode, program, config, state=state, frontier=frontier,
                rngs={"fp": fp_rng} if fp_rng is not None else {},
            )
        converged = False
        while iteration < config.max_iterations:
            if not frontier:
                converged = True
                break
            if supervisor is not None:
                supervisor.pre_iteration(iteration)
            t0 = time.perf_counter() if sink is not None else 0.0
            active = frontier.sorted_vertices()
            # Dispatch is used only for work accounting: BSP has no
            # intra-iteration dependences, so placement can't change values.
            plan = make_plan(active, config.threads, policy=config.dispatch)
            store = _SnapshotStore(
                state.snapshot_edges(), log_writers=record is not None
            )
            next_schedule: set[int] = set()
            p = config.threads
            upd = [0] * p
            reads = [0] * p
            writes = [0] * p
            for vid in active.tolist():
                ctx = UpdateContext(
                    vid, graph, state, store, next_schedule, gather_rng=fp_rng,
                    strict_scope=config.validate_scope,
                )
                program.update(ctx)
                t = plan.slots[vid].thread
                upd[t] += 1
                reads[t] += ctx.n_edge_reads
                writes[t] += ctx.n_edge_writes
            if record is not None:
                # BSP provenance: no write is visible within the iteration
                # (every pair is Defs. 1–3 concurrent); the commit applies
                # writes in ascending-label order, so the last logged
                # writer's value survives deterministically.
                for field in sorted(store.writers):
                    per_edge = store.writers[field]
                    for eid in sorted(per_edge):
                        wlist = per_edge[eid]
                        win_vid, win_val = wlist[-1]
                        eff: dict[int, float] = {}
                        for vid_w, val_w in wlist:
                            eff[vid_w] = val_w
                        lost = [
                            {
                                "vid": vid_w,
                                "thread": plan.slots[vid_w].thread,
                                "value": eff[vid_w],
                                "order": "concurrent",
                            }
                            for vid_w in sorted(eff)
                            if vid_w != win_vid
                        ]
                        record.commit_event(
                            iteration=iteration,
                            field=field,
                            eid=eid,
                            writer=win_vid,
                            writer_thread=plan.slots[win_vid].thread,
                            value=win_val,
                            lost=lost,
                            rule="bsp-label-order" if len(eff) > 1 else "uncontended",
                        )
            state.commit_edges(store.pending)
            if supervisor is not None:
                next_schedule = supervisor.post_iteration(
                    iteration, state=state, schedule=next_schedule)
            stats.append(
                IterationStats(
                    iteration=iteration,
                    num_active=int(active.size),
                    updates_per_thread=upd,
                    reads_per_thread=reads,
                    writes_per_thread=writes,
                )
            )
            if sink is not None:
                sink.iteration(
                    iteration=iteration,
                    num_active=int(active.size),
                    updates_per_thread=upd,
                    reads_per_thread=reads,
                    writes_per_thread=writes,
                    frontier_size=len(next_schedule),
                    wall_time_s=time.perf_counter() - t0,
                )
            if observer is not None:
                observer(iteration, state, next_schedule)
            frontier = Frontier(next_schedule)
            iteration += 1
        # At-cap accounting: converged stays False unless the confirming
        # empty-frontier check at the top of an iteration ran (see
        # tests/test_convergence_conformance.py).

        result = RunResult(
            program=program,
            state=state,
            mode=self.mode,
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            config=config,
        )
        if record is not None:
            record.end_run(result)
        if sink is not None:
            sink.end_run(result)
        return result
