"""Best-effort *real*-thread nondeterministic backend.

This backend exists for API parity and as a live demonstration that the
paper's claims survive genuine OS-scheduled interleaving: it runs each
iteration's updates on ``P`` ``threading.Thread`` workers sharing the
state arrays in place, with a barrier between iterations.

Two honest caveats, both documented in DESIGN.md:

* **CPython's GIL serializes bytecode**, so individual NumPy scalar
  loads/stores are naturally atomic — which happens to be precisely the
  paper's §III minimal guarantee ("architecture support" for free), but
  it also means no wall-clock speedup is obtainable here; performance
  claims are the job of the simulated engine plus the cost model.
* The interleaving is real and therefore **unobservable**: this backend
  cannot populate the conflict log (watching the race would change it).
  With ``atomicity=LOCK`` it takes a real per-edge lock around each
  access, mimicking the paper's explicit locking method.

Failure semantics: an exception raised by ``program.update`` inside a
worker is captured per thread and re-raised in the caller after the
iteration barrier (all surviving workers finish their chunk first, so
no thread is abandoned mid-write).  The lowest-numbered failing
worker's exception is re-raised with its original type and traceback;
further same-iteration failures are attached as exception notes.
Because the iteration's writes are in-place and shared, the state is
left partially updated — the run is **not** transactional.

Runs are *not* reproducible from the seed — that is the point.
"""

from __future__ import annotations

import threading
import time

from ..graph import DiGraph
from ..robust.errors import WorkerTimeout
from .atomicity import AtomicityPolicy
from .config import EngineConfig
from .dispatch import make_plan
from .frontier import Frontier, initial_frontier
from .program import UpdateContext, VertexProgram
from .result import IterationStats, RunResult
from .state import State

__all__ = ["ThreadsEngine"]


class _SharedStore:
    """Direct in-place store shared by racing threads.

    With a recorder attached (write-recording policies only), each write
    is emitted as it lands, tagged ``order="unobserved"`` — classifying a
    real race would require watching it, which would change it.  The
    worker's thread id comes from a ``threading.local`` set by the
    worker itself; the recorder serializes emission internally.
    """

    __slots__ = ("_edges", "_locks", "_guard", "recorder", "iteration", "_tls")

    def __init__(self, state: State, use_locks: bool):
        self._edges = {name: state.edge(name) for name in state.edge_field_names}
        # One lock per edge, created lazily under a guard lock, only in
        # LOCK mode.  (A dict of locks, not a list: most edges are never
        # contended.)
        self._locks: dict[int, threading.Lock] | None = {} if use_locks else None
        self._guard = threading.Lock() if use_locks else None
        self.recorder = None
        self.iteration = 0
        self._tls = threading.local()

    def _lock_for(self, eid: int) -> threading.Lock:
        # The whole lookup happens under the guard: a bare dict read
        # concurrent with another thread's first-touch insert is only
        # safe by CPython GIL accident, and LOCK mode exists precisely
        # to be correct by construction.  First-touch and steady-state
        # reads take the same short critical section.
        with self._guard:
            locks = self._locks
            lock = locks.get(eid)
            if lock is None:
                lock = locks[eid] = threading.Lock()
            return lock

    def read(self, vid: int, eid: int, field: str) -> float:
        if self._locks is not None:
            with self._lock_for(eid):
                return float(self._edges[field][eid])
        return float(self._edges[field][eid])

    def write(self, vid: int, eid: int, field: str, value: float) -> None:
        if self._locks is not None:
            with self._lock_for(eid):
                self._edges[field][eid] = value
        else:
            self._edges[field][eid] = value
        if self.recorder is not None:
            self.recorder.write_event(
                iteration=self.iteration,
                field=field,
                eid=eid,
                writer=vid,
                writer_thread=getattr(self._tls, "tid", -1),
                value=float(value),
                rule="threads",
                order="unobserved",
            )

    def set_worker(self, tid: int) -> None:
        self._tls.tid = tid


class ThreadsEngine:
    """Real ``threading``-based nondeterministic executor (demo backend)."""

    mode = "threads"

    def run(
        self,
        program: VertexProgram,
        graph: DiGraph,
        config: EngineConfig | None = None,
        *,
        state: State | None = None,
        telemetry=None,
        record=None,
        supervisor=None,
    ) -> RunResult:
        config = config or EngineConfig()
        sink = telemetry
        if config.atomicity is AtomicityPolicy.NONE:
            raise ValueError(
                "the real-thread backend cannot forgo atomicity: the GIL "
                "always provides it; use NondeterministicEngine for the "
                "torn-value ablation"
            )
        if sink is not None:
            sink.begin_engine_run(self.mode, program, config)
        if record is not None:
            record.begin_engine_run(self.mode, program, config)
        state = state if state is not None else program.make_state(graph)
        store = _SharedStore(state, use_locks=config.atomicity is AtomicityPolicy.LOCK)
        recording = record is not None and record.records_writes
        if recording:
            store.recorder = record
        frontier = initial_frontier(program, graph)

        stats: list[IterationStats] = []
        iteration = 0
        if supervisor is not None:
            iteration, frontier = supervisor.engine_start(
                self.mode, program, config, state=state, frontier=frontier,
                rngs={},
            )
        converged = False
        p = config.threads
        while iteration < config.max_iterations:
            if not frontier:
                converged = True
                break
            if supervisor is not None:
                supervisor.pre_iteration(iteration)
            t0 = time.perf_counter() if sink is not None else 0.0
            if recording:
                store.iteration = iteration
            active = frontier.sorted_vertices()
            plan = make_plan(active, p, policy=config.dispatch)
            next_schedule: set[int] = set()
            sched_lock = threading.Lock()
            upd = [0] * p
            reads = [0] * p
            writes = [0] * p
            errors: list[BaseException | None] = [None] * p

            def worker(tid: int) -> None:
                # Any exception is captured, not swallowed: a bare raise
                # would kill only this thread, join() would still
                # succeed, and the run would report converged results
                # with zeroed work counters for the dead thread.
                try:
                    store.set_worker(tid)
                    if supervisor is not None:
                        supervisor.in_worker(iteration, tid)
                    local_sched: set[int] = set()
                    r = w = 0
                    for vid in plan.per_thread[tid]:
                        ctx = UpdateContext(vid, graph, state, store, local_sched,
                                            strict_scope=config.validate_scope)
                        program.update(ctx)
                        r += ctx.n_edge_reads
                        w += ctx.n_edge_writes
                    with sched_lock:
                        next_schedule.update(local_sched)
                    upd[tid] = len(plan.per_thread[tid])
                    reads[tid] = r
                    writes[tid] = w
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors[tid] = exc

            threads = [
                threading.Thread(target=worker, args=(t,), daemon=True)
                for t in range(p)
            ]
            for th in threads:
                th.start()
            timeout = config.worker_timeout_s
            if timeout is None:
                for th in threads:  # the iteration barrier
                    th.join()
            else:
                # One shared deadline for the whole barrier: a wedged
                # worker makes the run fail loudly with a diagnostic
                # event instead of hanging the process forever.
                deadline = time.monotonic() + timeout
                for th in threads:  # the iteration barrier
                    th.join(max(0.0, deadline - time.monotonic()))
                stuck = [t for t, th in enumerate(threads) if th.is_alive()]
                if stuck:
                    if sink is not None:
                        sink.event(
                            "stuck_worker",
                            iteration=iteration,
                            threads=stuck,
                            timeout_s=timeout,
                        )
                        sink.close()
                    if record is not None:
                        record.event(
                            "stuck_worker",
                            iteration=iteration,
                            threads=stuck,
                            timeout_s=timeout,
                        )
                        record.close()
                    raise WorkerTimeout(
                        f"worker thread(s) {stuck} failed to reach the "
                        f"iteration barrier within {timeout:g}s at iteration "
                        f"{iteration}",
                        iteration=iteration,
                        stuck=stuck,
                    )

            failed = [t for t, e in enumerate(errors) if e is not None]
            if failed:
                first = errors[failed[0]]
                if sink is not None:
                    sink.event(
                        "worker_failure",
                        iteration=iteration,
                        threads=failed,
                        error=repr(first),
                    )
                    sink.close()
                if record is not None:
                    record.event(
                        "worker_failure",
                        iteration=iteration,
                        threads=failed,
                        error=repr(first),
                    )
                    record.close()
                if len(failed) > 1 and hasattr(first, "add_note"):
                    first.add_note(
                        f"{len(failed) - 1} other worker thread(s) of iteration "
                        f"{iteration} also failed: {failed[1:]}"
                    )
                raise first

            if supervisor is not None:
                next_schedule = supervisor.post_iteration(
                    iteration, state=state, schedule=next_schedule)
            stats.append(
                IterationStats(
                    iteration=iteration,
                    num_active=int(active.size),
                    updates_per_thread=upd,
                    reads_per_thread=reads,
                    writes_per_thread=writes,
                )
            )
            if sink is not None:
                # Real races are unobservable (watching them would change
                # them): the conflict classes are honestly absent, not 0.
                sink.iteration(
                    iteration=iteration,
                    num_active=int(active.size),
                    updates_per_thread=upd,
                    reads_per_thread=reads,
                    writes_per_thread=writes,
                    frontier_size=len(next_schedule),
                    wall_time_s=time.perf_counter() - t0,
                    conflicts_observable=False,
                )
            frontier = Frontier(next_schedule)
            iteration += 1
        # At-cap accounting: converged stays False unless the confirming
        # empty-frontier check at the top of an iteration ran (see
        # tests/test_convergence_conformance.py).

        result = RunResult(
            program=program,
            state=state,
            mode=self.mode,
            converged=converged,
            num_iterations=iteration,
            iterations=stats,
            config=config,
        )
        if record is not None:
            record.end_run(result)
        if sink is not None:
            sink.end_run(result)
        return result
