"""Algorithm traits: the declared properties Theorems 1 and 2 reason over.

The paper's two sufficient conditions key off a handful of properties of
an algorithm's update function:

* which **conflicts** its nondeterministic execution can produce on edges
  (read–write only, or also write–write) — §III;
* whether it **converges under the synchronous (BSP) model** — the premise
  of Theorem 1;
* whether it **converges under a deterministic asynchronous schedule** —
  the premise of Theorem 2 (and of Theorem 1's stated extension);
* whether it satisfies the **monotonicity property** (computing results
  monotonically increase or decrease, but not both) — Theorem 2;
* whether its convergence condition is **absolute** (e.g. "label equals
  component minimum") or **approximate/relative** (e.g. PageRank's
  ``|f(D_v) − D_v| < ε``), which governs whether nondeterministic runs
  produce identical or merely close final results (§IV, §V-C).

Programs declare these traits; :mod:`repro.theory.eligibility` turns them
into an executable verdict, and :mod:`repro.theory.monotonic` can probe
the monotonicity claim empirically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ConflictProfile", "ConvergenceKind", "Monotonicity", "AlgorithmTraits"]


class ConflictProfile(enum.Enum):
    """Which edge conflicts a nondeterministic execution can raise (§III)."""

    NONE = "none"  #: update tasks never contend on shared edges
    READ_WRITE = "read-write"  #: reads race writes, but each edge has one writer
    WRITE_WRITE = "write-write"  #: multiple updates may write the same edge


class ConvergenceKind(enum.Enum):
    """How the algorithm expresses "done" (§IV discussion after Thm 1/2)."""

    ABSOLUTE = "absolute"  #: exact fixed point; results insensitive to schedule
    APPROXIMATE = "approximate"  #: relative/epsilon condition; results vary by run


class Monotonicity(enum.Enum):
    """Direction of the computing results over time (Theorem 2)."""

    NONE = "none"
    DECREASING = "decreasing"
    INCREASING = "increasing"

    @property
    def is_monotone(self) -> bool:
        return self is not Monotonicity.NONE


@dataclass(frozen=True)
class AlgorithmTraits:
    """Declared properties of a vertex program.

    These are *claims by the program author*; the theory package treats
    them as the hypotheses of the paper's theorems.

    Attributes
    ----------
    name:
        Human-readable algorithm name.
    conflict_profile:
        Worst-case conflicts the update function can produce on edges when
        executed nondeterministically in pull mode.
    converges_synchronously:
        True if the algorithm converges under the BSP model (Theorem 1's
        premise).
    converges_async_deterministic:
        True if the algorithm converges under a deterministic asynchronous
        (Gauss–Seidel) schedule (Theorem 2's premise, and the extension of
        Theorem 1 noted at the end of its proof).
    monotonicity:
        Monotone direction of intermediate results, if any (Theorem 2).
    convergence_kind:
        Absolute vs approximate convergence condition; decides whether the
        paper predicts identical or merely similar results across runs.
    family:
        Informal family label used in reports ("fixed-point iteration",
        "graph traversal", ...).
    """

    name: str
    conflict_profile: ConflictProfile
    converges_synchronously: bool
    converges_async_deterministic: bool
    monotonicity: Monotonicity = Monotonicity.NONE
    convergence_kind: ConvergenceKind = ConvergenceKind.ABSOLUTE
    family: str = ""

    @property
    def has_write_write(self) -> bool:
        return self.conflict_profile is ConflictProfile.WRITE_WRITE

    @property
    def is_monotone(self) -> bool:
        return self.monotonicity.is_monotone
