"""Vectorized BSP execution: the NumPy fast path.

The object engines execute one Python-level update at a time because
the paper's questions — visibility, conflicts, schedules — live at that
granularity.  The *synchronous* model has no intra-iteration
dependences, so its iterations are whole-graph array operations; this
module exploits that (per the scientific-Python performance guidance:
vectorize the hot loop) to run BSP iterations one to two orders of
magnitude faster, which makes scale-13+ stand-ins practical for
baseline and convergence studies.

A :class:`VectorizedProgram` expresses one BSP iteration as array math
over the whole graph: given the state arrays and the boolean active
mask, produce the next active mask, mutating the arrays in place
(writes are barrier-semantics by construction because each step reads
only the arrays it was handed).  :class:`VectorizedBSPEngine` loops
steps until the mask empties.

Equivalence: for the exact-arithmetic algorithms (WCC, BFS, SSSP) the
fixed point matches the object engines bit for bit, and the iteration
counts match the object BSP engine exactly — both are asserted in
``tests/test_vectorized.py``.  Float algorithms (PageRank) agree to
rounding (NumPy reduction order differs from the scalar gather loop).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..graph import DiGraph
from .state import FieldSpec, State

__all__ = ["VectorizedProgram", "VectorizedRunResult", "VectorizedBSPEngine", "run_vectorized"]


class VectorizedProgram(abc.ABC):
    """One whole-graph BSP iteration as array operations."""

    name: str = "vectorized-program"

    @abc.abstractmethod
    def vertex_fields(self) -> Mapping[str, FieldSpec]:
        ...

    @abc.abstractmethod
    def edge_fields(self) -> Mapping[str, FieldSpec]:
        ...

    def make_state(self, graph: DiGraph) -> State:
        return State(graph, self.vertex_fields(), self.edge_fields())

    def initial_mask(self, graph: DiGraph) -> np.ndarray:
        return np.ones(graph.num_vertices, dtype=bool)

    @abc.abstractmethod
    def step(self, graph: DiGraph, state: State, active: np.ndarray) -> np.ndarray:
        """Run one BSP iteration over the ``active`` vertices.

        Must implement barrier semantics itself: read the edge arrays
        before overwriting them (copy or compute first).  Returns the
        next active mask.
        """

    @abc.abstractmethod
    def result(self, state: State) -> np.ndarray:
        ...


@dataclass
class VectorizedRunResult:
    """Slimmer sibling of :class:`~repro.engine.result.RunResult`."""

    program: VectorizedProgram
    state: State
    converged: bool
    num_iterations: int
    active_per_iteration: list[int] = field(default_factory=list)

    def result(self) -> np.ndarray:
        return self.program.result(self.state)


class VectorizedBSPEngine:
    """Loop a vectorized program's steps to the fixed point."""

    mode = "vectorized-sync"

    def run(
        self,
        program: VectorizedProgram,
        graph: DiGraph,
        *,
        max_iterations: int = 100_000,
    ) -> VectorizedRunResult:
        state = program.make_state(graph)
        active = np.asarray(program.initial_mask(graph), dtype=bool)
        if active.shape != (graph.num_vertices,):
            raise ValueError("initial mask must have one entry per vertex")
        history: list[int] = []
        converged = False
        iteration = 0
        while iteration < max_iterations:
            count = int(np.count_nonzero(active))
            if count == 0:
                converged = True
                break
            history.append(count)
            active = np.asarray(program.step(graph, state, active), dtype=bool)
            iteration += 1
        return VectorizedRunResult(
            program=program,
            state=state,
            converged=converged,
            num_iterations=iteration,
            active_per_iteration=history,
        )


def run_vectorized(
    program: VectorizedProgram,
    graph: DiGraph,
    *,
    max_iterations: int = 100_000,
) -> VectorizedRunResult:
    """Convenience wrapper around :class:`VectorizedBSPEngine`."""
    return VectorizedBSPEngine().run(program, graph, max_iterations=max_iterations)
