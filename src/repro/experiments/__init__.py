"""Experiment drivers: one module per paper table/figure plus ablations.

See DESIGN.md §4 for the experiment index (T1, F3, T2, T3, A1–A3).
"""

from .ablations import AblationResult, run_delay_sweep, run_dispatch_study, run_torn_study
from .benchtrack import (
    append_trajectory,
    run_bench,
    run_nondet_suite,
    run_parallel_suite,
)
from .common import DEFAULT_SCALE, DEFAULT_SEED, PAPER_THREADS, format_table
from .figure3 import NE_POLICIES, Figure3Result, run_figure3, run_figure3_explain
from .report import generate_report
from .table1 import Table1Result, run_table1
from .table2 import PAPER_CONFIGS, PAPER_EPSILONS, VarianceResult, build_study, run_table2
from .table3 import run_table3

__all__ = [
    "AblationResult",
    "run_delay_sweep",
    "run_dispatch_study",
    "run_torn_study",
    "append_trajectory",
    "run_bench",
    "run_nondet_suite",
    "run_parallel_suite",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "PAPER_THREADS",
    "format_table",
    "NE_POLICIES",
    "Figure3Result",
    "run_figure3",
    "run_figure3_explain",
    "generate_report",
    "Table1Result",
    "run_table1",
    "PAPER_CONFIGS",
    "PAPER_EPSILONS",
    "VarianceResult",
    "build_study",
    "run_table2",
    "run_table3",
]
