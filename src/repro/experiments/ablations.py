"""Ablation experiments (DESIGN.md A1–A3).

These probe the design choices the paper fixes by assumption:

* **A1 — atomicity off** (§III's motivation): with
  ``AtomicityPolicy.NONE`` racing accesses observe/commit torn values.
  Traversal algorithms either corrupt their results or survive only by
  luck; the experiment quantifies both.
* **A2 — propagation delay sweep** (§II): larger ``d`` widens the
  concurrency window ``∥``, delaying intra-iteration result reuse and
  increasing the iterations to converge.
* **A3 — dispatch policy** (Fig. 1): block (OpenMP-static, the paper's
  choice) vs round-robin assignment changes which neighbours land in the
  same thread and therefore the conflict mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..algorithms import SSSP, WeaklyConnectedComponents, reference
from ..engine.atomicity import AtomicityPolicy
from ..engine.config import EngineConfig
from ..engine.dispatch import DispatchPolicy
from ..engine.runner import run
from ..graph import DiGraph, load_dataset
from .common import DEFAULT_SCALE, DEFAULT_SEED, format_table

__all__ = [
    "run_delay_sweep",
    "run_torn_study",
    "run_dispatch_study",
    "AblationResult",
]


@dataclass
class AblationResult:
    title: str
    rows: list[dict]

    def render(self) -> str:
        return format_table(self.rows, title=self.title)


def run_delay_sweep(
    *,
    graph: DiGraph | None = None,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    delays: Sequence[float] = (1, 4, 16, 64, 128),
    threads: int = 8,
    program_factory: Callable | None = None,
    seeds: Sequence[int] = (0, 1, 2),
) -> AblationResult:
    """A2: effect of the propagation delay ``d``.

    As ``d`` grows toward the per-thread block size, same-iteration
    cross-thread reuse vanishes and the execution degrades toward the
    synchronous model: stale reads rise and the iteration count climbs
    toward the BSP count.  Defaults to BFS, whose iteration count is a
    clean proxy for propagation speed.
    """
    from ..algorithms import BFS

    graph = graph if graph is not None else load_dataset("web-google-mini", scale=scale, seed=seed)
    factory = program_factory or (lambda: BFS(source=0))
    rows = []
    for d in delays:
        iters = []
        confl = []
        stale = []
        for s in seeds:
            res = run(
                factory(),
                graph,
                mode="nondeterministic",
                config=EngineConfig(threads=threads, delay=float(d), seed=s),
            )
            if not res.converged:
                raise RuntimeError(f"delay sweep run (d={d}, seed={s}) did not converge")
            iters.append(res.num_iterations)
            confl.append(res.conflicts.total)
            stale.append(res.conflicts.stale_reads)
        rows.append(
            {
                "delay d": d,
                "mean iterations": float(np.mean(iters)),
                "mean conflicts": float(np.mean(confl)),
                "mean stale reads": float(np.mean(stale)),
            }
        )
    return AblationResult("A2 — propagation delay sweep", rows)


def run_torn_study(
    *,
    graph: DiGraph | None = None,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    threads: int = 8,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    max_iterations: int = 2_000,
    torn_probability: float = 1.0,
) -> AblationResult:
    """A1: what goes wrong without the §III atomicity guarantee.

    Runs SSSP with torn-value injection and reports, per seed, how many
    final distances differ (bit-exactly) from the true shortest paths.
    SSSP is the sensitive victim here: its edge distances are
    full-mantissa floats, so mixing the 32-bit halves of two racing
    values yields a plausible-looking wrong distance that min-relaxation
    can never correct upward.  (WCC, by contrast, is accidentally
    torn-immune: its labels are small integers whose low mantissa bits
    are all zero, so every tear reproduces one of the two inputs — an
    instance of Boehm's observation that "benign" races are fragile
    luck, not safety.)
    """
    graph = graph if graph is not None else load_dataset("web-google-mini", scale=scale, seed=seed)
    prog0 = SSSP(source=0)
    truth = reference.sssp_reference(graph, 0, prog0.make_weights(graph))
    rows = []
    for s in seeds:
        res = run(
            SSSP(source=0),
            graph,
            mode="nondeterministic",
            config=EngineConfig(
                threads=threads,
                seed=s,
                atomicity=AtomicityPolicy.NONE,
                max_iterations=max_iterations,
                torn_probability=torn_probability,
            ),
        )
        values = res.result()
        wrong = int(np.sum(values != truth))
        rows.append(
            {
                "seed": s,
                "converged": res.converged,
                "iterations": res.num_iterations,
                "wrong distances": wrong,
                "corrupted": (wrong > 0) or (not res.converged),
            }
        )
    return AblationResult("A1 — SSSP without atomicity (torn values)", rows)


def run_dispatch_study(
    *,
    graph: DiGraph | None = None,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    threads: int = 8,
    seeds: Sequence[int] = (0, 1, 2),
) -> AblationResult:
    """A3: block vs round-robin dispatch, measured on WCC and SSSP."""
    graph = graph if graph is not None else load_dataset("web-google-mini", scale=scale, seed=seed)
    rows = []
    for name, factory in (("WCC", WeaklyConnectedComponents), ("SSSP", lambda: SSSP(source=0))):
        for policy in (DispatchPolicy.BLOCK, DispatchPolicy.ROUND_ROBIN):
            iters = []
            confl = []
            for s in seeds:
                res = run(
                    factory(),
                    graph,
                    mode="nondeterministic",
                    config=EngineConfig(threads=threads, seed=s, dispatch=policy),
                )
                if not res.converged:
                    raise RuntimeError(f"dispatch study run did not converge ({name}, {policy})")
                iters.append(res.num_iterations)
                confl.append(res.conflicts.total)
            rows.append(
                {
                    "algorithm": name,
                    "dispatch": policy.value,
                    "mean iterations": float(np.mean(iters)),
                    "mean conflicts": float(np.mean(confl)),
                }
            )
    return AblationResult("A3 — dispatch policy", rows)
