"""Benchmark suites with an append-only perf trajectory.

``BENCH_*.json`` files at the repo root record how fast the engines are
*over time*: every invocation of :func:`run_bench` (or ``repro bench``)
appends one timestamped entry per suite instead of overwriting the
file, so perf history accumulates across PRs and regressions show up as
a bend in the trajectory, not as silently replaced numbers.

Trajectory format (``bench-trajectory/v2``)::

    {"schema": "bench-trajectory/v2",
     "entries": [
        {"timestamp": "...", "suite": "parallel",
         "host": {"cpus": 1, ...}, "results": {...}},
        ...]}

v2 is a **backfill-safe** widening of v1: each timed cell additionally
carries a ``"phases"`` breakdown (seconds per
:data:`~repro.obs.metrics.PHASES` phase, summed over the run's
iterations).  Old v1 entries without ``phases`` still parse — readers
treat the key as optional — but *appending* a v2 entry to a v1 file
would leave one file claiming one schema while holding cells of both
shapes, so :func:`append_trajectory` refuses mixed-schema appends
unless ``allow_schema_skew=True`` explicitly opts in (the file is then
upgraded in place: old entries are kept verbatim and the header says
v2).

A legacy single-snapshot file (the pre-trajectory ``BENCH_nondet.json``
format) is adopted on first append: the old payload becomes entry 0,
flagged ``"legacy": true``.

Two canonical suites:

* ``nondet`` — object engine vs the single-process vectorized fast
  path (the PR-1 speedup, kept honest over time);
* ``parallel`` — single-process vectorized vs the shared-memory process
  backend at 1/2/4/8 workers.  ``config.threads`` *is* the worker
  count, and changing it changes the racy schedule itself — so every
  cell compares the two execution strategies **under the same model
  configuration** (same bits out, see tests/test_nondet_parallel.py);
  cross-worker rows are different schedules and are reported as a
  scaling curve, not a like-for-like speedup.

Every entry embeds a host fingerprint (CPU count, platform): a scaling
curve measured on a single-core container documents backend overhead,
not hardware parallelism, and readers must be able to tell.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import tempfile
import time

from ..algorithms import BFS, SSSP, PageRank, SpMV, WeaklyConnectedComponents
from ..engine import EngineConfig, run
from ..graph import generators
from ..obs.metrics import peak_rss_bytes  # noqa: F401 - re-exported

__all__ = [
    "SCHEMA",
    "SCHEMA_V1",
    "SUITES",
    "append_trajectory",
    "host_fingerprint",
    "peak_rss_bytes",
    "run_incremental_suite",
    "run_nondet_suite",
    "run_parallel_suite",
    "run_bench",
]

SCHEMA = "bench-trajectory/v2"

#: Previous trajectory schema (entries lack the ``phases`` breakdown).
#: Still readable everywhere; appending to a v1 file needs an explicit
#: ``allow_schema_skew=True``.
SCHEMA_V1 = "bench-trajectory/v1"

#: Repo root (the BENCH_*.json home) — three levels above this module.
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]

ALGORITHMS = {
    "wcc": WeaklyConnectedComponents,
    "pagerank": lambda: PageRank(epsilon=1e-3),
    "sssp": lambda: SSSP(source=0),
    "bfs": lambda: BFS(source=0),
    "spmv": SpMV,
}

GRAPH_SPEC = "rmat(scale, 8.0, seed=3)"


def host_fingerprint() -> dict:
    # ``cpus`` is what the hardware has; ``effective_cpus`` is what this
    # process may actually run on (cgroup quotas, taskset, CI caps) —
    # the honest number for reading a scaling curve.  Platforms without
    # sched_getaffinity fall back to the hardware count.
    try:
        effective = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        effective = os.cpu_count()
    return {
        "cpus": os.cpu_count(),
        "effective_cpus": effective,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def append_trajectory(path, entry: dict, *,
                      allow_schema_skew: bool = False) -> dict:
    """Append ``entry`` to the trajectory at ``path`` (atomic, adoptive).

    Returns the full payload written.  A missing file starts a fresh
    trajectory; an existing non-trajectory JSON payload (legacy
    snapshot) is preserved as entry 0 with ``"legacy": true``.

    A file carrying an older trajectory schema (v1: cells without the
    ``phases`` breakdown) is refused by default — one file should not
    silently hold entries of two shapes.  Pass
    ``allow_schema_skew=True`` to upgrade it in place: old entries are
    kept verbatim (readers treat ``phases`` as optional) and the header
    becomes the current schema.
    """
    path = pathlib.Path(path)
    payload = {"schema": SCHEMA, "entries": []}
    if path.exists():
        old = json.loads(path.read_text())
        if isinstance(old, dict) and old.get("schema") == SCHEMA:
            payload = old
        elif isinstance(old, dict) and old.get("schema") == SCHEMA_V1:
            if not allow_schema_skew:
                raise ValueError(
                    f"{path} holds a {SCHEMA_V1} trajectory; appending a "
                    f"{SCHEMA} entry would mix schemas in one file. "
                    "Re-run with allow_schema_skew=True (CLI: "
                    "`repro bench --allow-schema-skew`) to upgrade the "
                    "file in place, keeping the old entries."
                )
            payload = dict(old)
            payload["schema"] = SCHEMA
        else:
            payload["entries"].append({"legacy": True, "results": old})
    entry = dict(entry)
    entry.setdefault(
        "timestamp",
        datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
    )
    entry.setdefault("host", host_fingerprint())
    payload["entries"].append(entry)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)
    return payload


def _timed(factory, graph, config: EngineConfig, **run_kwargs) -> dict:
    from ..obs import Telemetry
    from ..storage.shards import ShardStore

    residency = "out-of-core" if isinstance(graph, ShardStore) else "in-memory"
    # A buffered (no trace file) sink turns on the engines' phase
    # clocks; the v2 cell sums the per-iteration phase dicts.  Within
    # one ``repro bench`` invocation ``peak_rss_bytes`` is "the peak so
    # far", not the cell's own footprint — the isolated bounded-RAM
    # measurement lives in the RLIMIT test and the EXPERIMENTS.md run.
    sink = Telemetry()
    t0 = time.perf_counter()
    res = run(factory(), graph, mode="nondeterministic", config=config,
              telemetry=sink, **run_kwargs)
    elapsed = time.perf_counter() - t0
    updates = sum(s.num_active for s in res.iterations)
    phases: dict[str, float] = {}
    for span in sink.spans:
        for name, seconds in (span.extra.get("phases") or {}).items():
            phases[name] = phases.get(name, 0.0) + float(seconds)
    out = {
        "seconds": elapsed,
        "iterations": res.num_iterations,
        "updates": updates,
        "updates_per_s": updates / elapsed if elapsed > 0 else float("inf"),
        "converged": res.converged,
        "residency": residency,
        "peak_rss_bytes": peak_rss_bytes(),
        "phases": phases,
    }
    if "io" in res.extra:
        out["io"] = res.extra["io"]
    if "pool_reused" in res.extra:
        out["pool_reused"] = res.extra["pool_reused"]
    if "push_iterations" in res.extra:
        out["push_iterations"] = res.extra["push_iterations"]
    return out


def run_nondet_suite(scales=(8, 10, 12), *, object_max_scale: int = 10,
                     direction=None, progress=None) -> dict:
    """Object engine vs vectorized fast path, per algorithm and scale.

    With ``direction="push"`` or ``"auto"``, push-eligible algorithms
    (MIN-combine kernels: wcc, sssp, bfs) additionally get a
    ``vectorized_<direction>`` cell timing the same run under the
    direction-optimizing fast path, plus ``direction_speedup`` —
    pull-time / hybrid-time, > 1 meaning the hybrid won.  Outputs are
    bit-identical across directions, so the cells measure strategy
    cost only.
    """
    from ..engine.nondet_vectorized import push_fallback_reasons

    config = EngineConfig(threads=8, seed=0, jitter=0.5)
    results: dict = {"graph": GRAPH_SPEC,
                     "config": {"threads": 8, "seed": 0, "jitter": 0.5},
                     "scales": {}}
    if direction is not None:
        results["direction"] = direction
    for scale in scales:
        if progress:
            progress(f"nondet scale {scale}")
        graph = generators.rmat(scale, 8.0, seed=3)
        row = {"vertices": graph.num_vertices, "edges": graph.num_edges,
               "algorithms": {}}
        for name, factory in ALGORITHMS.items():
            cell = {"vectorized": _timed(factory, graph, config,
                                         vectorized="require")}
            if direction is not None and not push_fallback_reasons(factory()):
                hybrid = _timed(factory, graph, config,
                                vectorized="require", direction=direction)
                cell[f"vectorized_{direction}"] = hybrid
                cell["direction_speedup"] = (cell["vectorized"]["seconds"]
                                             / hybrid["seconds"])
            if scale <= object_max_scale:
                cell["object"] = _timed(factory, graph, config)
                cell["speedup"] = (cell["object"]["seconds"]
                                   / cell["vectorized"]["seconds"])
            row["algorithms"][name] = cell
        results["scales"][str(scale)] = row
    return results


def run_parallel_suite(scales=(10, 12), workers=(1, 2, 4, 8),
                       algorithms=("pagerank",), *, out_of_core=False,
                       num_intervals=8, store_dir=None,
                       progress=None) -> dict:
    """Vectorized fast path vs the process backend across worker counts.

    Per (scale, algorithm, P): wall time of ``vectorized=True`` and of
    ``backend="process"`` under the *same* ``threads=P`` configuration
    (bit-identical outputs), their ratio (``speedup`` > 1 means the
    backend won), and a ``scaling`` curve of backend throughput
    normalised to its own P=1 run.

    ``out_of_core=True`` points the process backend at a PSW
    :class:`~repro.storage.shards.ShardStore` built per scale (the
    interval-sliced runner), so the comparison becomes in-memory
    vectorized vs bounded-RAM sharded execution; the in-memory run
    stays the baseline.  Stores land in ``store_dir`` (a temp
    directory by default) and are removed afterwards unless
    ``store_dir`` is given.
    """
    workers = tuple(workers)
    results: dict = {"graph": GRAPH_SPEC,
                     "config": {"seed": 0, "jitter": 0.5},
                     "workers": list(workers),
                     "residency": "out-of-core" if out_of_core else "in-memory",
                     "scales": {}}
    if out_of_core:
        results["num_intervals"] = num_intervals
    for scale in scales:
        graph = generators.rmat(scale, 8.0, seed=3)
        row = {"vertices": graph.num_vertices, "edges": graph.num_edges,
               "algorithms": {}}
        store = tmp_dir = None
        target = graph
        if out_of_core:
            from ..storage.shards import ShardStore

            if store_dir is None:
                tmp_dir = tempfile.TemporaryDirectory(prefix="repro-bench-shards-")
                base = pathlib.Path(tmp_dir.name)
            else:
                base = pathlib.Path(store_dir)
                base.mkdir(parents=True, exist_ok=True)
            store = ShardStore.build(graph, base / f"scale{scale}.shards",
                                     num_intervals)
            target = store
        try:
            for name in algorithms:
                factory = ALGORITHMS[name]
                cell: dict = {"workers": {}}
                for p in workers:
                    if progress:
                        progress(f"parallel scale {scale} {name} P={p}")
                    config = EngineConfig(threads=p, seed=0, jitter=0.5)
                    vec = _timed(factory, graph, config, vectorized="require")
                    proc = _timed(factory, target, config, backend="process")
                    cell["workers"][str(p)] = {
                        "vectorized": vec,
                        "process": proc,
                        "speedup": vec["seconds"] / proc["seconds"],
                    }
                base_cell = cell["workers"][str(workers[0])]["process"]
                cell["scaling"] = {
                    str(p): (cell["workers"][str(p)]["process"]["updates_per_s"]
                             / base_cell["updates_per_s"])
                    for p in workers
                }
                row["algorithms"][name] = cell
        finally:
            if store is not None:
                store.nondet_runner().close()
            if tmp_dir is not None:
                tmp_dir.cleanup()
        results["scales"][str(scale)] = row
    return results


def run_incremental_suite(scales=(12, 14), algorithms=("pagerank",),
                          num_batches=3, batch_frac=0.001,
                          mutation_seed=7, progress=None) -> dict:
    """Repair-vs-recompute: the dynamic-graph payoff number.

    Per (scale, algorithm): converge a standing delta result, stream
    ``num_batches`` seeded mutation batches (each touching
    ``batch_frac`` of the edges) through it, and compare each batch's
    *repair* cost — the incremental splice plus the reconvergence
    iterations it triggers — against a full vectorized recompute on the
    same mutated graph.  ``speedup`` > 1 means repairing the standing
    result beat recomputing it.

    SSSP cells use endpoint-stable weights
    (:func:`repro.graph.mutations.stable_weights`): index-seeded weights
    would silently reshuffle under mutation and the comparison would be
    between different problems.
    """
    from ..graph.mutations import apply_batch, generate_batches, stable_weights
    from ..obs import Telemetry

    def _factory(name):
        if name in ("sssp", "bfs"):
            src_cls = SSSP if name == "sssp" else BFS
            if name == "sssp":
                return lambda: SSSP(
                    source=0, weight_fn=lambda g: stable_weights(g, seed=5))
            return src_cls
        return ALGORITHMS[name]

    config = EngineConfig(threads=8, seed=0)
    results: dict = {"graph": GRAPH_SPEC,
                     "config": {"threads": 8, "seed": 0},
                     "num_batches": int(num_batches),
                     "batch_frac": float(batch_frac),
                     "mutation_seed": int(mutation_seed),
                     "scales": {}}
    for scale in scales:
        graph = generators.rmat(scale, 8.0, seed=3)
        batches = generate_batches(graph, num_batches, batch_frac,
                                   mutation_seed)
        snapshots = []
        g = graph
        for b in batches:
            g, _ = apply_batch(g, b)
            snapshots.append(g)
        row = {"vertices": graph.num_vertices, "edges": graph.num_edges,
               "batch_edges": batches[0].size if batches else 0,
               "algorithms": {}}
        for name in algorithms:
            factory = _factory(name)
            if progress:
                progress(f"incremental scale {scale} {name} standing+repair")
            sink = Telemetry()
            t0 = time.perf_counter()
            res = run(factory(), graph, mode="delta", config=config,
                      telemetry=sink, mutations=batches)
            total = time.perf_counter() - t0
            walls = {s_.iteration: s_.wall_time_s for s_ in sink.spans}
            muts = res.extra.get("mutations", [])
            cells = []
            for i, m in enumerate(muts):
                lo = m["at_iteration"]
                hi = (muts[i + 1]["at_iteration"] if i + 1 < len(muts)
                      else res.num_iterations)
                reconverge = sum(walls.get(it, 0.0) for it in range(lo, hi))
                repair_s = m["repair_seconds"] + reconverge
                if progress:
                    progress(f"incremental scale {scale} {name} recompute "
                             f"batch {i}")
                rec = _timed(factory, snapshots[i], config,
                             vectorized="require")
                cells.append({
                    "inserted": m["inserted"],
                    "deleted": m["deleted"],
                    "repair_mode": m["repair_mode"],
                    "repaired_vertices": m["repaired_vertices"],
                    "reconverge_iterations": hi - lo,
                    "repair_seconds": repair_s,
                    "recompute_seconds": rec["seconds"],
                    "recompute_iterations": rec["iterations"],
                    "speedup": (rec["seconds"] / repair_s
                                if repair_s > 0 else float("inf")),
                })
            standing_iters = muts[0]["at_iteration"] if muts else res.num_iterations
            standing_s = sum(walls.get(it, 0.0) for it in range(standing_iters))
            repair_mean = (sum(c["repair_seconds"] for c in cells) / len(cells)
                           if cells else 0.0)
            rec_mean = (sum(c["recompute_seconds"] for c in cells) / len(cells)
                        if cells else 0.0)
            row["algorithms"][name] = {
                "standing": {"seconds": standing_s,
                             "iterations": standing_iters,
                             "total_seconds": total,
                             "converged": res.converged,
                             "accumulation_identity":
                                 res.extra["delta"]["accumulation_identity"]},
                "batches": cells,
                "repair_mean_seconds": repair_mean,
                "recompute_mean_seconds": rec_mean,
                "speedup": (rec_mean / repair_mean if repair_mean > 0
                            else float("inf")),
            }
        results["scales"][str(scale)] = row
    return results


SUITES = {
    "nondet": ("BENCH_nondet.json", run_nondet_suite),
    "parallel": ("BENCH_parallel.json", run_parallel_suite),
    "incremental": ("BENCH_incremental.json", run_incremental_suite),
}


def run_bench(suites=("nondet", "parallel"), *, out_dir=None,
              progress=None, allow_schema_skew=False,
              **suite_kwargs) -> dict[str, dict]:
    """Run the named suites and append one trajectory entry each.

    Returns ``{suite: payload-written}``.  ``suite_kwargs`` (e.g.
    ``scales=``, ``workers=``) are forwarded to every suite that
    accepts them.  ``allow_schema_skew=True`` permits appending to a
    file still carrying the previous trajectory schema (see
    :func:`append_trajectory`).
    """
    out_dir = pathlib.Path(out_dir) if out_dir is not None else REPO_ROOT
    out_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, dict] = {}
    for suite in suites:
        try:
            filename, runner = SUITES[suite]
        except KeyError:
            raise ValueError(
                f"unknown bench suite {suite!r}; choose from {sorted(SUITES)}"
            ) from None
        import inspect

        accepted = {
            k: v for k, v in suite_kwargs.items()
            if k in inspect.signature(runner).parameters
        }
        results = runner(progress=progress, **accepted)
        entry = {"suite": suite, "results": results}
        written[suite] = append_trajectory(out_dir / filename, entry,
                                           allow_schema_skew=allow_schema_skew)
    return written
