"""Shared experiment plumbing: configuration defaults and table rendering."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "DEFAULT_SCALE", "DEFAULT_SEED", "PAPER_THREADS"]

#: Default log2 graph scale for experiment drivers (2**10 = 1024 vertices).
DEFAULT_SCALE = 10
#: Default data seed for the stand-in datasets.
DEFAULT_SEED = 7
#: The thread counts of the paper's Fig. 3 x-axes.
PAPER_THREADS = (4, 8, 16)


def format_table(rows: Sequence[Mapping], *, title: str | None = None) -> str:
    """Render dict rows as an aligned plain-text table.

    Columns are the union of keys in first-seen order; floats are shown
    with 4 significant digits.  Used by every experiment driver and by
    the benchmark harness to print the paper-shaped tables.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)
