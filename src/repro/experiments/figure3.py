"""Experiment F3 — Fig. 3: computing times, deterministic vs nondeterministic.

Reproduces the paper's 16-panel performance grid: for each of
{PageRank, WCC, SSSP, BFS} × {4 stand-in graphs}, the deterministic
baseline (external deterministic scheduler, shown by the paper at 4
threads only because it does not scale) against nondeterministic
execution with the three §III atomicity methods at 4, 8 and 16 threads.

Because the three atomicity methods produce *identical values* and
differ only in cost, each (algorithm, graph, threads) cell needs exactly
one engine run; the three NE curves are three pricings of that run's
work profile.  Iteration counts are measured, not modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import os

from ..algorithms import PAPER_ALGORITHMS
from ..engine.atomicity import AtomicityPolicy
from ..engine.config import EngineConfig
from ..engine.runner import run
from ..graph import DiGraph
from ..graph.datasets import PAPER_DATASETS
from ..obs import Telemetry
from ..perf import CostParams, TimingRow, price_run
from .common import DEFAULT_SCALE, DEFAULT_SEED, PAPER_THREADS, format_table

__all__ = ["Figure3Result", "run_figure3", "run_figure3_explain", "NE_POLICIES"]

#: The three §III atomicity methods, in the paper's legend order.
NE_POLICIES = (
    AtomicityPolicy.LOCK,
    AtomicityPolicy.CACHE_LINE,
    AtomicityPolicy.ATOMIC_RELAXED,
)


@dataclass
class Figure3Result:
    """All timing rows of the Fig. 3 grid, with panel accessors."""

    rows: list[TimingRow] = field(default_factory=list)

    def panel(self, algorithm: str, graph: str) -> list[TimingRow]:
        """The rows of one Fig. 3 subplot."""
        return [r for r in self.rows if r.algorithm == algorithm and r.graph == graph]

    def cell(
        self, algorithm: str, graph: str, mode: str, threads: int, policy: str = "-"
    ) -> TimingRow:
        for r in self.panel(algorithm, graph):
            if r.mode == mode and r.threads == threads and r.policy == policy:
                return r
        raise KeyError(f"no row for {algorithm}/{graph}/{mode}/{threads}/{policy}")

    def algorithms(self) -> list[str]:
        return sorted({r.algorithm for r in self.rows})

    def graphs(self) -> list[str]:
        return sorted({r.graph for r in self.rows})

    def render(self) -> str:
        chunks = []
        for algo in self.algorithms():
            for graph in self.graphs():
                panel = self.panel(algo, graph)
                if panel:
                    chunks.append(
                        format_table(
                            [r.as_dict() for r in panel],
                            title=f"Fig. 3 — {algo} on {graph}",
                        )
                    )
        return "\n\n".join(chunks)


def run_figure3(
    *,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    run_seed: int = 0,
    threads_list: Sequence[int] = PAPER_THREADS,
    algorithms: Mapping[str, Callable] | None = None,
    graphs: Mapping[str, DiGraph] | None = None,
    cost_params: CostParams | None = None,
    vectorized: bool | str = False,
    trace_dir: str | None = None,
) -> Figure3Result:
    """Execute the full grid and price every cell.

    Every engine run executes under a :class:`~repro.obs.Telemetry`
    sink, and the cost model prices the *recorded spans* — the figure
    and its traces cannot disagree.  With ``trace_dir`` set, each
    cell's JSONL trace is kept as ``<algo>_<graph>_<mode><threads>.jsonl``.

    Parameters
    ----------
    scale, seed:
        Size/seed of the stand-in datasets (ignored when ``graphs`` is
        given explicitly).
    run_seed:
        Engine seed for the nondeterministic runs.
    algorithms:
        ``name -> program factory``; defaults to the paper's four.
    graphs:
        ``name -> graph``; defaults to the four Table I stand-ins.
    vectorized:
        Take the vectorized nondeterministic fast path for the NE cells
        (bit-identical results, much faster at large scales); the DE
        baseline is unaffected.
    trace_dir:
        Directory (created if missing) for per-cell JSONL traces.
    """
    algorithms = dict(algorithms or PAPER_ALGORITHMS)
    if graphs is None:
        graphs = {
            spec.name: spec.build(scale=scale, seed=seed)
            for spec in PAPER_DATASETS.values()
        }
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    def make_sink(cell: str) -> Telemetry:
        path = (
            os.path.join(trace_dir, f"{cell}.jsonl") if trace_dir is not None else None
        )
        return Telemetry(trace_path=path)

    out = Figure3Result()
    for algo_name, factory in algorithms.items():
        for graph_name, graph in graphs.items():
            # Deterministic baseline: the paper shows it at 4 threads only
            # ("the performances ... do not scale").
            sink = make_sink(f"{algo_name}_{graph_name}_de4")
            de = run(
                factory(),
                graph,
                mode="deterministic",
                config=EngineConfig(threads=4, seed=run_seed),
                telemetry=sink,
            )
            out.rows.append(
                price_run(
                    de,
                    algorithm=algo_name,
                    graph=graph_name,
                    params=cost_params,
                    telemetry=sink,
                )
            )
            for threads in threads_list:
                sink = make_sink(f"{algo_name}_{graph_name}_ne{threads}")
                ne = run(
                    factory(),
                    graph,
                    mode="nondeterministic",
                    config=EngineConfig(threads=threads, seed=run_seed),
                    vectorized=vectorized,
                    telemetry=sink,
                )
                for policy in NE_POLICIES:
                    out.rows.append(
                        price_run(
                            ne,
                            algorithm=algo_name,
                            graph=graph_name,
                            policy=policy,
                            params=cost_params,
                            telemetry=sink,
                        )
                    )
    return out


def run_figure3_explain(
    *,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    threads: int = 8,
    run_seeds: Sequence[int] = (0, 1),
    algorithms: Mapping[str, Callable] | None = None,
    graphs: Mapping[str, DiGraph] | None = None,
    policy: str = "conflicts",
    vectorized: bool | str = False,
    trace_dir: str | None = None,
) -> str:
    """Fig. 3's ``--explain`` mode: attribute ranking variance to races.

    For every (algorithm, graph) panel, run the nondeterministic engine
    twice with two different engine seeds (= two interleavings) under
    the flight recorder, align the provenance traces, and report the
    first divergent race together with its forward taint and the
    difference-degree verdict — turning the figure's run-to-run
    variance into a per-panel causal statement.  ``jitter=0.5`` so the
    seeds actually change the schedule.  Returns the rendered report.
    """
    from ..analysis.explain import explain_traces
    from ..obs import Recorder

    if len(run_seeds) != 2:
        raise ValueError("run_seeds must name exactly two interleavings")
    algorithms = dict(algorithms or PAPER_ALGORITHMS)
    if graphs is None:
        graphs = {
            spec.name: spec.build(scale=scale, seed=seed)
            for spec in PAPER_DATASETS.values()
        }
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    chunks = []
    for algo_name, factory in algorithms.items():
        for graph_name, graph in graphs.items():
            recorders = []
            for run_seed in run_seeds:
                path = (
                    os.path.join(
                        trace_dir,
                        f"{algo_name}_{graph_name}_ne{threads}_s{run_seed}.jsonl",
                    )
                    if trace_dir is not None
                    else None
                )
                rec = Recorder(policy=policy, trace_path=path)
                run(
                    factory(),
                    graph,
                    mode="nondeterministic",
                    config=EngineConfig(threads=threads, seed=run_seed, jitter=0.5),
                    vectorized=vectorized,
                    record=rec,
                )
                recorders.append(rec)
            report = explain_traces(
                recorders[0].records, recorders[1].records, graph=graph
            )
            chunks.append(
                f"=== {algo_name} on {graph_name} "
                f"(threads={threads}, seeds {tuple(run_seeds)}) ===\n"
                + report.render()
            )
    return "\n\n".join(chunks)
