"""Experiment T1 — Table I: the graphs used in the experiments.

Builds the four synthetic stand-ins and reports their statistics beside
the paper's originals, so the |E|/|V| fidelity of the substitution is
visible in every benchmark report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import graph_stats
from ..graph.datasets import PAPER_DATASETS
from .common import DEFAULT_SCALE, DEFAULT_SEED, format_table

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """Rows for the reproduced Table I."""

    rows: list[dict]

    def render(self) -> str:
        return format_table(self.rows, title="Table I — graphs used in the experiments")


def run_table1(*, scale: int = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> Table1Result:
    """Instantiate every stand-in dataset and tabulate its statistics."""
    rows: list[dict] = []
    for spec in PAPER_DATASETS.values():
        graph = spec.build(scale=scale, seed=seed)
        stats = graph_stats(graph)
        rows.append(
            {
                "graph": spec.name,
                "paper graph": spec.paper_name,
                "V": stats.num_vertices,
                "E": stats.num_edges,
                "E/V": round(stats.avg_degree, 2),
                "paper E/V": round(spec.paper_edges / spec.paper_vertices, 2),
                "max out-deg": stats.max_out_degree,
                "max in-deg": stats.max_in_degree,
                "WCCs": stats.num_components,
            }
        )
    return Table1Result(rows=rows)
