"""Experiment T2 — Table II: difference degrees within one configuration.

The paper runs PageRank on web-Google five times per configuration —
deterministic (DE), and nondeterministic on 4/8/16 cores (4NE/8NE/16NE)
— for each convergence threshold ε ∈ {0.1, 0.01, 0.001}, then reports
the average difference degree over the C(5,2) = 10 pairs of runs of the
same configuration.

Observed shapes to reproduce (§V-C):

* NE degrees are *smaller* than DE degrees (variation reaches more
  significant pages);
* shrinking ε pushes the variation toward less significant pages
  (degrees grow);
* more processing cores push variation toward more significant pages
  (degrees shrink).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from ..algorithms import PageRank
from ..analysis import ConfigurationRuns, VariationStudy, collect_rankings
from ..graph import DiGraph, load_dataset
from .common import DEFAULT_SCALE, DEFAULT_SEED, format_table

__all__ = ["VarianceResult", "build_study", "run_table2", "PAPER_EPSILONS", "PAPER_CONFIGS"]

#: The paper's three convergence thresholds.
PAPER_EPSILONS = (0.1, 0.01, 0.001)
#: The paper's four configurations: label -> (mode, threads, fp_noise).
PAPER_CONFIGS = {
    "DE": ("deterministic", 4, True),
    "4NE": ("nondeterministic", 4, False),
    "8NE": ("nondeterministic", 8, False),
    "16NE": ("nondeterministic", 16, False),
}


@dataclass
class VarianceResult:
    """Difference-degree table: one study per ε."""

    studies: dict[float, VariationStudy]
    kind: str  #: "same" (Table II) or "cross" (Table III)

    def table(self) -> dict[float, dict[str, float]]:
        if self.kind == "same":
            return {eps: s.table2() for eps, s in self.studies.items()}
        return {eps: s.table3() for eps, s in self.studies.items()}

    def rows(self) -> list[dict]:
        tables = self.table()
        epsilons = sorted(tables, reverse=True)
        labels: list[str] = []
        for eps in epsilons:
            for label in tables[eps]:
                if label not in labels:
                    labels.append(label)
        out = []
        for label in labels:
            row = {"pair": label}
            for eps in epsilons:
                row[f"eps={eps}"] = tables[eps].get(label, float("nan"))
            out.append(row)
        return out

    def render(self) -> str:
        title = (
            "Table II — average difference degrees, same configuration"
            if self.kind == "same"
            else "Table III — average difference degrees, different configurations"
        )
        return format_table(self.rows(), title=title)


def build_study(
    graph: DiGraph,
    epsilon: float,
    *,
    runs: int = 5,
    base_seed: int = 100,
    configs: dict[str, tuple[str, int, bool]] | None = None,
    vectorized: bool | str = False,
    trace_dir: str | None = None,
) -> VariationStudy:
    """Run every configuration ``runs`` times at one ε.

    Convergence verdicts and iteration counts come from each run's
    telemetry (see :func:`~repro.analysis.collect_rankings`); pass
    ``trace_dir`` to keep the per-run JSONL traces.
    """
    configs = configs or PAPER_CONFIGS
    collected: list[ConfigurationRuns] = []
    for label, (mode, threads, fp_noise) in configs.items():
        collected.append(
            collect_rankings(
                lambda: PageRank(epsilon=epsilon),
                graph,
                label=label,
                mode=mode,
                threads=threads,
                runs=runs,
                base_seed=base_seed,
                fp_noise=fp_noise,
                vectorized=vectorized,
                trace_dir=trace_dir,
            )
        )
    return VariationStudy(collected)


def run_table2(
    *,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    runs: int = 5,
    graph: DiGraph | None = None,
    vectorized: bool | str = False,
    trace_dir: str | None = None,
) -> VarianceResult:
    """Reproduce Table II on the web-Google stand-in.

    With ``trace_dir`` set, per-run telemetry traces are kept under one
    ``eps<ε>`` subdirectory per threshold.
    """
    graph = graph if graph is not None else load_dataset("web-google-mini", scale=scale, seed=seed)
    studies = {
        eps: build_study(
            graph,
            eps,
            runs=runs,
            vectorized=vectorized,
            trace_dir=os.path.join(trace_dir, f"eps{eps}") if trace_dir else None,
        )
        for eps in epsilons
    }
    return VarianceResult(studies=studies, kind="same")
