"""Experiment T3 — Table III: difference degrees across configurations.

Same runs as Table II, compared *between* configurations: DE vs kNE and
kNE vs k'NE, each cell averaging the 5×5 pairwise degrees.  The paper's
observed shape: higher precision (smaller ε) moves cross-configuration
variation toward less significant pages, and the top of the ranking
(~100 most significant pages on web-Google) is identical across every
configuration — the usability argument for nondeterministic PageRank.
"""

from __future__ import annotations

import os
from typing import Sequence

from ..graph import DiGraph, load_dataset
from .common import DEFAULT_SCALE, DEFAULT_SEED
from .table2 import PAPER_EPSILONS, VarianceResult, build_study

__all__ = ["run_table3"]


def run_table3(
    *,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    epsilons: Sequence[float] = PAPER_EPSILONS,
    runs: int = 5,
    graph: DiGraph | None = None,
    vectorized: bool | str = False,
    trace_dir: str | None = None,
) -> VarianceResult:
    """Reproduce Table III on the web-Google stand-in.

    With ``trace_dir`` set, per-run telemetry traces are kept under one
    ``eps<ε>`` subdirectory per threshold (same layout as Table II —
    the two tables share their runs' accounting with the traces by
    construction).
    """
    graph = graph if graph is not None else load_dataset("web-google-mini", scale=scale, seed=seed)
    studies = {
        eps: build_study(
            graph,
            eps,
            runs=runs,
            vectorized=vectorized,
            trace_dir=os.path.join(trace_dir, f"eps{eps}") if trace_dir else None,
        )
        for eps in epsilons
    }
    return VarianceResult(studies=studies, kind="cross")
