"""Graph substrate: storage, construction, generation, I/O, reference algorithms."""

from .digraph import DiGraph
from .builder import GraphBuilder
from .properties import (
    GraphStats,
    bfs_levels,
    dijkstra_distances,
    graph_stats,
    is_weakly_connected,
    num_weakly_connected_components,
    weakly_connected_components,
)
from .coloring import color_classes, greedy_coloring, is_valid_coloring
from .partition import (
    PartitionQuality,
    apply_partition,
    bfs_partition,
    contiguous_partition,
    partition_quality,
    random_partition,
)
from .datasets import PAPER_DATASETS, DatasetSpec, dataset_names, load_dataset
from .metrics import DegreeProfile, degree_profile, gini, tail_ratio
from . import generators, io

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "GraphStats",
    "graph_stats",
    "weakly_connected_components",
    "num_weakly_connected_components",
    "is_weakly_connected",
    "bfs_levels",
    "dijkstra_distances",
    "greedy_coloring",
    "is_valid_coloring",
    "color_classes",
    "PartitionQuality",
    "partition_quality",
    "random_partition",
    "contiguous_partition",
    "bfs_partition",
    "apply_partition",
    "DegreeProfile",
    "degree_profile",
    "gini",
    "tail_ratio",
    "PAPER_DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "generators",
    "io",
]
