"""Incremental construction of :class:`~repro.graph.digraph.DiGraph`.

The paper represents undirected edges as two opposite directed edges
(§II); :meth:`GraphBuilder.add_undirected_edge` implements exactly that
convention.  The builder also handles the data-cleaning chores real
edge-list files need: deduplication, self-loop stripping, and compaction
of sparse vertex ids onto the dense label space ``0..V-1`` the paper's
``L_v`` requires.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from .digraph import DiGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and produces an immutable :class:`DiGraph`.

    Parameters
    ----------
    num_vertices:
        If given, the vertex set is fixed to ``0..num_vertices-1`` and
        out-of-range endpoints raise immediately.  If omitted, the vertex
        count is inferred (``max endpoint + 1``) unless ``relabel=True``
        is passed to :meth:`build`.
    """

    def __init__(self, num_vertices: int | None = None):
        if num_vertices is not None and num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")
        self._fixed_n = num_vertices
        self._src: list[int] = []
        self._dst: list[int] = []

    @property
    def num_pending_edges(self) -> int:
        """Edges added so far (before dedup/loop stripping)."""
        return len(self._src)

    def _check(self, v: int) -> int:
        v = int(v)
        if v < 0:
            raise ValueError(f"negative vertex id {v}")
        if self._fixed_n is not None and v >= self._fixed_n:
            raise ValueError(f"vertex {v} out of fixed range [0, {self._fixed_n})")
        return v

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add the directed edge ``u -> v``; returns self for chaining."""
        self._src.append(self._check(u))
        self._dst.append(self._check(v))
        return self

    def add_undirected_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add ``u -> v`` and ``v -> u`` (the paper's undirected encoding)."""
        self.add_edge(u, v)
        if u != v:
            self.add_edge(v, u)
        return self

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> "GraphBuilder":
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def add_edge_arrays(self, src, dst) -> "GraphBuilder":
        """Bulk-add from parallel arrays (vectorized range check)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src/dst must be equal-length 1-D arrays")
        if src.size:
            lo = min(src.min(), dst.min())
            if lo < 0:
                raise ValueError(f"negative vertex id {lo}")
            if self._fixed_n is not None:
                hi = max(src.max(), dst.max())
                if hi >= self._fixed_n:
                    raise ValueError(f"vertex {hi} out of fixed range [0, {self._fixed_n})")
        self._src.extend(src.tolist())
        self._dst.extend(dst.tolist())
        return self

    def build(
        self,
        *,
        dedup: bool = False,
        drop_self_loops: bool = False,
        relabel: bool = False,
    ) -> DiGraph:
        """Produce the immutable graph.

        Parameters
        ----------
        dedup:
            Collapse parallel duplicate edges into one.
        drop_self_loops:
            Remove ``v -> v`` edges.
        relabel:
            Compact the set of endpoint ids actually used onto
            ``0..V-1`` (dense labels).  Incompatible with a fixed
            ``num_vertices``.
        """
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)

        if drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]

        if dedup and src.size:
            pairs = np.stack([src, dst], axis=1)
            pairs = np.unique(pairs, axis=0)
            src, dst = pairs[:, 0], pairs[:, 1]

        if relabel:
            if self._fixed_n is not None:
                raise ValueError("relabel=True conflicts with a fixed num_vertices")
            ids = np.unique(np.concatenate([src, dst])) if src.size else np.array([], dtype=np.int64)
            n = int(ids.size)
            if src.size:
                src = np.searchsorted(ids, src)
                dst = np.searchsorted(ids, dst)
        elif self._fixed_n is not None:
            n = self._fixed_n
        else:
            n = int(max(src.max(), dst.max()) + 1) if src.size else 0

        return DiGraph(n, src, dst)

    def build_relabeled(
        self, *, dedup: bool = False, drop_self_loops: bool = False
    ) -> tuple[DiGraph, Mapping[int, int]]:
        """Like ``build(relabel=True)`` but also returns old->new id map."""
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)
        if drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if dedup and src.size:
            pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
            src, dst = pairs[:, 0], pairs[:, 1]
        ids = np.unique(np.concatenate([src, dst])) if src.size else np.array([], dtype=np.int64)
        mapping = {int(old): new for new, old in enumerate(ids.tolist())}
        if src.size:
            src = np.searchsorted(ids, src)
            dst = np.searchsorted(ids, dst)
        return DiGraph(int(ids.size), src, dst), mapping
