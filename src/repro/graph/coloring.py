"""Greedy graph coloring — the substrate of the chromatic scheduler.

The paper's related work (§VI) contrasts nondeterministic execution
against *deterministic parallel* schedulers, among them the chromatic
scheduler of Kaler et al. (SPAA'14): color the conflict graph so that
no two adjacent vertices share a color, then execute each color class
in parallel — same-color updates cannot touch a common edge, so the
parallelism is race-free by construction.

For the paper's edge-dependence scenario the conflict graph is the
undirected version of the data graph itself (two updates conflict iff
their vertices are adjacent).  This module provides the greedy
(first-fit) coloring in smallest-label order, a randomized-order
variant, and a validity checker.
"""

from __future__ import annotations

import numpy as np

from .digraph import DiGraph

__all__ = ["greedy_coloring", "is_valid_coloring", "color_classes"]


def greedy_coloring(
    graph: DiGraph,
    *,
    order: np.ndarray | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """First-fit coloring of the undirected conflict graph.

    Parameters
    ----------
    order:
        Vertex processing order; defaults to ascending label (the
        deterministic choice), or a seeded random permutation when
        ``seed`` is given.

    Returns the per-vertex color array; colors are ``0..C-1`` with
    ``C <= max_degree + 1`` (greedy bound).
    """
    n = graph.num_vertices
    if order is not None and seed is not None:
        raise ValueError("pass either order or seed, not both")
    if order is None:
        if seed is not None:
            order = np.random.default_rng(seed).permutation(n)
        else:
            order = np.arange(n)
    else:
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(n)):
            raise ValueError("order must be a permutation of all vertices")

    colors = np.full(n, -1, dtype=np.int64)
    for v in order.tolist():
        used = {int(colors[u]) for u in graph.neighbors(v).tolist() if colors[u] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def is_valid_coloring(graph: DiGraph, colors: np.ndarray) -> bool:
    """No edge (ignoring self-loops) joins two same-colored vertices."""
    colors = np.asarray(colors)
    if colors.shape != (graph.num_vertices,):
        return False
    src, dst = graph.edge_src, graph.edge_dst
    non_loop = src != dst
    return bool(np.all(colors[src[non_loop]] != colors[dst[non_loop]]))


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Vertices grouped by color, each group ascending by label."""
    colors = np.asarray(colors)
    if colors.size == 0:
        return []
    out = []
    for c in range(int(colors.max()) + 1):
        out.append(np.nonzero(colors == c)[0].astype(np.int64))
    return out
