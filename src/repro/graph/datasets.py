"""Stand-ins for the paper's real-world datasets (Table I).

The paper evaluates on four graphs:

========================  ==========  ===========  ======
graph                     |V|         |E|          |E|/|V|
========================  ==========  ===========  ======
web-BerkStan              685,231     7,600,595    ~11.1
web-Google                916,428     5,105,039    ~5.6
soc-LiveJournal1          4,847,571   68,993,773   ~14.2
cage15                    5,154,859   ~94,000,000  ~18.2
========================  ==========  ===========  ======

Those files are not available offline and are far beyond what a pure
Python engine can iterate in reasonable time, so this module provides
*seeded synthetic stand-ins* that preserve the structural features that
matter for the paper's questions: degree skew (drives edge contention and
conflict rates), |E|/|V| ratio (drives per-update work), and the banded
structure of cage15.  Each stand-in is generated at a configurable
``scale`` so tests use tiny instances and benchmarks use larger ones.

See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .digraph import DiGraph
from . import generators

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "dataset_names",
    "load_dataset",
    "paper_table1_reference",
]


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic stand-in for one of the paper's graphs."""

    name: str
    paper_name: str
    paper_vertices: int
    paper_edges: int
    description: str
    factory: Callable[[int, int], DiGraph]  # (scale, seed) -> graph

    def build(self, *, scale: int = 10, seed: int = 7) -> DiGraph:
        """Instantiate the stand-in.

        ``scale`` is a log2-ish size knob: the web/social graphs get
        ``2**scale`` vertices; cage15-mini gets ``2**scale`` rows of its
        band.  ``scale=10`` (~1k vertices) is comfortable for unit tests;
        benchmarks default to ``scale=12``–``13``.
        """
        return self.factory(scale, seed)


def _web_berkstan(scale: int, seed: int) -> DiGraph:
    # Strongly skewed web crawl, |E|/|V| ~ 11.
    return generators.rmat(scale, 11.0, a=0.57, b=0.19, c=0.19, seed=seed)


def _web_google(scale: int, seed: int) -> DiGraph:
    # Milder skew, |E|/|V| ~ 5.6.
    return generators.rmat(scale, 5.6, a=0.45, b=0.22, c=0.22, seed=seed + 1)


def _soc_livejournal(scale: int, seed: int) -> DiGraph:
    # Social network: preferential attachment, |E|/|V| ~ 14.
    n = 1 << scale
    return generators.preferential_attachment(n, 14, seed=seed + 2)


def _cage15(scale: int, seed: int) -> DiGraph:
    # Banded, nearly symmetric matrix structure, |E|/|V| ~ 18.
    n = 1 << scale
    return generators.banded(n, bandwidth=12, density=0.76, seed=seed + 3, symmetric=True)


PAPER_DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="web-berkstan-mini",
            paper_name="web-BerkStan",
            paper_vertices=685_231,
            paper_edges=7_600_595,
            description="R-MAT (Graph500 skew) stand-in for the berkeley.edu/stanford.edu crawl",
            factory=_web_berkstan,
        ),
        DatasetSpec(
            name="web-google-mini",
            paper_name="web-Google",
            paper_vertices=916_428,
            paper_edges=5_105_039,
            description="R-MAT stand-in for the Google programming-contest web graph",
            factory=_web_google,
        ),
        DatasetSpec(
            name="soc-livejournal1-mini",
            paper_name="soc-LiveJournal1",
            paper_vertices=4_847_571,
            paper_edges=68_993_773,
            description="preferential-attachment stand-in for the LiveJournal friendship graph",
            factory=_soc_livejournal,
        ),
        DatasetSpec(
            name="cage15-mini",
            paper_name="cage15",
            paper_vertices=5_154_859,
            paper_edges=94_044_692,
            description="banded symmetric stand-in for the cage15 DNA electrophoresis matrix",
            factory=_cage15,
        ),
    )
}


def dataset_names() -> list[str]:
    """Names of the four Table I stand-ins, in the paper's order."""
    return list(PAPER_DATASETS)


def load_dataset(name: str, *, scale: int = 10, seed: int = 7) -> DiGraph:
    """Build the named stand-in graph at the given scale."""
    try:
        spec = PAPER_DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(PAPER_DATASETS)}"
        ) from None
    return spec.build(scale=scale, seed=seed)


def paper_table1_reference() -> list[dict]:
    """The paper's Table I numbers, for side-by-side reporting."""
    return [
        {
            "graph": spec.paper_name,
            "V": spec.paper_vertices,
            "E": spec.paper_edges,
            "E/V": round(spec.paper_edges / spec.paper_vertices, 2),
        }
        for spec in PAPER_DATASETS.values()
    ]
