"""Compressed sparse row directed graph.

This is the storage substrate the whole reproduction runs on.  It plays the
role that GraphChi's in-memory shard representation plays in the paper: a
static directed graph whose vertices carry integer labels ``0..V-1`` (the
paper's ``L_v``) and whose edges carry stable integer identifiers
``0..E-1`` used to index the per-edge data arrays in
:mod:`repro.engine.state`.

Both adjacency directions are materialized (CSR over out-edges and CSC
over in-edges) because the paper's update functions run in *pull mode*:
``f(v)``'s scope is ``v`` plus **all** incident edges, read during gather
(typically in-edges) and written during scatter (typically out-edges).

Everything is NumPy-backed and immutable after construction; per the
hpc-parallel guides, hot paths expose vectorized array views rather than
per-edge Python objects.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["DiGraph"]


class DiGraph:
    """An immutable directed graph in CSR/CSC form.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``V``.  Vertex labels are ``0..V-1``.
    src, dst:
        Parallel integer arrays of edge endpoints.  Edges are re-ordered
        internally so that edge id ``e`` is the ``e``-th edge in
        ``(src, dst)`` lexicographic order; parallel duplicate edges are
        allowed (the builder can be asked to deduplicate them) and
        self-loops are allowed unless the builder strips them.

    Notes
    -----
    Use :class:`repro.graph.builder.GraphBuilder` or the module-level
    constructors in :mod:`repro.graph.generators` for anything beyond raw
    arrays.
    """

    __slots__ = (
        "_n",
        "_m",
        "_src",
        "_dst",
        "_out_indptr",
        "_out_dst",
        "_out_eid",
        "_in_indptr",
        "_in_src",
        "_in_eid",
    )

    def __init__(self, num_vertices: int, src: Sequence[int], dst: Sequence[int]):
        n = int(num_vertices)
        if n < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        if src_arr.ndim != 1 or dst_arr.ndim != 1:
            raise ValueError("src and dst must be one-dimensional")
        if src_arr.shape != dst_arr.shape:
            raise ValueError(
                f"src and dst must have equal length, got {src_arr.size} and {dst_arr.size}"
            )
        if src_arr.size:
            lo = min(src_arr.min(), dst_arr.min())
            hi = max(src_arr.max(), dst_arr.max())
            if lo < 0 or hi >= n:
                raise ValueError(
                    f"edge endpoint out of range [0, {n}): found value {lo if lo < 0 else hi}"
                )

        # Canonical edge ids: lexicographic (src, dst) order.  A stable
        # sort keeps duplicate edges in input order, which makes edge-data
        # round-trips through io.py deterministic.
        order = np.lexsort((dst_arr, src_arr))
        self._src = np.ascontiguousarray(src_arr[order])
        self._dst = np.ascontiguousarray(dst_arr[order])
        self._n = n
        self._m = int(self._src.size)

        self._out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self._out_indptr, self._src + 1, 1)
        np.cumsum(self._out_indptr, out=self._out_indptr)
        self._out_dst = self._dst  # already grouped by src
        self._out_eid = np.arange(self._m, dtype=np.int64)

        in_order = np.lexsort((self._src, self._dst))
        self._in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self._in_indptr, self._dst + 1, 1)
        np.cumsum(self._in_indptr, out=self._in_indptr)
        self._in_src = np.ascontiguousarray(self._src[in_order])
        self._in_eid = np.ascontiguousarray(in_order.astype(np.int64))

    # ------------------------------------------------------------------
    # Size queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``|V|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """``|E|`` (directed edges)."""
        return self._m

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(V={self._n}, E={self._m})"

    # ------------------------------------------------------------------
    # Edge endpoint arrays (views; treat as read-only)
    # ------------------------------------------------------------------
    @property
    def edge_src(self) -> np.ndarray:
        """Source vertex of every edge, indexed by edge id."""
        return self._src

    @property
    def edge_dst(self) -> np.ndarray:
        """Destination vertex of every edge, indexed by edge id."""
        return self._dst

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """Return ``(src, dst)`` of edge ``eid``."""
        if not 0 <= eid < self._m:
            raise IndexError(f"edge id {eid} out of range [0, {self._m})")
        return int(self._src[eid]), int(self._dst[eid])

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> int:
        v = int(v)
        if not 0 <= v < self._n:
            raise IndexError(f"vertex {v} out of range [0, {self._n})")
        return v

    def out_degree(self, v: int) -> int:
        v = self._check_vertex(v)
        return int(self._out_indptr[v + 1] - self._out_indptr[v])

    def in_degree(self, v: int) -> int:
        v = self._check_vertex(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def degree(self, v: int) -> int:
        """Total incident degree (in + out)."""
        return self.out_degree(v) + self.in_degree(v)

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for all vertices."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for all vertices."""
        return np.diff(self._in_indptr)

    def out_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbors, edge_ids)`` for edges leaving ``v``.

        Neighbors are sorted ascending (a consequence of canonical edge
        ordering), which gives the engine a deterministic scatter order.
        """
        v = self._check_vertex(v)
        lo, hi = self._out_indptr[v], self._out_indptr[v + 1]
        return self._out_dst[lo:hi], self._out_eid[lo:hi]

    def in_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbors, edge_ids)`` for edges entering ``v``."""
        v = self._check_vertex(v)
        lo, hi = self._in_indptr[v], self._in_indptr[v + 1]
        return self._in_src[lo:hi], self._in_eid[lo:hi]

    def _slice_eids(self, ids: np.ndarray, indptr: np.ndarray,
                    eid: np.ndarray) -> np.ndarray:
        """Concatenated CSR/CSC edge-id slices for the vertices ``ids``."""
        ids = np.asarray(ids, dtype=np.int64)
        lo = indptr[ids]
        lens = indptr[ids + 1] - lo
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Vectorized multi-slice gather: positions = concat(range(lo, hi)).
        pos = np.repeat(lo - np.concatenate(([0], lens[:-1])).cumsum(), lens)
        pos += np.arange(total, dtype=np.int64)
        return eid[pos]

    def out_edge_ids(self, ids: np.ndarray) -> np.ndarray:
        """Edge ids of every edge *leaving* a vertex in ``ids``.

        For ascending ``ids`` the result is ascending too (canonical
        edge ids are grouped by source) — the frontier's out-edge CSR
        slice the direction-optimizing push path scatters over.
        """
        return self._slice_eids(ids, self._out_indptr, self._out_eid)

    def in_edge_ids(self, ids: np.ndarray) -> np.ndarray:
        """Edge ids of every edge *entering* a vertex in ``ids``.

        Returned in CSC order — grouped by destination (in ``ids``
        order), ascending source within each group — the segment layout
        gather-side combines reduce over.
        """
        return self._slice_eids(ids, self._in_indptr, self._in_eid)

    def out_neighbors(self, v: int) -> np.ndarray:
        return self.out_edges(v)[0]

    def in_neighbors(self, v: int) -> np.ndarray:
        return self.in_edges(v)[0]

    def incident_eids(self, v: int) -> np.ndarray:
        """Edge ids of *all* edges incident to ``v`` (the scope of ``f(v)``)."""
        return np.concatenate([self.in_edges(v)[1], self.out_edges(v)[1]])

    def neighbors(self, v: int) -> np.ndarray:
        """Distinct vertices adjacent to ``v`` in either direction."""
        return np.unique(np.concatenate([self.in_neighbors(v), self.out_neighbors(v)]))

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the directed edge ``u -> v`` exists."""
        u = self._check_vertex(u)
        v = self._check_vertex(v)
        lo, hi = self._out_indptr[u], self._out_indptr[u + 1]
        i = np.searchsorted(self._out_dst[lo:hi], v)
        return bool(i < hi - lo and self._out_dst[lo + i] == v)

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of ``u -> v`` (first one if parallel edges exist).

        Raises ``KeyError`` when the edge does not exist.
        """
        u = self._check_vertex(u)
        v = self._check_vertex(v)
        lo, hi = self._out_indptr[u], self._out_indptr[u + 1]
        i = np.searchsorted(self._out_dst[lo:hi], v)
        if i < hi - lo and self._out_dst[lo + i] == v:
            return int(self._out_eid[lo + i])
        raise KeyError(f"no edge {u} -> {v}")

    def iter_edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(eid, src, dst)`` in edge-id order."""
        for e in range(self._m):
            yield e, int(self._src[e]), int(self._dst[e])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """Graph with every edge direction flipped."""
        return DiGraph(self._n, self._dst.copy(), self._src.copy())

    def as_undirected_pairs(self) -> np.ndarray:
        """Distinct unordered endpoint pairs, as an ``(k, 2)`` array."""
        lo = np.minimum(self._src, self._dst)
        hi = np.maximum(self._src, self._dst)
        pairs = np.stack([lo, hi], axis=1)
        return np.unique(pairs, axis=0) if pairs.size else pairs

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal CSR/CSC invariants; raises ``AssertionError``.

        Exposed so property-based tests can hammer arbitrary inputs.
        """
        assert self._out_indptr[0] == 0 and self._out_indptr[-1] == self._m
        assert self._in_indptr[0] == 0 and self._in_indptr[-1] == self._m
        assert np.all(np.diff(self._out_indptr) >= 0)
        assert np.all(np.diff(self._in_indptr) >= 0)
        # CSR round-trip: expanding indptr reproduces edge_src.
        counts = np.diff(self._out_indptr)
        assert np.array_equal(np.repeat(np.arange(self._n), counts), self._src)
        # CSC carries a permutation of edge ids.
        assert np.array_equal(np.sort(self._in_eid), np.arange(self._m))
        # Each CSC slot references an edge whose dst is the owning vertex.
        counts_in = np.diff(self._in_indptr)
        owner = np.repeat(np.arange(self._n), counts_in)
        assert np.array_equal(self._dst[self._in_eid], owner)
        assert np.array_equal(self._src[self._in_eid], self._in_src)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._src, other._src)
            and np.array_equal(self._dst, other._dst)
        )

    def __hash__(self) -> int:  # graphs are immutable, so hashing is safe
        return hash((self._n, self._m, self._src.tobytes(), self._dst.tobytes()))
