"""Seeded synthetic graph generators.

These are the substitutes for the paper's real-world datasets (Table I):
R-MAT/Kronecker sampling reproduces the heavy-tailed degree distributions
of the SNAP web/social graphs, and :func:`banded` reproduces the banded
sparsity structure of the UFL ``cage15`` matrix.  A few small structured
topologies (path, cycle, grid, star, ...) exist for tests and worked
examples such as the paper's Fig. 2.

Every generator takes an explicit ``seed`` (or is fully deterministic) so
that experiments are reproducible run to run — the nondeterminism studied
by the paper lives in the *engine*, never in the data.
"""

from __future__ import annotations

import numpy as np

from .builder import GraphBuilder
from .digraph import DiGraph

__all__ = [
    "erdos_renyi",
    "rmat",
    "preferential_attachment",
    "banded",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "random_tree",
    "two_vertex_conflict_graph",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi(
    n: int,
    num_edges: int,
    *,
    seed: int | np.random.Generator | None = 0,
    allow_self_loops: bool = False,
) -> DiGraph:
    """G(n, m): ``num_edges`` distinct directed edges sampled uniformly."""
    if n <= 0:
        raise ValueError("n must be positive")
    max_edges = n * n if allow_self_loops else n * (n - 1)
    if num_edges > max_edges:
        raise ValueError(f"num_edges={num_edges} exceeds maximum {max_edges}")
    rng = _rng(seed)
    chosen: set[tuple[int, int]] = set()
    # Rejection sampling; for the sparse regimes we use (m << n^2) the
    # expected number of redraws is negligible.
    while len(chosen) < num_edges:
        need = num_edges - len(chosen)
        src = rng.integers(0, n, size=need * 2 + 8)
        dst = rng.integers(0, n, size=need * 2 + 8)
        for u, v in zip(src.tolist(), dst.tolist()):
            if not allow_self_loops and u == v:
                continue
            chosen.add((u, v))
            if len(chosen) >= num_edges:
                break
    src, dst = zip(*sorted(chosen)) if chosen else ((), ())
    return DiGraph(n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))


def rmat(
    scale: int,
    edge_factor: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator | None = 0,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> DiGraph:
    """Recursive-matrix (Kronecker) generator: ``2**scale`` vertices.

    The default ``(a, b, c)`` parameters are the Graph500 values, which
    produce the skewed in/out-degree distributions characteristic of web
    crawls like web-BerkStan and web-Google — the structural feature that
    drives conflict rates in the paper's experiments.

    ``edge_factor`` is the target ``|E| / |V|`` ratio before optional
    deduplication.
    """
    if scale < 0:
        raise ValueError("scale must be >= 0")
    d = 1.0 - a - b - c
    if d < -1e-12 or min(a, b, c) < 0:
        raise ValueError("require a, b, c >= 0 and a + b + c <= 1")
    rng = _rng(seed)
    n = 1 << scale
    m = int(round(edge_factor * n))
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Vectorized recursive descent: one quadrant draw per bit level.
    p_right = b + d  # probability the column bit is 1
    for level in range(scale):
        r_col = rng.random(m)
        col_bit = (r_col < p_right).astype(np.int64)
        # Row bit is correlated with the column bit through the quadrant
        # probabilities: P(row=1 | col) follows from (a, b, c, d).
        p_row1_given_col0 = c / (a + c) if (a + c) > 0 else 0.0
        p_row1_given_col1 = d / (b + d) if (b + d) > 0 else 0.0
        r_row = rng.random(m)
        row_bit = np.where(
            col_bit == 0, r_row < p_row1_given_col0, r_row < p_row1_given_col1
        ).astype(np.int64)
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit
    builder = GraphBuilder(num_vertices=n).add_edge_arrays(src, dst)
    return builder.build(dedup=dedup, drop_self_loops=drop_self_loops)


def preferential_attachment(
    n: int,
    out_degree: int,
    *,
    seed: int | np.random.Generator | None = 0,
) -> DiGraph:
    """Barabási–Albert-style digraph: each new vertex links to ``out_degree``
    earlier vertices chosen proportionally to current total degree.

    Produces the heavy-tailed in-degree profile of social graphs such as
    soc-LiveJournal1.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if out_degree < 1:
        raise ValueError("out_degree must be >= 1")
    rng = _rng(seed)
    src: list[int] = []
    dst: list[int] = []
    # "Repeated nodes" trick: a target pool where each vertex appears once
    # per incident edge endpoint gives degree-proportional sampling in O(1).
    pool: list[int] = [0]
    for v in range(1, n):
        k = min(out_degree, v)
        targets: set[int] = set()
        while len(targets) < k:
            pick = pool[rng.integers(0, len(pool))] if rng.random() < 0.9 else int(
                rng.integers(0, v)
            )
            targets.add(pick)
        for t in targets:
            src.append(v)
            dst.append(t)
            pool.append(v)
            pool.append(t)
    return DiGraph(n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))


def banded(
    n: int,
    bandwidth: int,
    density: float,
    *,
    seed: int | np.random.Generator | None = 0,
    symmetric: bool = True,
) -> DiGraph:
    """Random banded digraph: edge ``u -> v`` only when ``0 < |u-v| <= bandwidth``.

    This reproduces the sparsity structure of the ``cage15`` DNA
    electrophoresis matrix (a banded, nearly symmetric operator), the one
    non-SNAP dataset in the paper's Table I.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    if bandwidth < 1:
        raise ValueError("bandwidth must be >= 1")
    rng = _rng(seed)
    src_list: list[np.ndarray] = []
    dst_list: list[np.ndarray] = []
    for off in range(1, bandwidth + 1):
        count = n - off
        if count <= 0:
            break
        mask = rng.random(count) < density
        rows = np.nonzero(mask)[0]
        src_list.append(rows)
        dst_list.append(rows + off)
        if symmetric:
            src_list.append(rows + off)
            dst_list.append(rows)
        else:
            mask2 = rng.random(count) < density
            rows2 = np.nonzero(mask2)[0]
            src_list.append(rows2 + off)
            dst_list.append(rows2)
    if src_list:
        src = np.concatenate(src_list)
        dst = np.concatenate(dst_list)
    else:
        src = np.array([], dtype=np.int64)
        dst = np.array([], dtype=np.int64)
    return DiGraph(n, src, dst)


def path_graph(n: int, *, undirected: bool = True) -> DiGraph:
    """Path ``0 - 1 - ... - n-1``; the chain topology of Theorem 1's proof."""
    b = GraphBuilder(num_vertices=n)
    for v in range(n - 1):
        if undirected:
            b.add_undirected_edge(v, v + 1)
        else:
            b.add_edge(v, v + 1)
    return b.build()


def cycle_graph(n: int, *, undirected: bool = False) -> DiGraph:
    if n < 1:
        raise ValueError("n must be >= 1")
    b = GraphBuilder(num_vertices=n)
    for v in range(n):
        u = (v + 1) % n
        if v == u:
            continue
        if undirected:
            b.add_undirected_edge(v, u)
        else:
            b.add_edge(v, u)
    return b.build()


def star_graph(n: int, *, undirected: bool = True) -> DiGraph:
    """Hub vertex 0 connected to ``1..n-1`` — maximal write contention."""
    b = GraphBuilder(num_vertices=n)
    for v in range(1, n):
        if undirected:
            b.add_undirected_edge(0, v)
        else:
            b.add_edge(0, v)
    return b.build()


def complete_graph(n: int) -> DiGraph:
    b = GraphBuilder(num_vertices=n)
    for u in range(n):
        for v in range(n):
            if u != v:
                b.add_edge(u, v)
    return b.build()


def grid_graph(rows: int, cols: int) -> DiGraph:
    """Undirected 2-D grid (each undirected edge as two directed ones)."""
    b = GraphBuilder(num_vertices=rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                b.add_undirected_edge(v, v + 1)
            if r + 1 < rows:
                b.add_undirected_edge(v, v + cols)
    return b.build()


def random_tree(n: int, *, seed: int | np.random.Generator | None = 0) -> DiGraph:
    """Uniform random recursive tree as an undirected graph (connected)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = _rng(seed)
    b = GraphBuilder(num_vertices=n)
    for v in range(1, n):
        parent = int(rng.integers(0, v))
        b.add_undirected_edge(parent, v)
    return b.build()


def two_vertex_conflict_graph() -> DiGraph:
    """The two-vertex graph of the paper's Fig. 2 (v=0 -> u=1).

    Both update functions touch the single edge, so concurrent execution
    produces exactly the write–write conflict scenario worked through in
    §IV's discussion of Theorem 2.
    """
    return DiGraph(2, np.array([0]), np.array([1]))
