"""Graph file input/output.

Supports the two on-disk formats the paper's datasets come in:

* **SNAP edge lists** (web-BerkStan, web-Google, soc-LiveJournal1):
  whitespace-separated ``src dst`` lines with ``#`` comments; vertex ids
  may be sparse and are compacted on load.
* **MatrixMarket coordinate files** (cage15 from the UFL Sparse Matrix
  Collection): 1-based ``row col [value]`` entries following a header.

Plus a trivial internal ``edgelist`` writer/reader for round-tripping
generated graphs.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

from .builder import GraphBuilder
from .digraph import DiGraph

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "read_snap",
    "read_matrix_market",
    "write_matrix_market",
]


def read_edgelist(
    path: str | os.PathLike,
    *,
    comments: str = "#",
    dedup: bool = False,
    drop_self_loops: bool = False,
    num_vertices: int | None = None,
) -> DiGraph:
    """Read whitespace-separated ``src dst`` lines into a graph.

    Vertex ids must already be dense (``0..V-1``); use :func:`read_snap`
    for files with sparse ids.  A ``# DiGraph V=<n> ...`` header (as
    written by :func:`write_edgelist`) fixes the vertex count, so
    trailing isolated vertices survive a round-trip; an explicit
    ``num_vertices`` argument overrides the header.
    """
    src: list[int] = []
    dst: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comments):
                if num_vertices is None and line.startswith(f"{comments} DiGraph V="):
                    num_vertices = int(line.split("V=")[1].split()[0])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'src dst', got {line!r}")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
    builder = GraphBuilder(num_vertices=num_vertices)
    builder.add_edge_arrays(np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))
    return builder.build(dedup=dedup, drop_self_loops=drop_self_loops)


def write_edgelist(graph: DiGraph, path: str | os.PathLike, *, header: bool = True) -> None:
    """Write ``src dst`` lines in edge-id order."""
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# DiGraph V={graph.num_vertices} E={graph.num_edges}\n")
        src, dst = graph.edge_src, graph.edge_dst
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"{u} {v}\n")


def read_snap(
    path: str | os.PathLike,
    *,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> tuple[DiGraph, Mapping[int, int]]:
    """Read a SNAP-format edge list, compacting sparse vertex ids.

    Returns ``(graph, old_id -> new_id mapping)``.
    """
    src: list[int] = []
    dst: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
    builder = GraphBuilder()
    builder.add_edge_arrays(np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))
    return builder.build_relabeled(dedup=dedup, drop_self_loops=drop_self_loops)


def read_matrix_market(path: str | os.PathLike, *, drop_self_loops: bool = True) -> DiGraph:
    """Read a MatrixMarket ``coordinate`` file as a digraph.

    Rows/columns become vertices (the matrix must be square); a
    ``symmetric`` qualifier expands each off-diagonal entry into both
    directions, matching how cage15 is used as a graph in the paper.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing MatrixMarket header")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise ValueError(f"{path}: only 'coordinate' format is supported")
        symmetric = "symmetric" in tokens
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, nnz = (int(x) for x in line.split()[:3])
        if rows != cols:
            raise ValueError(f"{path}: matrix must be square, got {rows}x{cols}")
        src: list[int] = []
        dst: list[int] = []
        for _ in range(nnz):
            parts = fh.readline().split()
            i, j = int(parts[0]) - 1, int(parts[1]) - 1
            if drop_self_loops and i == j:
                continue
            src.append(i)
            dst.append(j)
            if symmetric and i != j:
                src.append(j)
                dst.append(i)
    builder = GraphBuilder(num_vertices=rows)
    builder.add_edge_arrays(np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))
    return builder.build(dedup=True)


def write_matrix_market(graph: DiGraph, path: str | os.PathLike) -> None:
    """Write the adjacency pattern as a general coordinate MatrixMarket file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write(f"{graph.num_vertices} {graph.num_vertices} {graph.num_edges}\n")
        for u, v in zip(graph.edge_src.tolist(), graph.edge_dst.tolist()):
            fh.write(f"{u + 1} {v + 1}\n")
