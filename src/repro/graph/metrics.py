"""Degree-distribution metrics: quantifying dataset-stand-in fidelity.

The substitution argument in DESIGN.md rests on the stand-ins
preserving the *degree structure* of the paper's graphs (skewed for the
web/social crawls, uniform-banded for cage15), because degree structure
drives contention and conflict rates.  These metrics make that claim
measurable: tail ratios, Gini concentration, and an order-of-magnitude
power-law exponent estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph

__all__ = ["DegreeProfile", "degree_profile", "gini", "tail_ratio"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, →1 = skewed)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return 0.0
    if values.min() < 0:
        raise ValueError("gini requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    n = values.size
    # standard formula: G = (2 * sum(i * x_i) / (n * sum x)) - (n + 1) / n
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * values)) / (n * total) - (n + 1) / n)


def tail_ratio(values: np.ndarray, quantile: float = 0.99) -> float:
    """Ratio of the ``quantile`` degree to the mean degree.

    ~1–3 for uniform-ish distributions, ≫10 for heavy tails.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    mean = values.mean()
    if mean == 0:
        return 0.0
    return float(np.quantile(values, quantile) / mean)


def _powerlaw_alpha(degrees: np.ndarray, dmin: int = 2) -> float:
    """Maximum-likelihood power-law exponent over degrees >= dmin.

    The continuous MLE (Clauset et al.) — order-of-magnitude diagnostic
    only, not a rigorous fit.
    """
    tail = degrees[degrees >= dmin].astype(np.float64)
    if tail.size < 2:
        return float("nan")
    return float(1.0 + tail.size / np.sum(np.log(tail / (dmin - 0.5))))


@dataclass(frozen=True)
class DegreeProfile:
    """Summary of a graph's total-degree distribution."""

    mean: float
    maximum: int
    gini: float
    tail_ratio_99: float
    powerlaw_alpha: float

    @property
    def heavy_tailed(self) -> bool:
        """Heuristic classification used by the dataset fidelity tests."""
        return self.gini > 0.4 or self.tail_ratio_99 > 5.0

    def as_dict(self) -> dict:
        return {
            "mean_deg": round(self.mean, 2),
            "max_deg": self.maximum,
            "gini": round(self.gini, 3),
            "tail99/mean": round(self.tail_ratio_99, 2),
            "alpha": round(self.powerlaw_alpha, 2) if np.isfinite(self.powerlaw_alpha) else None,
        }


def degree_profile(graph: DiGraph) -> DegreeProfile:
    """Profile the total (in + out) degree distribution."""
    degrees = graph.in_degrees() + graph.out_degrees()
    if degrees.size == 0:
        return DegreeProfile(0.0, 0, 0.0, 0.0, float("nan"))
    return DegreeProfile(
        mean=float(degrees.mean()),
        maximum=int(degrees.max()),
        gini=gini(degrees),
        tail_ratio_99=tail_ratio(degrees),
        powerlaw_alpha=_powerlaw_alpha(degrees),
    )
