"""Seeded edge insert/delete batches against a standing :class:`DiGraph`.

The delta-accumulative engine (:mod:`repro.engine.nondet_delta`) opens the
dynamic-graph workload: a stream of small edge mutations against a big
standing graph whose result is *repaired* instead of recomputed.  This
module is the graph side of that story.  :class:`DiGraph` stays immutable
— a mutation batch produces a **new** graph plus an :class:`EdgeDiff`
describing exactly what changed, which is all the repair pass needs.

Batches are generated from a seed so the workload is replayable: the same
``(graph, num_batches, frac, seed)`` always yields the same mutation
stream, and the bench harness can compare repair against from-scratch
recompute on bit-identical graphs.

Edge weights under mutation need care: :class:`repro.algorithms.sssp.SSSP`
seeds its default weights by *edge index*, and edge indices reshuffle when
the edge set changes.  :func:`stable_weights` instead hashes each
``(src, dst)`` endpoint pair (with a seed), so an edge that survives a
mutation keeps its weight — the property repair-vs-recompute equivalence
tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .digraph import DiGraph

__all__ = [
    "MutationBatch",
    "EdgeDiff",
    "generate_batches",
    "apply_batch",
    "apply_batches",
    "stable_weights",
]


def _as_pairs(pairs) -> np.ndarray:
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edge pairs must have shape (k, 2), got {arr.shape}")
    return arr


@dataclass(frozen=True)
class MutationBatch:
    """One batch of edge mutations: ``inserts`` and ``deletes``.

    Both are ``(k, 2)`` int64 arrays of ``(src, dst)`` pairs.  Deletes
    remove one occurrence of the pair (graphs may hold parallel edges);
    deleting a pair not present in the graph is an error at apply time —
    batches are generated against a known graph, so a miss means the
    stream is being applied out of order.
    """

    inserts: np.ndarray = field(default_factory=lambda: np.empty((0, 2), np.int64))
    deletes: np.ndarray = field(default_factory=lambda: np.empty((0, 2), np.int64))

    def __post_init__(self):
        object.__setattr__(self, "inserts", _as_pairs(self.inserts))
        object.__setattr__(self, "deletes", _as_pairs(self.deletes))

    @property
    def size(self) -> int:
        return int(self.inserts.shape[0] + self.deletes.shape[0])

    def to_dict(self) -> dict:
        return {"inserts": self.inserts.tolist(),
                "deletes": self.deletes.tolist()}

    @classmethod
    def from_dict(cls, payload: dict) -> "MutationBatch":
        return cls(inserts=payload.get("inserts", []),
                   deletes=payload.get("deletes", []))


@dataclass(frozen=True)
class EdgeDiff:
    """What one applied batch changed, in repair-pass terms.

    ``inserted``/``deleted`` are the ``(k, 2)`` pairs that actually took
    effect.  ``affected_sources`` is the sorted unique set of vertices
    whose **out**-edge multiset changed (their scatter contributions are
    stale); ``affected_targets`` the vertices whose **in**-edge multiset
    changed (their gathered value lost or gained a contribution).
    """

    inserted: np.ndarray
    deleted: np.ndarray

    @property
    def affected_sources(self) -> np.ndarray:
        return np.unique(np.concatenate(
            [self.inserted[:, 0], self.deleted[:, 0]]))

    @property
    def affected_targets(self) -> np.ndarray:
        return np.unique(np.concatenate(
            [self.inserted[:, 1], self.deleted[:, 1]]))

    @property
    def affected_vertices(self) -> np.ndarray:
        return np.union1d(self.affected_sources, self.affected_targets)


def _pair_keys(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    """Collision-free scalar key per (src, dst) pair for set arithmetic."""
    return src.astype(np.int64) * np.int64(n) + dst.astype(np.int64)


def apply_batch(graph: DiGraph, batch: MutationBatch) -> tuple[DiGraph, EdgeDiff]:
    """Apply one batch; returns the new graph and the realized diff.

    Deletes remove exactly one occurrence per listed pair and raise
    ``ValueError`` if the pair is absent — silent no-op deletes would let
    a repair pass skip work the caller believes happened.
    """
    n = graph.num_vertices
    src = graph.edge_src.copy()
    dst = graph.edge_dst.copy()

    deletes = _as_pairs(batch.deletes)
    keep = np.ones(src.size, dtype=bool)
    if deletes.size:
        if deletes.min(initial=0) < 0 or deletes.max(initial=-1) >= n:
            raise ValueError("delete endpoint out of range")
        keys = _pair_keys(src, dst, n)
        order = np.argsort(keys, kind="stable")
        want, want_counts = np.unique(
            _pair_keys(deletes[:, 0], deletes[:, 1], n), return_counts=True)
        # For each distinct wanted pair, drop the first `count` matching
        # edge ids (canonical order makes this deterministic).
        lo = np.searchsorted(keys[order], want, side="left")
        hi = np.searchsorted(keys[order], want, side="right")
        have = hi - lo
        missing = want_counts > have
        if missing.any():
            k = int(want[missing][0])
            raise ValueError(
                f"cannot delete edge ({k // n}, {k % n}): not present "
                "(or fewer occurrences than requested)")
        for start, count in zip(lo, want_counts):
            keep[order[start:start + count]] = False

    inserts = _as_pairs(batch.inserts)
    if inserts.size:
        if inserts.min(initial=0) < 0 or inserts.max(initial=-1) >= n:
            raise ValueError("insert endpoint out of range")

    new_src = np.concatenate([src[keep], inserts[:, 0]])
    new_dst = np.concatenate([dst[keep], inserts[:, 1]])
    new_graph = DiGraph(n, new_src, new_dst)
    diff = EdgeDiff(inserted=inserts.copy(), deleted=deletes.copy())
    return new_graph, diff


def apply_batches(graph: DiGraph,
                  batches: list[MutationBatch]) -> tuple[DiGraph, list[EdgeDiff]]:
    """Fold a batch sequence; returns the final graph and per-batch diffs."""
    diffs = []
    for batch in batches:
        graph, diff = apply_batch(graph, batch)
        diffs.append(diff)
    return graph, diffs


def generate_batches(graph: DiGraph, num_batches: int, frac: float,
                     seed: int, *, insert_frac: float = 0.5) -> list[MutationBatch]:
    """Seeded mutation stream: ``num_batches`` batches, each touching
    ``frac`` of the *current* edge count (half inserts, half deletes by
    default).

    Deletes sample existing edges without replacement within a batch;
    inserts draw uniform non-self-loop pairs.  The stream is generated
    against the evolving edge multiset, so batches always apply cleanly
    in order.
    """
    if not 0.0 < frac <= 1.0:
        raise ValueError(f"frac must be in (0, 1], got {frac}")
    if not 0.0 <= insert_frac <= 1.0:
        raise ValueError(f"insert_frac must be in [0, 1], got {insert_frac}")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    if n < 2:
        raise ValueError("mutation batches need at least 2 vertices")
    src = graph.edge_src.copy()
    dst = graph.edge_dst.copy()

    batches = []
    for _ in range(int(num_batches)):
        m = src.size
        size = max(1, int(round(m * frac)))
        num_ins = int(round(size * insert_frac))
        num_del = min(size - num_ins, m)

        del_ids = rng.choice(m, size=num_del, replace=False) if num_del else \
            np.empty(0, dtype=np.int64)
        deletes = np.stack([src[del_ids], dst[del_ids]], axis=1) if num_del \
            else np.empty((0, 2), np.int64)

        ins_src = rng.integers(0, n, size=num_ins, dtype=np.int64)
        ins_dst = rng.integers(0, n - 1, size=num_ins, dtype=np.int64)
        ins_dst[ins_dst >= ins_src] += 1  # skip self-loops
        inserts = np.stack([ins_src, ins_dst], axis=1)

        batches.append(MutationBatch(inserts=inserts, deletes=deletes))

        keep = np.ones(m, dtype=bool)
        keep[del_ids] = False
        src = np.concatenate([src[keep], ins_src])
        dst = np.concatenate([dst[keep], ins_dst])
    return batches


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))


def stable_weights(graph: DiGraph, *, seed: int = 12345,
                   low: float = 1.0, high: float = 10.0) -> np.ndarray:
    """Per-edge weights keyed by endpoints, stable under mutation.

    Weight of edge ``(u, v)`` depends only on ``(u, v, seed)``, so a
    surviving edge keeps its weight when the edge set (and hence edge
    indexing) changes around it.  Parallel edges share a weight.
    """
    with np.errstate(over="ignore"):
        key = (graph.edge_src.astype(np.uint64)
               * np.uint64(0x9E3779B97F4A7C15)
               + graph.edge_dst.astype(np.uint64)
               + np.uint64(seed) * np.uint64(0xD1B54A32D192ED03))
    mixed = _splitmix64(key)
    unit = mixed.astype(np.float64) / float(2**64)
    return (low + unit * (high - low)).astype(np.float64)
