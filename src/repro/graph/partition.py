"""Vertex partitioning for the distributed relaxation of the system model.

The paper's future work includes extending its results to distributed
systems.  The engine side of that relaxation is
:class:`repro.engine.delaymodel.DelayModel` (cross-machine propagation
delays between thread groups); this module supplies the *data* side:
assigning vertices to machines so that block dispatch lines up with
machine ownership, and measuring how good that assignment is.

Because the engines dispatch label-contiguous blocks to threads, a
partitioning is *applied* by relabeling the graph so each machine owns
a contiguous label range (:func:`apply_partition`); the quality of the
cut then directly controls how many edges force cross-machine
propagation delays.

Partitioners:

* :func:`random_partition` — the baseline (expected cut ≈ 1 − 1/K);
* :func:`contiguous_partition` — keep current labels (works well for
  banded graphs like cage15, terribly for shuffled ones);
* :func:`bfs_partition` — grow parts by BFS from seeds, the classic
  cheap locality heuristic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph

__all__ = [
    "PartitionQuality",
    "partition_quality",
    "random_partition",
    "contiguous_partition",
    "bfs_partition",
    "apply_partition",
]


@dataclass(frozen=True)
class PartitionQuality:
    """Edge-cut metrics of one vertex partitioning."""

    num_parts: int
    cut_edges: int  #: edges whose endpoints sit in different parts
    cut_fraction: float
    imbalance: float  #: max part size / ideal part size

    def as_dict(self) -> dict:
        return {
            "parts": self.num_parts,
            "cut_edges": self.cut_edges,
            "cut_fraction": round(self.cut_fraction, 4),
            "imbalance": round(self.imbalance, 3),
        }


def _check_assignment(graph: DiGraph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (graph.num_vertices,):
        raise ValueError("assignment must have one entry per vertex")
    if parts.size and (parts.min() < 0 or parts.max() >= num_parts):
        raise ValueError(f"part ids must lie in [0, {num_parts})")
    return parts


def partition_quality(graph: DiGraph, parts: np.ndarray, num_parts: int) -> PartitionQuality:
    """Cut size and balance of a vertex→part assignment."""
    parts = _check_assignment(graph, parts, num_parts)
    if graph.num_edges:
        cut = int(np.count_nonzero(parts[graph.edge_src] != parts[graph.edge_dst]))
        frac = cut / graph.num_edges
    else:
        cut, frac = 0, 0.0
    sizes = np.bincount(parts, minlength=num_parts) if parts.size else np.zeros(num_parts)
    ideal = max(1.0, graph.num_vertices / num_parts)
    return PartitionQuality(
        num_parts=num_parts,
        cut_edges=cut,
        cut_fraction=frac,
        imbalance=float(sizes.max() / ideal) if graph.num_vertices else 1.0,
    )


def random_partition(
    graph: DiGraph, num_parts: int, *, seed: int = 0
) -> np.ndarray:
    """Uniformly random balanced assignment (the baseline)."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    # Balanced: a shuffled round-robin.
    parts = np.arange(n, dtype=np.int64) % num_parts
    rng.shuffle(parts)
    return parts


def contiguous_partition(graph: DiGraph, num_parts: int) -> np.ndarray:
    """Equal label ranges — what block dispatch already does."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_vertices
    bounds = np.linspace(0, n, num_parts + 1)
    return np.searchsorted(bounds, np.arange(n), side="right").astype(np.int64) - 1


def bfs_partition(
    graph: DiGraph, num_parts: int, *, seed: int = 0
) -> np.ndarray:
    """Grow parts by breadth-first expansion from random seeds.

    Each part claims up to ``ceil(n / num_parts)`` vertices; leftover
    unreached vertices fill the emptiest parts.  Cheap and usually far
    better than random on graphs with locality.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    parts = np.full(n, -1, dtype=np.int64)
    capacity = -(-n // num_parts)  # ceil
    order = rng.permutation(n)
    sizes = [0] * num_parts
    cursor = 0
    for part in range(num_parts):
        # pick the next unassigned seed
        while cursor < n and parts[order[cursor]] >= 0:
            cursor += 1
        if cursor >= n:
            break
        queue: deque[int] = deque([int(order[cursor])])
        while queue and sizes[part] < capacity:
            v = queue.popleft()
            if parts[v] >= 0:
                continue
            parts[v] = part
            sizes[part] += 1
            for u in graph.neighbors(v).tolist():
                if parts[u] < 0:
                    queue.append(u)
    for v in range(n):  # strays: emptiest part
        if parts[v] < 0:
            part = int(np.argmin(sizes))
            parts[v] = part
            sizes[part] += 1
    return parts


def apply_partition(
    graph: DiGraph, parts: np.ndarray, num_parts: int
) -> tuple[DiGraph, np.ndarray]:
    """Relabel so each part owns a contiguous label range.

    Returns ``(relabeled_graph, old_to_new)``; running the relabeled
    graph with block dispatch and ``DelayModel.distributed`` makes the
    thread groups coincide with the partition — cut edges become exactly
    the accesses paying the network delay.
    """
    parts = _check_assignment(graph, parts, num_parts)
    order = np.lexsort((np.arange(graph.num_vertices), parts))
    old_to_new = np.empty(graph.num_vertices, dtype=np.int64)
    old_to_new[order] = np.arange(graph.num_vertices)
    new_src = old_to_new[graph.edge_src]
    new_dst = old_to_new[graph.edge_dst]
    return DiGraph(graph.num_vertices, new_src, new_dst), old_to_new
