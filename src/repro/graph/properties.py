"""Structural graph properties and reference computations.

These are engine-independent ground truths: degree statistics (Table I),
weakly connected components, reachability and shortest paths computed by
classic sequential algorithms.  The algorithm implementations executed by
the engines (:mod:`repro.algorithms`) are validated against these.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph

__all__ = [
    "GraphStats",
    "graph_stats",
    "weakly_connected_components",
    "num_weakly_connected_components",
    "bfs_levels",
    "dijkstra_distances",
    "is_weakly_connected",
]


@dataclass(frozen=True)
class GraphStats:
    """The per-graph summary row of the paper's Table I plus degree stats."""

    num_vertices: int
    num_edges: int
    avg_degree: float  # |E| / |V|
    max_out_degree: int
    max_in_degree: int
    num_self_loops: int
    num_components: int

    def as_row(self) -> dict:
        """Dict form used by the experiment harness when printing tables."""
        return {
            "V": self.num_vertices,
            "E": self.num_edges,
            "E/V": round(self.avg_degree, 2),
            "max_out": self.max_out_degree,
            "max_in": self.max_in_degree,
            "self_loops": self.num_self_loops,
            "WCC": self.num_components,
        }


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute the summary statistics of ``graph``."""
    n, m = graph.num_vertices, graph.num_edges
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    loops = int(np.count_nonzero(graph.edge_src == graph.edge_dst))
    return GraphStats(
        num_vertices=n,
        num_edges=m,
        avg_degree=(m / n) if n else 0.0,
        max_out_degree=int(out_deg.max()) if n else 0,
        max_in_degree=int(in_deg.max()) if n else 0,
        num_self_loops=loops,
        num_components=num_weakly_connected_components(graph),
    )


def weakly_connected_components(graph: DiGraph) -> np.ndarray:
    """Label each vertex with the smallest vertex id in its weak component.

    This is the ground truth for the paper's WCC algorithm, whose
    converged state assigns every vertex (and edge) the minimum label of
    its component.  Implemented as a union–find over edge endpoints.
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, int(parent[x])
        return root

    for u, v in zip(graph.edge_src.tolist(), graph.edge_dst.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            # Union by smaller id so roots are already component minima.
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv
    return np.array([find(v) for v in range(n)], dtype=np.int64)


def num_weakly_connected_components(graph: DiGraph) -> int:
    if graph.num_vertices == 0:
        return 0
    return int(np.unique(weakly_connected_components(graph)).size)


def is_weakly_connected(graph: DiGraph) -> bool:
    return num_weakly_connected_components(graph) <= 1


def bfs_levels(graph: DiGraph, source: int) -> np.ndarray:
    """Directed BFS hop counts from ``source``; unreachable = +inf.

    Ground truth for the paper's BFS (SSSP with unit weights).
    """
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    if n == 0:
        return dist
    dist[source] = 0.0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.out_neighbors(u).tolist():
            if dist[v] == np.inf:
                dist[v] = du + 1.0
                queue.append(v)
    return dist


def dijkstra_distances(graph: DiGraph, source: int, weights: np.ndarray) -> np.ndarray:
    """Single-source shortest paths with non-negative edge ``weights``.

    ``weights`` is indexed by edge id.  Ground truth for the paper's SSSP.
    """
    if weights.shape[0] != graph.num_edges:
        raise ValueError("weights must have one entry per edge")
    if graph.num_edges and float(weights.min()) < 0:
        raise ValueError("Dijkstra requires non-negative weights")
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    if n == 0:
        return dist
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        du, u = heapq.heappop(heap)
        if du > dist[u]:
            continue
        nbrs, eids = graph.out_edges(u)
        for v, e in zip(nbrs.tolist(), eids.tolist()):
            nd = du + float(weights[e])
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
