"""Structured run telemetry (observability spine).

Every claim the paper makes — conflict mix (Lemmas 1 and 2), per-thread
work skew (the barrier max of Fig. 3), frontier trajectory, run-to-run
variation — is a statement about *what happened during a run*.  This
package makes that evidence a first-class artifact instead of scattered
counters: a :class:`Telemetry` sink records one
:class:`IterationSpan` per engine iteration (wall time, active count,
per-thread updates/reads/writes, conflict counts by Lemma-1/Lemma-2
class, next-frontier size, engine-specific extras), plus named
counters/gauges and ad-hoc events (e.g. the vectorized dispatch's
fallback reasons).  Traces round-trip through JSONL
(:func:`read_trace` / :func:`stats_from_trace`) and render as a human
table (:meth:`Telemetry.summary`).

The sink is opt-in: engines guard every recording site with a single
``if sink is not None`` per iteration, so a disabled run pays one
pointer comparison per barrier — nothing per update or edge access.
"""

from .telemetry import Counter, Gauge, IterationSpan, Telemetry
from .trace import read_trace, stats_from_trace, write_trace

__all__ = [
    "Counter",
    "Gauge",
    "IterationSpan",
    "Telemetry",
    "read_trace",
    "stats_from_trace",
    "write_trace",
]
