"""Structured run telemetry (observability spine).

Every claim the paper makes — conflict mix (Lemmas 1 and 2), per-thread
work skew (the barrier max of Fig. 3), frontier trajectory, run-to-run
variation — is a statement about *what happened during a run*.  This
package makes that evidence a first-class artifact instead of scattered
counters: a :class:`Telemetry` sink records one
:class:`IterationSpan` per engine iteration (wall time, active count,
per-thread updates/reads/writes, conflict counts by Lemma-1/Lemma-2
class, next-frontier size, engine-specific extras), plus named
counters/gauges and ad-hoc events (e.g. the vectorized dispatch's
fallback reasons).  Traces round-trip through JSONL
(:func:`read_trace` / :func:`stats_from_trace`) and render as a human
table (:meth:`Telemetry.summary`).

The sink is opt-in: engines guard every recording site with a single
``if sink is not None`` per iteration, so a disabled run pays one
pointer comparison per barrier — nothing per update or edge access.

Aggregates say *how much*; the :class:`Recorder` flight recorder
(``run(..., record=...)``) says *where and why*: per-event race
provenance — which write won each contended edge, which values were
lost, and the Defs. 1–3 order that decided it — consumed by the
divergence explainer in :mod:`repro.analysis.explain` and the
``repro trace`` CLI.  :func:`lint_trace` / :func:`summarize_trace`
validate and condense any recorded trace.
"""

from .merge import merge_worker_traces, phase_report, phase_table
from .metrics import (
    PHASES,
    MetricsRegistry,
    PhaseClock,
    peak_rss_bytes,
    record_iteration_metrics,
)
from .recorder import RECORD_POLICIES, Recorder
from .telemetry import Counter, Gauge, IterationSpan, Telemetry
from .trace import (
    lint_trace,
    read_trace,
    stats_from_trace,
    stitch_traces,
    summarize_trace,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "IterationSpan",
    "MetricsRegistry",
    "PHASES",
    "PhaseClock",
    "RECORD_POLICIES",
    "Recorder",
    "Telemetry",
    "lint_trace",
    "merge_worker_traces",
    "peak_rss_bytes",
    "phase_report",
    "phase_table",
    "read_trace",
    "record_iteration_metrics",
    "stats_from_trace",
    "stitch_traces",
    "summarize_trace",
    "write_trace",
]
