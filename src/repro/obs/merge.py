"""Merging per-worker trace segments into one coherent trace.

The process backends (:class:`~repro.engine.nondet_parallel.ParallelEngine`
and the out-of-core pool) run one OS process per model thread.  The
master's :class:`~repro.obs.telemetry.Telemetry` sink sees every
iteration span, but wall-clock timestamps taken *inside* the workers are
incomparable across processes — each process has its own
``perf_counter`` origin and scheduling jitter, so "sort by time" would
produce a different interleaving on every run.

What *is* totally ordered and shared is the barrier protocol: every
worker crosses the same iteration barriers in the same order, and both
sides can count crossings independently — the master from the fix-point
rounds it drove, each worker from the waits it performed.  That count is
the **barrier epoch**, and ``(iteration, epoch, worker)`` is a merge key
every participant computes identically with no clocks involved.  Sorting
worker spans on it yields one canonical interleaving: merging the same
segments twice gives byte-identical output (the determinism row in
DESIGN.md).

Worker segments are ordinary JSONL streams read through
:func:`~repro.obs.trace.read_trace`, so the torn-final-line tolerance
applies to them too: a SIGKILLed worker's half-written last record
becomes a ``{"type": "truncated"}`` marker, which the merge converts to
a ``worker_segment_truncated`` event (the *merged* trace reserves a
trailing ``truncated`` marker for the master stream).

The merged trace stays valid for every existing reader: ``worker_span``
records are an unknown type to ``stats_from_trace`` /
``summarize_trace`` / ``lint_trace``, which pass them through untouched,
and the master's iteration spans keep their original relative order.
"""

from __future__ import annotations

import json
import os
import re

from .metrics import PHASES
from .trace import read_trace

__all__ = [
    "merge_worker_traces",
    "phase_report",
    "phase_table",
    "worker_segment_path",
]

_SEGMENT_RE = re.compile(r"^worker-(\d+)\.jsonl$")


def worker_segment_path(worker_dir: str, worker: int) -> str:
    """The canonical segment path for OS worker ``worker``."""
    return os.path.join(worker_dir, f"worker-{worker}.jsonl")


def find_worker_segments(worker_dir: str) -> list[tuple[int, str]]:
    """``(worker_id, path)`` pairs for every segment in ``worker_dir``."""
    if not os.path.isdir(worker_dir):
        return []
    out = []
    for name in os.listdir(worker_dir):
        m = _SEGMENT_RE.match(name)
        if m:
            out.append((int(m.group(1)), os.path.join(worker_dir, name)))
    out.sort()
    return out


def merge_worker_traces(
    master_path: str,
    worker_dir: str | None = None,
    out_path: str | None = None,
) -> list[dict]:
    """Interleave worker segments with the master trace.

    Parameters
    ----------
    master_path:
        The master JSONL trace written by the run's telemetry sink.
    worker_dir:
        Directory of ``worker-<w>.jsonl`` segments.  Defaults to
        ``master_path + ".workers"`` — the layout ``--trace-workers``
        produces.
    out_path:
        When given, the merged record list is also written there as
        JSONL.

    Returns the merged record list.  Worker records for iteration *i*
    (sorted by ``(epoch, worker)``) precede the master's iteration-*i*
    span, mirroring execution order: workers finish their barrier
    rounds before the master commits the span.  Worker records beyond
    the master's last span (a crashed master) and truncation events are
    placed before the master's terminal ``run_end``/``truncated``
    record.
    """
    if worker_dir is None:
        worker_dir = master_path + ".workers"
    master = read_trace(master_path)

    by_iter: dict[int, list[tuple]] = {}
    preamble: list[dict] = []
    tail: list[dict] = []
    for wid, seg_path in find_worker_segments(worker_dir):
        for rec in read_trace(seg_path):
            kind = rec.get("type")
            if kind == "worker_span":
                key = (int(rec.get("epoch", 0)), int(rec.get("worker", wid)))
                by_iter.setdefault(int(rec.get("iteration", 0)), []).append(
                    (key, rec))
            elif kind == "truncated":
                # A torn final line in a worker segment (SIGKILL mid
                # write).  The merged trace keeps a trailing
                # ``truncated`` marker exclusively for the master
                # stream, so surface the worker's as an event.
                tail.append({"type": "event",
                             "name": "worker_segment_truncated",
                             "worker": wid, "line": rec.get("line")})
            else:
                preamble.append(rec)

    merged: list[dict] = []
    emitted: set[int] = set()

    def flush_iteration(i: int) -> None:
        emitted.add(i)
        for _, rec in sorted(by_iter.get(i, ()), key=lambda kr: kr[0]):
            merged.append(rec)

    for rec in master:
        kind = rec.get("type")
        if kind == "iteration":
            flush_iteration(int(rec["iteration"]))
        elif kind in ("run_end", "truncated"):
            # Leftovers: iterations the master never recorded a span
            # for (it died first), then worker truncation events.
            for i in sorted(by_iter):
                if i not in emitted:
                    flush_iteration(i)
            merged.extend(tail)
            tail = []
        merged.append(rec)
        if kind == "run_start" and preamble:
            merged.extend(preamble)
            preamble = []
    # Master trace with no terminal record at all (still live, or torn
    # exactly at a line boundary): append whatever remains.
    merged.extend(preamble)
    for i in sorted(by_iter):
        if i not in emitted:
            flush_iteration(i)
    merged.extend(tail)

    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            for rec in merged:
                json.dump(rec, fh, separators=(",", ":"))
                fh.write("\n")
    return merged


# ---------------------------------------------------------------------------
# Phase reporting (shared by `repro top` and `repro report --phases`)
# ---------------------------------------------------------------------------

def phase_report(records) -> dict:
    """Condense a (merged or master-only) trace into a phase breakdown.

    Returns ``{"meta", "iterations", "totals", "phases", "workers"}``
    where ``iterations`` is a list of per-iteration rows::

        {"iteration", "wall_time_s", "num_active", "frontier_size",
         "conflicts", "phases": {phase: s}, "peak_rss_bytes",
         "workers": {wid: {phase: s}}}

    Per-worker rows come from ``worker_span`` records when present
    (merged trace) and fall back to the span's folded
    ``extra["worker_phases"]`` (master-only trace), so both inputs
    yield per-worker ``barrier_wait``.
    """
    meta: dict = {}
    rows: list[dict] = []
    by_iter: dict[int, dict] = {}
    worker_ids: set[int] = set()

    for rec in records:
        kind = rec.get("type")
        if kind == "run_start":
            meta = {k: v for k, v in rec.items() if k != "type"}
        elif kind == "worker_span":
            wid = int(rec.get("worker", 0))
            worker_ids.add(wid)
            row = by_iter.setdefault(int(rec.get("iteration", 0)),
                                     {"workers": {}})
            row["workers"][wid] = {
                k: float(v) for k, v in (rec.get("phases") or {}).items()}
        elif kind == "iteration":
            i = int(rec["iteration"])
            extra = rec.get("extra") or {}
            row = by_iter.setdefault(i, {"workers": {}})
            row.update(
                iteration=i,
                wall_time_s=float(rec.get("wall_time_s", 0.0)),
                num_active=int(rec.get("num_active", 0)),
                frontier_size=int(rec.get("frontier_size", 0)),
                conflicts=(int(rec.get("read_write", 0))
                           + int(rec.get("write_write", 0))),
                phases={k: float(v)
                        for k, v in (extra.get("phases") or {}).items()},
                peak_rss_bytes=extra.get("peak_rss_bytes"),
            )
            folded = extra.get("worker_phases")
            if folded:
                for wid, phases in enumerate(folded):
                    worker_ids.add(wid)
                    row["workers"].setdefault(
                        wid, {k: float(v) for k, v in phases.items()})

    for i in sorted(by_iter):
        row = by_iter[i]
        if "iteration" not in row:  # worker spans with no master span
            row.update(iteration=i, wall_time_s=0.0, num_active=0,
                       frontier_size=0, conflicts=0, phases={},
                       peak_rss_bytes=None)
        rows.append(row)

    phase_names = [p for p in PHASES
                   if any(p in r["phases"] or
                          any(p in w for w in r["workers"].values())
                          for r in rows)]
    totals = {
        "wall_time_s": sum(r["wall_time_s"] for r in rows),
        "conflicts": sum(r["conflicts"] for r in rows),
        "phases": {p: sum(r["phases"].get(p, 0.0) for r in rows)
                   for p in phase_names},
        "worker_phases": {
            w: {p: sum(r["workers"].get(w, {}).get(p, 0.0) for r in rows)
                for p in phase_names}
            for w in sorted(worker_ids)
        },
    }
    return {"meta": meta, "iterations": rows, "totals": totals,
            "phases": phase_names, "workers": sorted(worker_ids)}


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def phase_table(report: dict, *, last: int | None = None) -> str:
    """Render a :func:`phase_report` as a fixed-width text table.

    ``last`` keeps only the trailing *n* iteration rows (the live
    ``repro top`` view); totals always cover the whole report.
    """
    phases = report["phases"]
    rows = report["iterations"]
    if last is not None and len(rows) > last:
        rows = rows[-last:]
    cols = (["iter", "active", "frontier", "conf", "wall_ms"]
            + [f"{p}_ms" for p in phases])
    table = []
    for r in rows:
        table.append([str(r["iteration"]), str(r["num_active"]),
                      str(r["frontier_size"]), str(r["conflicts"]),
                      _ms(r["wall_time_s"])]
                     + [_ms(r["phases"].get(p, 0.0)) for p in phases])
    tot = report["totals"]
    table.append(["total", "", "", str(tot["conflicts"]),
                  _ms(tot["wall_time_s"])]
                 + [_ms(tot["phases"].get(p, 0.0)) for p in phases])

    widths = [max(len(c), *(len(r[i]) for r in table))
              for i, c in enumerate(cols)]
    lines = ["  ".join(c.rjust(widths[i]) for i, c in enumerate(cols)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(cell.rjust(widths[i])
                           for i, cell in enumerate(row)) for row in table)

    wtot = tot.get("worker_phases") or {}
    if wtot:
        lines.append("")
        lines.append("per-worker totals (ms):")
        wcols = ["worker"] + phases
        wtable = [[f"w{w}"] + [_ms(wtot[w].get(p, 0.0)) for p in phases]
                  for w in sorted(wtot)]
        wwidths = [max(len(c), *(len(r[i]) for r in wtable))
                   for i, c in enumerate(wcols)]
        lines.append("  ".join(c.rjust(wwidths[i])
                               for i, c in enumerate(wcols)))
        lines.append("  ".join("-" * w for w in wwidths))
        lines.extend("  ".join(cell.rjust(wwidths[i])
                               for i, cell in enumerate(row))
                     for row in wtable)
        busy = [(w, sum(v for p, v in wtot[w].items()
                        if p != "barrier_wait")) for w in sorted(wtot)]
        if busy and max(b for _, b in busy) > 0:
            avg = sum(b for _, b in busy) / len(busy)
            peak = max(b for _, b in busy)
            lines.append(f"worker skew (max busy / mean busy): "
                         f"{peak / avg:.2f}x" if avg > 0 else "")
    return "\n".join(lines)
