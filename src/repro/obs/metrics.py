"""Labeled metrics registry and the phase-timer clock.

:class:`~repro.obs.telemetry.Telemetry` answers "what happened during
*this* run" — a span per iteration, buffered or streamed.  This module
answers the complementary operational questions: *where does the time
go* (fixed phase timers, see :data:`PHASES`) and *what are the standing
totals* across runs and across processes (labeled counters, gauges, and
fixed-bucket histograms, Prometheus-style).

Design constraints, matching the telemetry contract:

1. **Near-zero cost when disabled.**  Engines hold a ``metrics``
   reference that is ``None`` by default; every recording site runs at
   iteration granularity (never per update or per edge), behind one
   ``if metrics is not None``.  A perfsmoke floor bounds the attached
   cost at ≤ 1.05× of a bare run.
2. **Mergeable across processes.**  A registry serializes to a plain
   JSON :meth:`~MetricsRegistry.snapshot` and merges snapshots from
   other processes with well-defined semantics: counters and histogram
   buckets are **summed** (they carry deltas/totals), gauges are
   **last-write-wins** (they carry point-in-time readings) — so
   per-worker gauges should carry a ``worker`` label instead of relying
   on merge order.  The process-backend master applies exactly these
   semantics when it folds worker counter deltas at the commit barrier.
3. **Exposition, not enforcement.**  :meth:`to_prometheus` renders the
   standard text format; :meth:`to_json` the same data as JSON; and
   :meth:`Telemetry.metrics_snapshot` embeds a ``{"type": "metrics"}``
   record in a JSONL trace stream, which every trace reader
   (``read_trace`` / ``stats_from_trace`` / ``lint_trace``) passes
   through untouched — unknown record types are forward-compatible by
   design.

Phase timers
------------
The engines account each iteration's wall time to a fixed phase
vocabulary (:data:`PHASES`) via a :class:`PhaseClock` — contiguous laps
of one monotonic clock, so the per-iteration phase dict sums to the
span's wall time up to a handful of uninstrumented statements (the
acceptance bound is 5%).  ``shard_io`` is special: file I/O happens
*inside* other phases, so the out-of-core runner measures it separately
(:class:`IOStats` accumulates seconds) and the clock re-assigns it out
of the enclosing lap with :meth:`PhaseClock.split` — phases stay
disjoint and the sum invariant holds.
"""

from __future__ import annotations

import bisect
import json
import resource
import sys
import time

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "PHASES",
    "Histogram",
    "LabeledCounter",
    "LabeledGauge",
    "MetricsRegistry",
    "PhaseClock",
    "peak_rss_bytes",
    "record_iteration_metrics",
]

#: The fixed phase vocabulary, in canonical display order.
#:
#: ``plan_build``    dispatch plan / Defs. 1–3 predicate construction
#: ``gather``        dense pull pass(es): kernel over the active set
#: ``push_scatter``  sparse push pass(es): kernel over frontier edges
#: ``repair_pass``   fix-point repairs: seen recompute + dirty re-runs
#: ``lemma2_commit`` commit barrier: Lemma-2 winners, conflict totals
#: ``barrier_wait``  blocked on an inter-process iteration barrier
#: ``shm_sync``      publishing plan/state into the shared segment
#: ``shard_io``      pread/pwrite traffic of the out-of-core files
#: ``delta_commit``  delta engine: fold pending Δ into (x, accum)
#: ``delta_propagate`` delta engine: scatter g(Δ) to neighbour residuals
#: ``mutate_repair`` delta engine: incremental repair of a mutation batch
PHASES = (
    "plan_build",
    "gather",
    "push_scatter",
    "repair_pass",
    "lemma2_commit",
    "barrier_wait",
    "shm_sync",
    "shard_io",
    "delta_commit",
    "delta_propagate",
    "mutate_repair",
)

#: Default histogram buckets for phase seconds (upper bounds; +Inf is
#: implicit).  Log-ish spacing from 0.1 ms to 30 s covers everything
#: from a scale-8 iteration to a scale-20 out-of-core sweep.
DEFAULT_TIME_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
)


def peak_rss_bytes() -> int:
    """Process-lifetime resident-set high-water mark, in bytes.

    ``ru_maxrss`` is monotone over the process life, so a per-iteration
    reading is "the peak so far", not the iteration's own footprint.
    Darwin reports bytes; Linux reports KiB.
    """
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(ru) * (1 if sys.platform == "darwin" else 1024)


class PhaseClock:
    """Contiguous phase laps of one monotonic clock.

    ``lap(phase)`` charges everything since the previous lap (or
    :meth:`start`) to ``phase``; because laps are contiguous, the drained
    dict sums to the bracketed wall time exactly.  ``split`` moves a
    separately-measured sub-interval (file I/O) from the phase that
    contained it into its own phase without breaking that invariant.
    """

    __slots__ = ("_t", "acc")

    def __init__(self):
        self.acc: dict[str, float] = {}
        self._t = time.perf_counter()

    def start(self) -> None:
        """Reset the lap origin (call at the top of each iteration)."""
        self._t = time.perf_counter()

    def lap(self, phase: str) -> None:
        now = time.perf_counter()
        self.acc[phase] = self.acc.get(phase, 0.0) + (now - self._t)
        self._t = now

    def add(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` measured elsewhere (no lap-origin change)."""
        self.acc[phase] = self.acc.get(phase, 0.0) + seconds

    def split(self, phase: str, sub_phase: str, seconds: float) -> None:
        """Re-assign ``seconds`` of the last ``phase`` lap to ``sub_phase``."""
        if seconds <= 0.0:
            return
        self.acc[phase] = self.acc.get(phase, 0.0) - seconds
        self.acc[sub_phase] = self.acc.get(sub_phase, 0.0) + seconds

    def drain(self) -> dict[str, float]:
        """Return the accumulated phase dict and reset the accumulator."""
        out = self.acc
        self.acc = {}
        self._t = time.perf_counter()
        return out


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class LabeledCounter:
    """Monotone counter for one ``(name, labels)`` series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n


class LabeledGauge:
    """Point-in-time measurement for one ``(name, labels)`` series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram for one ``(name, labels)`` series.

    ``buckets`` are upper bounds in strictly increasing order; a final
    +Inf bucket is implicit.  ``counts[i]`` is the number of
    observations with ``value <= buckets[i]`` **exclusive of smaller
    buckets** (per-bucket, not cumulative — exposition cumulates).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: dict, buckets):
        bs = tuple(float(b) for b in buckets)
        if not bs or any(b2 <= b1 for b1, b2 in zip(bs, bs[1:])):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing "
                f"and non-empty: {bs}")
        self.name = name
        self.labels = labels
        self.buckets = bs
        self.counts = [0] * (len(bs) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect.bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (ends at ``count``)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """A process-local set of labeled metric series.

    ``counter("x", mode="ne").inc()`` creates/looks up the series on
    first use; the ``(name, sorted-labels)`` pair is the identity.  A
    name must keep one metric kind (and, for histograms, one bucket
    layout) for its whole life — mixing kinds raises.
    """

    def __init__(self):
        self._series: dict[tuple, object] = {}
        self._kinds: dict[str, str] = {}
        self._buckets: dict[str, tuple] = {}

    # -- series access -------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict, factory):
        seen = self._kinds.get(name)
        if seen is None:
            self._kinds[name] = kind
        elif seen != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {seen}, "
                f"requested as a {kind}")
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = factory()
        return series

    def counter(self, name: str, **labels) -> LabeledCounter:
        return self._get("counter", name, labels,
                         lambda: LabeledCounter(name, labels))

    def gauge(self, name: str, **labels) -> LabeledGauge:
        return self._get("gauge", name, labels,
                         lambda: LabeledGauge(name, labels))

    def histogram(self, name: str, *, buckets=DEFAULT_TIME_BUCKETS,
                  **labels) -> Histogram:
        bs = tuple(float(b) for b in buckets)
        seen = self._buckets.get(name)
        if seen is None:
            self._buckets[name] = bs
        elif seen != bs:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{seen}, requested {bs}")
        return self._get("histogram", name, labels,
                         lambda: Histogram(name, labels, bs))

    def series(self):
        """All registered series, in deterministic (name, labels) order."""
        return [self._series[k] for k in sorted(self._series)]

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict:
        """The registry as one JSON-safe ``{"type": "metrics"}`` record.

        Embedding this in a JSONL trace is safe for every reader:
        ``stats_from_trace`` / ``summarize_trace`` / ``lint_trace`` pass
        unknown record types through untouched.
        """
        counters, gauges, histograms = [], [], []
        for s in self.series():
            if isinstance(s, LabeledCounter):
                counters.append({"name": s.name, "labels": dict(s.labels),
                                 "value": s.value})
            elif isinstance(s, LabeledGauge):
                gauges.append({"name": s.name, "labels": dict(s.labels),
                               "value": s.value})
            else:
                histograms.append({
                    "name": s.name, "labels": dict(s.labels),
                    "buckets": list(s.buckets), "counts": list(s.counts),
                    "sum": s.sum, "count": s.count,
                })
        return {"type": "metrics", "counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its snapshot) into this one.

        Counters and histogram buckets are summed; gauges are
        last-write-wins (the merged-in value overwrites).  This is the
        cross-process contract: workers ship snapshots (or the engines
        ship shared-array deltas), the master folds them, and per-worker
        series stay distinguishable only through labels.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for rec in snap.get("counters", ()):
            self.counter(rec["name"], **rec["labels"]).inc(rec["value"])
        for rec in snap.get("gauges", ()):
            self.gauge(rec["name"], **rec["labels"]).set(rec["value"])
        for rec in snap.get("histograms", ()):
            h = self.histogram(rec["name"], buckets=rec["buckets"],
                               **rec["labels"])
            counts = rec["counts"]
            if len(counts) != len(h.counts):
                raise ValueError(
                    f"histogram {rec['name']!r} snapshot has "
                    f"{len(counts)} buckets, registry has {len(h.counts)}")
            for i, c in enumerate(counts):
                h.counts[i] += int(c)
            h.sum += float(rec["sum"])
            h.count += int(rec["count"])

    # -- exposition ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        typed: set[str] = set()
        for s in self.series():
            kind = self._kinds[s.name]
            if s.name not in typed:
                lines.append(f"# TYPE {s.name} {kind}")
                typed.add(s.name)
            if isinstance(s, Histogram):
                cum = s.cumulative()
                for ub, c in zip(s.buckets, cum):
                    lines.append(
                        f"{s.name}_bucket"
                        f"{_prom_labels(s.labels, le=_prom_float(ub))} {c}")
                lines.append(
                    f"{s.name}_bucket{_prom_labels(s.labels, le='+Inf')} "
                    f"{s.count}")
                lines.append(
                    f"{s.name}_sum{_prom_labels(s.labels)} {_prom_float(s.sum)}")
                lines.append(
                    f"{s.name}_count{_prom_labels(s.labels)} {s.count}")
            else:
                lines.append(
                    f"{s.name}{_prom_labels(s.labels)} {_prom_float(s.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_float(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _prom_escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: dict, **extra: str) -> str:
    items = sorted({**{k: str(v) for k, v in labels.items()}, **extra}.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def record_iteration_metrics(metrics: MetricsRegistry, mode: str, *,
                             phases: dict | None, num_active: int,
                             frontier_size: int, read_write: int,
                             write_write: int,
                             wall_time_s: float) -> None:
    """One engine iteration's standing totals, at iteration granularity.

    Shared by all four nondeterministic backends so the series names
    stay uniform: phase seconds land in the
    ``repro_phase_seconds_total`` counters and the
    ``repro_phase_seconds`` histograms (labeled by phase and mode),
    iteration/update/conflict totals in ``repro_*_total``, the live
    frontier size and RSS peak in gauges.
    """
    metrics.counter("repro_iterations_total", mode=mode).inc()
    metrics.counter("repro_updates_total", mode=mode).inc(num_active)
    metrics.counter("repro_conflicts_total", mode=mode,
                    kind="read_write").inc(read_write)
    metrics.counter("repro_conflicts_total", mode=mode,
                    kind="write_write").inc(write_write)
    metrics.histogram("repro_iteration_seconds", mode=mode).observe(wall_time_s)
    metrics.gauge("repro_frontier_size", mode=mode).set(frontier_size)
    metrics.gauge("repro_peak_rss_bytes", mode=mode).set(peak_rss_bytes())
    if phases:
        for phase, dt in phases.items():
            metrics.counter("repro_phase_seconds_total", mode=mode,
                            phase=phase).inc(max(dt, 0.0))
            metrics.histogram("repro_phase_seconds", mode=mode,
                              phase=phase).observe(dt)
