"""Race-provenance flight recorder: *which* racy interleaving happened.

:class:`~repro.obs.telemetry.Telemetry` (PR 2) answers *how much* two
nondeterministic runs differ — per-iteration aggregates.  This module
answers *where and why*: when enabled via ``run(..., record=...)``, a
:class:`Recorder` logs each contended edge access as a **provenance
event** — the iteration, the edge, the writer/reader labels and threads,
the Definitions 1–3 classification of the racing pair (``before`` /
``after`` / ``concurrent``), the Lemma-1/Lemma-2 rule that resolved it,
the value committed, and the value(s) lost.  Two traces of the same
workload can then be aligned event by event and the first divergent race
walked forward to the final rankings it explains
(:mod:`repro.analysis.explain`).

Event kinds
-----------
``commit``
    One barrier commit of one edge field (Lemma 2): the winning writer,
    the committed value, and one ``lost`` entry per losing writer with
    its value and its Defs. 1–3 relation to the winner.
``read``
    One (reader task, writer task) pair racing on one edge field
    (Lemma 1), aggregated over the reader's ``count`` reads (all reads
    of one update task share its effective timestamp, so they classify
    identically): ``lemma1-fresh`` (writer ``≺`` reader — the new value
    was observed), ``lemma1-stale`` (concurrent — the old value was
    observed), or ``lemma1-old`` (reader ``≺`` writer — ordinary old
    read, no race).
``write``
    A single committed write from engines whose executions admit no
    observable race resolution: the deterministic engines record their
    in-place writes (policy ``"all"`` only), and the real-thread backend
    records each write as it lands with ``order="unobserved"`` —
    classifying a real race would require watching it, which would
    change it.

Sampling policies
-----------------
``"conflicts"`` (default)
    Keep only events whose racing pair spans two threads — the actual
    nondeterminism.  Uncontended commits and same-thread pairs drop.
``"all"``
    Keep every event (uncontended commits carry ``rule="uncontended"``).
``"reservoir"``
    Per-``(field, edge)`` reservoir of at most ``reservoir_k`` events
    (Algorithm R, seeded), so a hot edge cannot flood the trace; sampled
    events are flushed, in deterministic order, at ``end_run``.

Cost contract (matches the PR 2 telemetry contract): a disabled
recorder (``record=None``) costs the engines one pointer check per
*barrier* — the simulated engines emit provenance from access records
they already keep, recomputing visibility at commit time instead of
hooking the read path.  Only the always-direct stores (Gauss–Seidel,
chromatic, threads, pure-async) pay one pointer comparison per write
when disabled.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Any

import numpy as np

__all__ = ["Recorder", "RECORD_POLICIES"]

#: Valid sampling policies, in documentation order.
RECORD_POLICIES = ("conflicts", "all", "reservoir")

#: Largest vertex count for which ``end_run`` embeds the final ranking.
_MAX_RANKING = 65_536


class Recorder:
    """Event-level provenance sink for one engine run.

    Parameters
    ----------
    policy:
        Sampling policy, one of :data:`RECORD_POLICIES`.
    reservoir_k:
        Per-edge sample size under ``policy="reservoir"``.
    reads:
        Record Lemma-1 read provenance (pairs of reader/writer tasks) in
        addition to Lemma-2 commits.  Requires the nondeterministic
        engine to keep its detailed access log for the run.
    trace_path:
        Stream records to this JSONL file as they are emitted (reservoir
        samples are flushed at ``end_run``).
    seed:
        Seed of the reservoir-sampling stream; with identical event
        streams (e.g. the object engine vs the vectorized fast path on
        one schedule) identical seeds keep identical samples.

    Like a :class:`~repro.obs.telemetry.Telemetry` sink, a recorder is
    one-run-scoped; call :meth:`reset` before reuse.
    """

    def __init__(
        self,
        *,
        policy: str = "conflicts",
        reservoir_k: int = 32,
        reads: bool = True,
        trace_path: str | None = None,
        seed: int = 0,
    ):
        if policy not in RECORD_POLICIES:
            raise ValueError(
                f"unknown recorder policy {policy!r}; choose from {RECORD_POLICIES}"
            )
        if reservoir_k < 1:
            raise ValueError("reservoir_k must be >= 1")
        self.policy = policy
        self.reservoir_k = int(reservoir_k)
        self._reads = bool(reads)
        self._trace_path = trace_path
        self._seed = seed
        self._fh: IO[str] | None = None
        self._trace_opened = False
        # The real-thread backend emits from racing workers.
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, 5]))
        self.records: list[dict] = []  #: every emitted record, in order
        self.events: list[dict] = []  #: the provenance subset of ``records``
        self.dropped = 0  #: events rejected by the sampling policy
        self.offered = 0  #: events offered by the engines before sampling
        self.run_meta: dict | None = None
        self.run_summary: dict | None = None
        # policy="reservoir": (field, eid) -> [(seq, event), ...] samples.
        self._reservoir: dict[tuple[str, int], list[tuple[int, dict]]] = {}
        self._seen: dict[tuple[str, int], int] = {}
        self._seq = 0

    # -- engine-facing configuration ------------------------------------
    @property
    def wants_reads(self) -> bool:
        """Should engines derive Lemma-1 read provenance for this run?"""
        return self._reads

    @property
    def conflicts_only(self) -> bool:
        """May engines pre-filter to cross-thread races before offering?"""
        return self.policy == "conflicts"

    @property
    def records_writes(self) -> bool:
        """Should per-write provenance (deterministic/threads stores) flow?"""
        return self.policy != "conflicts"

    # -- record emission ------------------------------------------------
    def _emit(self, record: dict) -> None:
        self.records.append(record)
        if record.get("type") == "provenance":
            self.events.append(record)
        if self._trace_path is not None:
            if self._fh is None:
                # First open truncates; later reopens append so a
                # supervised restart extends the trace of the attempt it
                # recovers instead of erasing it.
                self._fh = open(self._trace_path,
                                "a" if self._trace_opened else "w",
                                encoding="utf-8")
                self._trace_opened = True
            json.dump(record, self._fh, separators=(",", ":"), default=_jsonable)
            self._fh.write("\n")
            self._fh.flush()

    def begin_run(self, **meta: Any) -> None:
        """Mark the start of a run; ``meta`` is free-form."""
        self.run_meta = meta
        self._emit(
            {
                "type": "run_start",
                **meta,
                "recorder_policy": self.policy,
                "recorder_reads": self._reads,
            }
        )

    def begin_engine_run(self, mode: str, program: Any, config: Any) -> None:
        """:meth:`begin_run` with the standard engine metadata fields."""
        self.begin_run(
            mode=mode,
            program=type(program).__name__,
            threads=config.threads,
            seed=config.seed,
            delay=config.delay,
            jitter=config.jitter,
            atomicity=config.atomicity.value,
            dispatch=config.dispatch.value,
            max_iterations=config.max_iterations,
        )

    # -- provenance event entry points ----------------------------------
    def commit_event(
        self,
        *,
        iteration: int,
        field: str,
        eid: int,
        writer: int,
        writer_thread: int,
        value: float,
        lost: tuple[dict, ...] | list[dict] = (),
        rule: str = "lemma2",
    ) -> None:
        """One barrier commit of one edge field (Lemma 2).

        ``lost`` carries one ``{"vid", "thread", "value", "order"}`` dict
        per losing writer; ``order`` is the loser's Defs. 1–3 relation to
        the winner (``before`` = the winner could see the loser's write,
        ``after`` = vice versa, ``concurrent`` = neither).
        """
        event = {
            "type": "provenance",
            "kind": "commit",
            "iteration": iteration,
            "field": field,
            "eid": eid,
            "writer": writer,
            "writer_thread": writer_thread,
            "value": value,
            "rule": rule,
            "lost": list(lost),
        }
        conflict = any(entry["thread"] != writer_thread for entry in event["lost"])
        self._offer(event, conflict)

    def read_event(
        self,
        *,
        iteration: int,
        field: str,
        eid: int,
        reader: int,
        reader_thread: int,
        writer: int,
        writer_thread: int,
        count: int,
        order: str,
        rule: str,
        value: float,
    ) -> None:
        """One racing (reader, writer) task pair on one edge field (Lemma 1)."""
        event = {
            "type": "provenance",
            "kind": "read",
            "iteration": iteration,
            "field": field,
            "eid": eid,
            "reader": reader,
            "reader_thread": reader_thread,
            "writer": writer,
            "writer_thread": writer_thread,
            "count": count,
            "order": order,
            "rule": rule,
            "value": value,
        }
        self._offer(event, reader_thread != writer_thread)

    def write_event(
        self,
        *,
        iteration: int,
        field: str,
        eid: int,
        writer: int,
        writer_thread: int,
        value: float,
        rule: str,
        order: str = "unobserved",
    ) -> None:
        """A single committed write (deterministic engines, threads backend)."""
        event = {
            "type": "provenance",
            "kind": "write",
            "iteration": iteration,
            "field": field,
            "eid": eid,
            "writer": writer,
            "writer_thread": writer_thread,
            "value": value,
            "order": order,
            "rule": rule,
        }
        self._offer(event, False)

    def event(self, name: str, **fields: Any) -> None:
        """Ad-hoc named observation (mirrors ``Telemetry.event``)."""
        with self._lock:
            self._emit({"type": "event", "name": name, **fields})

    def repair_event(
        self,
        *,
        iteration: int,
        batch: int,
        repair_mode: str,
        inserted: int,
        deleted: int,
        repaired_vertices: int,
        seeds=(),
        region_capped: bool = False,
    ) -> None:
        """One mutation batch repaired into a standing delta result.

        Provenance for the dynamic-graph workload: *which* conclusions a
        mutation invalidated.  ``seeds`` names (a bounded prefix of) the
        vertices whose values lost their support; ``repair_mode`` says
        how the engine recovered — ``reseed`` (invertible ⊕, pure delta
        adjustment), ``taint`` (bounded affected-region re-expansion),
        or ``full_restart`` (region exceeded the cap; honest recompute).
        """
        with self._lock:
            self._emit({
                "type": "repair",
                "iteration": iteration,
                "batch": batch,
                "repair_mode": repair_mode,
                "inserted": inserted,
                "deleted": deleted,
                "repaired_vertices": repaired_vertices,
                "seeds": [int(v) for v in seeds],
                "region_capped": bool(region_capped),
            })

    # -- sampling -------------------------------------------------------
    def _offer(self, event: dict, conflict: bool) -> None:
        with self._lock:
            self.offered += 1
            if self.policy == "conflicts" and not conflict:
                self.dropped += 1
                return
            if self.policy == "reservoir":
                self._offer_reservoir(event)
                return
            self._emit(event)

    def _offer_reservoir(self, event: dict) -> None:
        """Algorithm R per (field, eid): every event of a key has equal
        probability ``k / seen`` of surviving, so a hot edge's trace is a
        uniform sample of its history instead of a prefix."""
        key = (event["field"], event["eid"])
        seen = self._seen.get(key, 0) + 1
        self._seen[key] = seen
        samples = self._reservoir.setdefault(key, [])
        self._seq += 1
        if len(samples) < self.reservoir_k:
            samples.append((self._seq, event))
            return
        j = int(self._rng.integers(0, seen))
        if j < self.reservoir_k:
            self.dropped += 1  # the displaced sample
            samples[j] = (self._seq, event)
        else:
            self.dropped += 1

    def _flush_reservoir(self) -> None:
        if not self._reservoir:
            return
        kept = [item for samples in self._reservoir.values() for item in samples]
        kept.sort(key=lambda item: item[0])  # emission order, deterministic
        for _, event in kept:
            self._emit(event)
        self._reservoir = {}
        self._seen = {}

    # -- run end --------------------------------------------------------
    def end_run(self, result: Any = None) -> None:
        """Flush reservoir samples, append the run summary, close the trace.

        When ``result`` is a :class:`~repro.engine.result.RunResult` of a
        modestly sized graph, the summary embeds the final vertex
        ``ranking`` (descending score, the :func:`repro.analysis.ranking`
        order) — the hook the divergence explainer uses to connect
        recorded races to the paper's difference-degree metric.
        """
        with self._lock:
            self._flush_reservoir()
            summary: dict = {
                "type": "run_end",
                "provenance_events": len(self.events),
                "events_offered": self.offered,
                "events_dropped": self.dropped,
            }
            if result is not None:
                summary.update(
                    mode=result.mode,
                    converged=result.converged,
                    iterations=result.num_iterations,
                )
                ranking = _final_ranking(result)
                if ranking is not None:
                    summary["ranking"] = ranking
            self.run_summary = summary
            self._emit(summary)
            self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def reset(self) -> None:
        """Forget everything recorded; keep configuration (policy, path)."""
        self.close()
        self._trace_opened = False
        self.records = []
        self.events = []
        self.dropped = 0
        self.offered = 0
        self.run_meta = None
        self.run_summary = None
        self._reservoir = {}
        self._seen = {}
        self._seq = 0
        self._rng = np.random.default_rng(np.random.SeedSequence([self._seed, 5]))

    # -- consumption ----------------------------------------------------
    def export(self, path: str) -> None:
        """Write all buffered records to ``path`` as JSONL (post-hoc)."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.records:
                json.dump(rec, fh, separators=(",", ":"), default=_jsonable)
                fh.write("\n")

    def commits(self) -> list[dict]:
        """The recorded Lemma-2 commit events, in emission order."""
        return [e for e in self.events if e["kind"] == "commit"]


def _final_ranking(result: Any) -> list[int] | None:
    """Vertex ids of ``result`` ordered by descending score, or ``None``
    when the program has no primary output or the graph is too large to
    embed in a trace line."""
    from ..analysis.difference import ranking  # local: avoid package cycle

    try:
        scores = result.result()
    except Exception:
        return None
    if scores.ndim != 1 or scores.size > _MAX_RANKING:
        return None
    return [int(v) for v in ranking(scores)]


def _jsonable(obj: Any):
    """JSON fallback: enums by value, NumPy scalars by item."""
    value = getattr(obj, "value", None)
    if value is not None and isinstance(value, (str, int, float)):
        return value
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)
