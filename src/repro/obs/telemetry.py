"""The telemetry sink and its primitives.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Engines hold a ``telemetry``
   reference that is ``None`` by default; every recording site sits
   behind one ``if sink is not None`` per *iteration* (never per update
   or per edge access), so a disabled run pays one pointer comparison
   per barrier.
2. **The trace is the accounting.**  An iteration record carries exactly
   the fields of :class:`~repro.engine.result.IterationStats` (plus
   observability extras), so a JSONL trace re-read reconstructs the run
   profile bit for bit — the experiment drivers price *that*, which is
   how the paper tables and the telemetry agree by construction.
3. **Streaming.**  With ``trace_path`` set, records are appended (and
   flushed) as they happen, so a crashed or killed run leaves a usable
   partial trace.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import IO, Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.result import IterationStats, RunResult

__all__ = ["Counter", "Gauge", "IterationSpan", "Telemetry"]


@dataclass
class Counter:
    """Monotonically increasing named count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


@dataclass
class Gauge:
    """Named point-in-time measurement (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass(frozen=True)
class IterationSpan:
    """Everything observed about one engine iteration.

    The first five fields mirror
    :class:`~repro.engine.result.IterationStats`; the rest are the
    observability surface: wall time of the iteration body, the size of
    the frontier it scheduled (``|S_{n+1}|``), the iteration's conflict
    deltas split by the paper's two classes — ``read_write`` (Lemma 1)
    and ``write_write`` (Lemma 2) — and engine-specific ``extra`` facts
    (e.g. ``fixpoint_passes`` from the vectorized engine, ``num_colors``
    from the chromatic one).
    """

    iteration: int
    num_active: int
    updates_per_thread: tuple[int, ...]
    reads_per_thread: tuple[int, ...]
    writes_per_thread: tuple[int, ...]
    frontier_size: int
    wall_time_s: float = 0.0
    read_write: int = 0
    write_write: int = 0
    extra: dict = field(default_factory=dict)

    # -- conversions ---------------------------------------------------
    def to_record(self) -> dict:
        rec = {
            "type": "iteration",
            "iteration": self.iteration,
            "num_active": self.num_active,
            "updates_per_thread": list(self.updates_per_thread),
            "reads_per_thread": list(self.reads_per_thread),
            "writes_per_thread": list(self.writes_per_thread),
            "frontier_size": self.frontier_size,
            "wall_time_s": self.wall_time_s,
            "read_write": self.read_write,
            "write_write": self.write_write,
        }
        if self.extra:
            rec["extra"] = dict(self.extra)
        return rec

    @classmethod
    def from_record(cls, rec: dict) -> "IterationSpan":
        if rec.get("type") != "iteration":
            raise ValueError(f"not an iteration record: {rec.get('type')!r}")
        return cls(
            iteration=int(rec["iteration"]),
            num_active=int(rec["num_active"]),
            updates_per_thread=tuple(int(x) for x in rec["updates_per_thread"]),
            reads_per_thread=tuple(int(x) for x in rec["reads_per_thread"]),
            writes_per_thread=tuple(int(x) for x in rec["writes_per_thread"]),
            frontier_size=int(rec["frontier_size"]),
            wall_time_s=float(rec.get("wall_time_s", 0.0)),
            read_write=int(rec.get("read_write", 0)),
            write_write=int(rec.get("write_write", 0)),
            extra=dict(rec.get("extra", {})),
        )

    def to_stats(self) -> "IterationStats":
        from ..engine.result import IterationStats

        return IterationStats(
            iteration=self.iteration,
            num_active=self.num_active,
            updates_per_thread=list(self.updates_per_thread),
            reads_per_thread=list(self.reads_per_thread),
            writes_per_thread=list(self.writes_per_thread),
        )


class Telemetry:
    """Structured sink for one engine run.

    Parameters
    ----------
    trace_path:
        When given, every record is appended to this JSONL file as it is
        emitted (one JSON object per line) and flushed immediately.
    on_iteration:
        Optional progress callback ``on_iteration(span)`` fired after
        each iteration is recorded — the opt-in progress-bar hook.  It
        runs on the engine's thread; keep it cheap.
    worker_dir:
        When given alongside ``trace_path``, process-backend engines
        (``backend="process"``, out-of-core pools) direct each OS worker
        to stream its own JSONL segment (``worker-<w>.jsonl``) into this
        directory.  ``repro trace merge`` (:mod:`repro.obs.merge`)
        interleaves the segments with the master trace on
        (iteration, barrier-epoch) keys.  Single-process engines ignore
        it.

    A sink may be reused across runs only after :meth:`reset`; passing a
    fresh sink per run is the normal pattern.
    """

    def __init__(
        self,
        *,
        trace_path: str | None = None,
        on_iteration: Callable[[IterationSpan], None] | None = None,
        worker_dir: str | None = None,
    ):
        self._trace_path = trace_path
        self._on_iteration = on_iteration
        self.worker_dir = worker_dir
        self._fh: IO[str] | None = None
        self._trace_opened = False
        self.records: list[dict] = []
        self.spans: list[IterationSpan] = []
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.run_meta: dict | None = None
        self.run_summary: dict | None = None

    # -- primitives ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    @staticmethod
    def now() -> float:
        """Monotonic timestamp engines use to bracket an iteration."""
        return time.perf_counter()

    # -- record emission -----------------------------------------------
    def _emit(self, record: dict) -> None:
        self.records.append(record)
        if self._trace_path is not None:
            if self._fh is None:
                # First open truncates; later reopens append so a
                # supervised restart extends the trace of the attempt it
                # recovers instead of erasing it.
                self._fh = open(self._trace_path,
                                "a" if self._trace_opened else "w",
                                encoding="utf-8")
                self._trace_opened = True
            json.dump(record, self._fh, separators=(",", ":"), default=_jsonable)
            self._fh.write("\n")
            # Flush per record (iteration granularity): a killed run
            # still leaves a readable partial trace.
            self._fh.flush()

    def begin_run(self, **meta: Any) -> None:
        """Mark the start of an engine run; ``meta`` is free-form."""
        self.run_meta = meta
        self._emit({"type": "run_start", **meta})

    def begin_engine_run(self, mode: str, program: Any, config: Any) -> None:
        """:meth:`begin_run` with the standard engine metadata fields."""
        self.begin_run(
            mode=mode,
            program=type(program).__name__,
            threads=config.threads,
            seed=config.seed,
            delay=config.delay,
            jitter=config.jitter,
            atomicity=config.atomicity.value,
            dispatch=config.dispatch.value,
            max_iterations=config.max_iterations,
        )

    def event(self, name: str, **fields: Any) -> None:
        """Ad-hoc observation (e.g. vectorized-dispatch fallback reasons)."""
        self._emit({"type": "event", "name": name, **fields})

    def iteration(
        self,
        *,
        iteration: int,
        num_active: int,
        updates_per_thread,
        reads_per_thread,
        writes_per_thread,
        frontier_size: int,
        wall_time_s: float = 0.0,
        read_write: int = 0,
        write_write: int = 0,
        **extra: Any,
    ) -> None:
        """Record one iteration span (engines call this at each barrier)."""
        span = IterationSpan(
            iteration=iteration,
            num_active=num_active,
            updates_per_thread=tuple(int(x) for x in updates_per_thread),
            reads_per_thread=tuple(int(x) for x in reads_per_thread),
            writes_per_thread=tuple(int(x) for x in writes_per_thread),
            frontier_size=int(frontier_size),
            wall_time_s=float(wall_time_s),
            read_write=int(read_write),
            write_write=int(write_write),
            extra=extra,
        )
        self.spans.append(span)
        self._emit(span.to_record())
        if self._on_iteration is not None:
            # A progress callback is an observer, not a participant: a
            # bug in user code must not abort the engine iteration.  The
            # failure is recorded in the trace instead of propagating.
            try:
                self._on_iteration(span)
            except Exception as exc:
                self._emit(
                    {
                        "type": "event",
                        "name": "callback_error",
                        "iteration": span.iteration,
                        "error": repr(exc),
                    }
                )

    def metrics_snapshot(self, registry: Any) -> None:
        """Embed a metrics-registry snapshot in the trace stream.

        Engines call this just before :meth:`end_run` when a
        :class:`~repro.obs.metrics.MetricsRegistry` is attached, so the
        trace carries the run's standing totals as a
        ``{"type": "metrics"}`` record.  Trace readers treat unknown
        record types as pass-through, so the record is invisible to
        ``stats_from_trace`` and clean under ``lint_trace``.
        """
        self._emit(registry.snapshot())

    def end_run(self, result: "RunResult | None" = None) -> None:
        """Mark the end of a run, dump counters/gauges, close the trace."""
        summary: dict = {"type": "run_end"}
        if result is not None:
            summary.update(
                mode=result.mode,
                converged=result.converged,
                iterations=result.num_iterations,
                total_updates=result.total_updates,
                conflicts=result.conflicts.summary(),
            )
        if self.counters:
            summary["counters"] = {n: c.value for n, c in self.counters.items()}
        if self.gauges:
            summary["gauges"] = {n: g.value for n, g in self.gauges.items()}
        self.run_summary = summary
        self._emit(summary)
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def reset(self) -> None:
        """Forget everything recorded; keep configuration (path, callback)."""
        self.close()
        self._trace_opened = False
        self.records = []
        self.spans = []
        self.counters = {}
        self.gauges = {}
        self.run_meta = None
        self.run_summary = None

    # -- consumption ---------------------------------------------------
    def iteration_stats(self) -> "list[IterationStats]":
        """The recorded spans as engine :class:`IterationStats` rows.

        For a completed run these equal ``result.iterations`` exactly —
        the property the round-trip tests assert and the experiment
        drivers rely on.
        """
        return [s.to_stats() for s in self.spans]

    def export(self, path: str) -> None:
        """Write all buffered records to ``path`` as JSONL (post-hoc)."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.records:
                json.dump(rec, fh, separators=(",", ":"), default=_jsonable)
                fh.write("\n")

    def summary(self) -> str:
        """Human-readable per-iteration table of the recorded run."""
        header = ""
        if self.run_meta:
            parts = [f"{k}={v}" for k, v in self.run_meta.items()]
            header = "run: " + " ".join(parts)
        cols = ["iter", "active", "upd", "reads", "writes",
                "rw_conf", "ww_conf", "frontier", "wall_ms"]
        rows = []
        for s in self.spans:
            rows.append([
                str(s.iteration),
                str(s.num_active),
                str(sum(s.updates_per_thread)),
                str(sum(s.reads_per_thread)),
                str(sum(s.writes_per_thread)),
                str(s.read_write),
                str(s.write_write),
                str(s.frontier_size),
                f"{s.wall_time_s * 1e3:.3f}",
            ])
        totals = [
            "total",
            str(sum(s.num_active for s in self.spans)),
            str(sum(sum(s.updates_per_thread) for s in self.spans)),
            str(sum(sum(s.reads_per_thread) for s in self.spans)),
            str(sum(sum(s.writes_per_thread) for s in self.spans)),
            str(sum(s.read_write for s in self.spans)),
            str(sum(s.write_write for s in self.spans)),
            "",
            f"{sum(s.wall_time_s for s in self.spans) * 1e3:.3f}",
        ]
        table = rows + [totals] if rows else rows
        widths = [
            max(len(c), *(len(r[i]) for r in table)) if table else len(c)
            for i, c in enumerate(cols)
        ]
        lines = []
        if header:
            lines.append(header)
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(cols)))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(r))
            for r in table
        )
        if not rows:
            lines.append("(no iterations recorded)")
        return "\n".join(lines)


def _jsonable(obj: Any):
    """JSON fallback: enums by value, NumPy scalars by item."""
    value = getattr(obj, "value", None)
    if value is not None and isinstance(value, (str, int, float)):
        return value
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)
