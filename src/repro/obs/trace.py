"""JSONL trace reading/writing helpers.

A trace is a sequence of JSON objects, one per line, each tagged with a
``"type"`` field:

``run_start``
    Free-form run metadata (mode, program, threads, seed, ...).
``iteration``
    One :class:`~repro.obs.telemetry.IterationSpan` — the per-iteration
    work profile plus conflict/frontier/wall-time observations.
``event``
    Ad-hoc named observation (e.g. ``vectorized_fallback`` with its
    reasons list).
``run_end``
    Convergence verdict, totals, counter/gauge dumps.
``provenance``
    One flight-recorder race event (:mod:`repro.obs.recorder`):
    ``kind`` is ``commit`` / ``read`` / ``write``.
``truncated``
    Synthesized by :func:`read_trace` in place of a torn final line — a
    killed run leaves a partial record, which is a fact about the run,
    not a reader error.

The reader is deliberately tolerant: unknown record types pass through,
so traces stay forward-compatible as engines grow new observations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from .telemetry import IterationSpan, Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.result import IterationStats

__all__ = [
    "LintIssue",
    "lint_trace",
    "read_trace",
    "stats_from_trace",
    "stitch_traces",
    "summarize_trace",
    "write_trace",
]


def read_trace(path: str) -> list[dict]:
    """Load every record of a JSONL trace (blank lines skipped).

    A truncated *final* line — the signature a killed run leaves behind,
    since every writer in this package flushes whole lines — is reported
    as a ``{"type": "truncated", "line": <n>}`` marker record instead of
    an exception.  An invalid line anywhere *before* the end is still a
    hard error: that is corruption, not truncation.
    """
    records: list[dict] = []
    pending: tuple[int, json.JSONDecodeError] | None = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                bad_lineno, exc = pending
                raise ValueError(
                    f"{path}:{bad_lineno}: invalid trace line"
                ) from exc
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                # Defer: only fatal if another non-blank line follows.
                pending = (lineno, exc)
    if pending is not None:
        records.append({"type": "truncated", "line": pending[0]})
    return records


def stitch_traces(
    head: list[dict], tail: list[dict]
) -> tuple[list[dict], dict]:
    """Join a killed run's trace with the trace of its resumed continuation.

    A resumed run restarts from the last *barrier* checkpoint, but a hard
    kill (``SIGKILL``, power loss) usually lands mid-iteration, so the
    killed trace ends with a partial copy of the very iteration the
    resumed run replays in full.  Concatenating the two files therefore
    duplicates those events and ``trace diff`` against an uninterrupted
    run reports a spurious divergence.

    This drops from ``head`` every ``provenance``/``iteration`` record at
    or past the resume boundary (the smallest iteration ``tail`` records),
    along with truncation markers and any stray ``run_end``, then appends
    ``tail`` verbatim.  The result aligns event-for-event with an
    uninterrupted run of the same seed.  Returns ``(records, info)`` where
    ``info`` has the ``boundary`` iteration (``None`` if ``tail`` records
    no provenance) and the number of ``head`` records ``dropped``.
    """
    boundary = min(
        (r.get("iteration", 0) for r in tail if r.get("type") == "provenance"),
        default=None,
    )
    stitched: list[dict] = []
    dropped = 0
    for rec in head:
        rtype = rec.get("type")
        if rtype == "truncated" or (tail and rtype == "run_end"):
            dropped += 1
            continue
        if (
            boundary is not None
            and rtype in ("provenance", "iteration")
            and rec.get("iteration", 0) >= boundary
        ):
            dropped += 1
            continue
        stitched.append(rec)
    stitched.extend(tail)
    return stitched, {"boundary": boundary, "dropped": dropped}


def stats_from_trace(records: Iterable[dict]) -> "list[IterationStats]":
    """Rebuild the engine's per-iteration work profile from a trace.

    The result equals the originating run's ``RunResult.iterations``
    exactly — the round-trip property ``tests/test_obs_telemetry.py``
    asserts for every engine mode.
    """
    return [
        IterationSpan.from_record(rec).to_stats()
        for rec in records
        if rec.get("type") == "iteration"
    ]


def write_trace(telemetry: Telemetry, path: str) -> None:
    """Dump a (buffered) sink's records to ``path`` post-hoc."""
    telemetry.export(path)


@dataclass(frozen=True)
class LintIssue:
    """One problem :func:`lint_trace` found.

    ``severity`` is ``"error"`` (the trace is malformed or records an
    impossible event order) or ``"warning"`` (unusual but explicable —
    e.g. a truncation marker, which any killed run produces).  ``index``
    is the offending record's position in the record list, or ``-1`` for
    whole-trace problems.
    """

    severity: str
    index: int
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"record {self.index}" if self.index >= 0 else "trace"
        return f"{self.severity}: {where}: {self.message}"


_PROVENANCE_ORDERS = {"before", "after", "concurrent", "unobserved"}


def lint_trace(records: list[dict]) -> list[LintIssue]:
    """Validate a trace's structural and causal invariants.

    Checks, in order: non-emptiness, per-record ``type`` tags,
    ``run_start`` first, at most one ``run_end`` with nothing but a
    truncation marker after it, truncation markers only in final
    position, monotone iteration numbering (both ``iteration`` spans and
    ``provenance`` events), known provenance orders, a winner never
    listed among its own lost writes, and per-iteration commit
    uniqueness per ``(field, eid)`` — one barrier commits an edge once.
    """
    issues: list[LintIssue] = []
    if not records:
        return [LintIssue("error", -1, "empty trace")]
    end_index: int | None = None
    last_span = -1
    last_prov = -1
    commits_seen: set[tuple[int, str, int]] = set()
    for i, rec in enumerate(records):
        rtype = rec.get("type")
        if rtype is None:
            issues.append(LintIssue("error", i, "record has no 'type' field"))
            continue
        if i == 0 and rtype != "run_start":
            issues.append(
                LintIssue("warning", 0, f"trace starts with {rtype!r}, not 'run_start'")
            )
        if rtype == "truncated":
            if i != len(records) - 1:
                issues.append(
                    LintIssue("error", i, "truncation marker before end of trace")
                )
            else:
                issues.append(
                    LintIssue("warning", i, f"final line {rec.get('line')} truncated")
                )
            continue
        if end_index is not None:
            issues.append(
                LintIssue("error", i, f"{rtype!r} record after run_end")
            )
        if rtype == "run_end":
            if end_index is not None:
                issues.append(LintIssue("error", i, "multiple run_end records"))
            end_index = i
        elif rtype == "iteration":
            it = rec.get("iteration", -1)
            if it <= last_span:
                issues.append(
                    LintIssue(
                        "error", i,
                        f"iteration span {it} after span {last_span}: not increasing",
                    )
                )
            last_span = max(last_span, it)
        elif rtype == "provenance":
            it = rec.get("iteration", -1)
            if it < last_prov:
                issues.append(
                    LintIssue(
                        "error", i,
                        f"provenance iteration {it} after {last_prov}: went backwards",
                    )
                )
            last_prov = max(last_prov, it)
            kind = rec.get("kind")
            order = rec.get("order")
            if order is not None and order not in _PROVENANCE_ORDERS:
                issues.append(
                    LintIssue("error", i, f"impossible event order {order!r}")
                )
            if kind == "commit":
                for entry in rec.get("lost", ()):
                    o = entry.get("order")
                    if o not in _PROVENANCE_ORDERS:
                        issues.append(
                            LintIssue("error", i, f"impossible lost-write order {o!r}")
                        )
                    if entry.get("vid") == rec.get("writer"):
                        issues.append(
                            LintIssue(
                                "error", i,
                                "winner listed among its own lost writes",
                            )
                        )
                key = (it, rec.get("field", ""), rec.get("eid", -1))
                if key in commits_seen:
                    issues.append(
                        LintIssue(
                            "error", i,
                            f"duplicate commit of field={key[1]!r} eid={key[2]} "
                            f"in iteration {it}",
                        )
                    )
                commits_seen.add(key)
    if end_index is None and records[-1].get("type") != "truncated":
        issues.append(LintIssue("warning", -1, "no run_end record (run incomplete?)"))
    return issues


def summarize_trace(records: list[dict]) -> dict:
    """Condense a trace to the headline numbers the CLI prints."""
    meta = records[0] if records and records[0].get("type") == "run_start" else {}
    end = next((r for r in records if r.get("type") == "run_end"), None)
    kinds: dict[str, int] = {}
    rules: dict[str, int] = {}
    lost_values = 0
    cross_thread = 0
    iterations = -1
    for rec in records:
        if rec.get("type") == "iteration":
            iterations = max(iterations, rec.get("iteration", -1))
        if rec.get("type") != "provenance":
            continue
        kinds[rec["kind"]] = kinds.get(rec["kind"], 0) + 1
        rule = rec.get("rule")
        if rule:
            rules[rule] = rules.get(rule, 0) + 1
        if rec["kind"] == "commit":
            lost = rec.get("lost", ())
            lost_values += len(lost)
            if any(e.get("thread") != rec.get("writer_thread") for e in lost):
                cross_thread += 1
        elif rec["kind"] == "read":
            if rec.get("reader_thread") != rec.get("writer_thread"):
                cross_thread += 1
    summary = {
        "mode": meta.get("mode"),
        "program": meta.get("program"),
        "threads": meta.get("threads"),
        "seed": meta.get("seed"),
        "records": len(records),
        "provenance_events": sum(kinds.values()),
        "events_by_kind": dict(sorted(kinds.items())),
        "events_by_rule": dict(sorted(rules.items())),
        "lost_values": lost_values,
        "cross_thread_events": cross_thread,
        "truncated": bool(records) and records[-1].get("type") == "truncated",
    }
    if end is not None:
        summary["converged"] = end.get("converged")
        summary["iterations"] = end.get("iterations", iterations + 1)
        summary["events_offered"] = end.get("events_offered")
        summary["events_dropped"] = end.get("events_dropped")
        summary["has_ranking"] = "ranking" in end
    elif iterations >= 0:
        summary["iterations"] = iterations + 1
    return summary
