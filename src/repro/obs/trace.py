"""JSONL trace reading/writing helpers.

A trace is a sequence of JSON objects, one per line, each tagged with a
``"type"`` field:

``run_start``
    Free-form run metadata (mode, program, threads, seed, ...).
``iteration``
    One :class:`~repro.obs.telemetry.IterationSpan` — the per-iteration
    work profile plus conflict/frontier/wall-time observations.
``event``
    Ad-hoc named observation (e.g. ``vectorized_fallback`` with its
    reasons list).
``run_end``
    Convergence verdict, totals, counter/gauge dumps.

The reader is deliberately tolerant: unknown record types pass through,
so traces stay forward-compatible as engines grow new observations.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

from .telemetry import IterationSpan, Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.result import IterationStats

__all__ = ["read_trace", "stats_from_trace", "write_trace"]


def read_trace(path: str) -> list[dict]:
    """Load every record of a JSONL trace (blank lines skipped)."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid trace line") from exc
    return records


def stats_from_trace(records: Iterable[dict]) -> "list[IterationStats]":
    """Rebuild the engine's per-iteration work profile from a trace.

    The result equals the originating run's ``RunResult.iterations``
    exactly — the round-trip property ``tests/test_obs_telemetry.py``
    asserts for every engine mode.
    """
    return [
        IterationSpan.from_record(rec).to_stats()
        for rec in records
        if rec.get("type") == "iteration"
    ]


def write_trace(telemetry: Telemetry, path: str) -> None:
    """Dump a (buffered) sink's records to ``path`` post-hoc."""
    telemetry.export(path)
