"""Virtual-time performance modelling (Fig. 3 reproduction machinery)."""

from .costmodel import CostModel, CostParams, estimate_time
from .metrics import TimingRow, price_run, scaling_efficiency, speedup

__all__ = [
    "CostModel",
    "CostParams",
    "estimate_time",
    "TimingRow",
    "price_run",
    "scaling_efficiency",
    "speedup",
]
