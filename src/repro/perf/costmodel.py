"""Virtual-time cost model for the paper's performance experiments (Fig. 3).

The paper's Fig. 3 measures wall-clock computing time on a 16-core Xeon
testbed.  This reproduction replaces the testbed with an analytical cost
model applied to the *measured* work profile of an engine run (updates,
edge reads and writes, per virtual thread, per iteration).  The model
reproduces each mechanism that shapes the paper's curves:

* **Atomicity overhead** (§III): explicit locking pays an
  acquire/release penalty on *every* edge access; relaxed atomics pay a
  small fence-free penalty; cache-line alignment ("architecture
  support") pays nothing.  This separates the three NE curves, lock
  being "largely degraded" and compiler "marginally worse" than
  architecture, as in §V-B.
* **Memory-bandwidth saturation**: graph algorithms are memory-bound
  with bad locality, so the per-access memory cost inflates as threads
  multiply ("when the number of threads increases, the bandwidth between
  processors and memory will be gradually saturated").  Modeled as a
  linear contention factor on the memory component.
* **Barrier max**: an iteration ends when its slowest thread finishes
  (synchronous implementation of the asynchronous model), so iteration
  time is the max of per-thread work — load imbalance costs real time.
* **Deterministic scheduling overhead**: GraphChi's external
  deterministic scheduler must *plot the execution path* before each
  iteration (per-task and per-edge planning cost) and then executes the
  updates sequentially — which is why DE "does not scale".

Iteration counts are never modeled: they come from the engine run, so a
nondeterministic execution that needs extra recovery iterations pays for
them honestly.

Default constants are loosely calibrated to the paper's hardware
(2.6 GHz Xeon E5-2670, DDR3) but only the *shape* claims are asserted
anywhere; see DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..engine.atomicity import AtomicityPolicy
from ..engine.result import RunResult

__all__ = ["CostParams", "CostModel", "estimate_time"]


@dataclass(frozen=True)
class CostParams:
    """Cost constants, in nanoseconds of virtual time.

    ``bandwidth_threads`` is the number of threads whose combined memory
    traffic saturates the socket; beyond it, extra threads mostly wait.
    """

    update_base_ns: float = 150.0  #: task dispatch + vertex work per update
    read_mem_ns: float = 28.0  #: memory component of one edge read
    write_mem_ns: float = 36.0  #: memory component of one edge write
    compute_per_access_ns: float = 6.0  #: ALU work per gathered/scattered edge
    lock_overhead_ns: float = 220.0  #: per-access explicit lock/unlock
    atomic_overhead_ns: float = 9.0  #: per-access relaxed atomic
    cacheline_overhead_ns: float = 0.0  #: architecture support is free
    barrier_ns: float = 4000.0  #: per-iteration barrier latency
    bandwidth_threads: float = 6.0  #: memory saturation knee
    bandwidth_slope: float = 0.45  #: how hard contention bites past the knee
    plot_task_ns: float = 200.0  #: DE scheduler: per chosen update planning
    plot_edge_ns: float = 30.0  #: DE scheduler: per touched edge planning
    coloring_ns: float = 60.0  #: chromatic scheduler: one-time per vertex+edge

    def sync_overhead(self, policy: AtomicityPolicy) -> float:
        """Per-edge-access synchronization overhead of one §III method."""
        if policy is AtomicityPolicy.LOCK:
            return self.lock_overhead_ns
        if policy is AtomicityPolicy.ATOMIC_RELAXED:
            return self.atomic_overhead_ns
        # CACHE_LINE, and NONE (which pays nothing — and gets garbage).
        return self.cacheline_overhead_ns

    def memory_contention(self, threads: int) -> float:
        """Multiplier on memory cost when ``threads`` run concurrently."""
        if threads <= self.bandwidth_threads:
            return 1.0
        return 1.0 + self.bandwidth_slope * (threads - self.bandwidth_threads) / self.bandwidth_threads

    def with_(self, **kwargs) -> "CostParams":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class CostModel:
    """Applies :class:`CostParams` to measured work profiles."""

    params: CostParams = CostParams()

    # ------------------------------------------------------------------
    def _update_cost_ns(
        self, reads: int, writes: int, updates: int, policy: AtomicityPolicy, mem_scale: float
    ) -> float:
        p = self.params
        sync = p.sync_overhead(policy)
        access = reads + writes
        return (
            updates * p.update_base_ns
            + reads * (p.read_mem_ns * mem_scale + sync)
            + writes * (p.write_mem_ns * mem_scale + sync)
            + access * p.compute_per_access_ns
        )

    def nondeterministic_time(
        self, result: RunResult, policy: AtomicityPolicy | None = None
    ) -> float:
        """Virtual seconds for a nondeterministic run under ``policy``.

        Because all §III atomicity methods produce identical values, one
        engine run prices all three policies — pass the one you want, or
        default to the run's own configuration.
        """
        if policy is None:
            policy = result.config.atomicity if result.config else AtomicityPolicy.CACHE_LINE
        threads = result.config.threads if result.config else 1
        mem_scale = self.params.memory_contention(threads)
        total_ns = 0.0
        for it in result.iterations:
            slowest = 0.0
            for t in range(len(it.updates_per_thread)):
                cost = self._update_cost_ns(
                    it.reads_per_thread[t],
                    it.writes_per_thread[t],
                    it.updates_per_thread[t],
                    policy,
                    mem_scale,
                )
                if cost > slowest:
                    slowest = cost
            total_ns += slowest + self.params.barrier_ns
        return total_ns * 1e-9

    def deterministic_time(self, result: RunResult) -> float:
        """Virtual seconds for the external-deterministic baseline.

        Sequential execution (the plotted path admits no intra-iteration
        parallelism) with no atomicity overhead, plus the per-iteration
        path-plotting cost.  Independent of the configured thread count,
        matching the paper's observation that DE does not scale.
        """
        p = self.params
        total_ns = 0.0
        for it in result.iterations:
            reads = it.total_reads
            writes = it.total_writes
            updates = sum(it.updates_per_thread)
            total_ns += self._update_cost_ns(
                reads, writes, updates, AtomicityPolicy.CACHE_LINE, 1.0
            )
            total_ns += updates * p.plot_task_ns + (reads + writes) * p.plot_edge_ns
            total_ns += p.barrier_ns
        return total_ns * 1e-9

    def synchronous_time(self, result: RunResult) -> float:
        """Virtual seconds for a BSP run (no conflicts ⇒ no sync overhead)."""
        threads = result.config.threads if result.config else 1
        mem_scale = self.params.memory_contention(threads)
        total_ns = 0.0
        for it in result.iterations:
            slowest = max(
                self._update_cost_ns(
                    it.reads_per_thread[t],
                    it.writes_per_thread[t],
                    it.updates_per_thread[t],
                    AtomicityPolicy.CACHE_LINE,
                    mem_scale,
                )
                for t in range(len(it.updates_per_thread))
            )
            total_ns += slowest + self.params.barrier_ns
        return total_ns * 1e-9

    def chromatic_time(self, result: RunResult) -> float:
        """Virtual seconds for the chromatic deterministic-parallel scheduler.

        Each color class runs race-free in parallel (no atomicity
        overhead at all), but every iteration pays one barrier per color
        class, and the coloring itself is a one-time cost over vertices
        and edges.  The recorded per-thread maxima capture the load
        imbalance of splitting small color classes over many threads.
        """
        threads = result.config.threads if result.config else 1
        mem_scale = self.params.memory_contention(threads)
        num_colors = int(result.extra.get("num_colors", 1))
        total_ns = 0.0
        for it in result.iterations:
            slowest = max(
                self._update_cost_ns(
                    it.reads_per_thread[t],
                    it.writes_per_thread[t],
                    it.updates_per_thread[t],
                    AtomicityPolicy.CACHE_LINE,
                    mem_scale,
                )
                for t in range(len(it.updates_per_thread))
            )
            total_ns += slowest + num_colors * self.params.barrier_ns
        # One-time coloring of the conflict graph.
        if result.iterations:
            graph = result.state.graph
            total_ns += (graph.num_vertices + graph.num_edges) * self.params.coloring_ns
        return total_ns * 1e-9

    def time(self, result: RunResult, policy: AtomicityPolicy | None = None) -> float:
        """Dispatch on the run's mode."""
        if result.mode == "deterministic":
            return self.deterministic_time(result)
        if result.mode == "sync":
            return self.synchronous_time(result)
        if result.mode == "chromatic":
            return self.chromatic_time(result)
        return self.nondeterministic_time(result, policy)


def estimate_time(
    result: RunResult,
    *,
    policy: AtomicityPolicy | None = None,
    params: CostParams | None = None,
) -> float:
    """Convenience wrapper: virtual seconds of ``result`` under ``policy``."""
    return CostModel(params or CostParams()).time(result, policy)
