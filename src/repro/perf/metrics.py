"""Derived performance metrics: speedups, scaling curves, work summaries."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..engine.atomicity import AtomicityPolicy
from ..engine.result import RunResult
from .costmodel import CostModel, CostParams

__all__ = ["TimingRow", "speedup", "scaling_efficiency", "price_run"]


@dataclass(frozen=True)
class TimingRow:
    """One cell of the Fig. 3 grid: an execution priced in virtual time."""

    algorithm: str
    graph: str
    mode: str  #: "DE" or "NE"
    policy: str  #: atomicity method (NE only; "-" for DE)
    threads: int
    iterations: int
    updates: int
    virtual_seconds: float

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "mode": self.mode,
            "policy": self.policy,
            "threads": self.threads,
            "iterations": self.iterations,
            "updates": self.updates,
            "virtual_seconds": self.virtual_seconds,
        }


def speedup(baseline_seconds: float, seconds: float) -> float:
    """How many times faster than the baseline (``>1`` means faster)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return baseline_seconds / seconds


def scaling_efficiency(t1: float, tp: float, threads: int) -> float:
    """Parallel efficiency ``t1 / (threads * tp)`` in ``(0, 1]`` ideally."""
    if threads < 1 or tp <= 0:
        raise ValueError("threads must be >= 1 and tp positive")
    return t1 / (threads * tp)


def price_run(
    result: RunResult,
    *,
    algorithm: str,
    graph: str,
    policy: AtomicityPolicy | None = None,
    params: CostParams | None = None,
    telemetry=None,
) -> TimingRow:
    """Build a :class:`TimingRow` from one engine run.

    When ``telemetry`` (the :class:`~repro.obs.Telemetry` sink the run
    was executed with) is given, the work profile priced by the cost
    model is taken from the recorded iteration spans instead of the
    result object — so a published table and the run's trace agree by
    construction, not by parallel bookkeeping.
    """
    if telemetry is not None:
        result = replace(result, iterations=telemetry.iteration_stats())
    model = CostModel(params or CostParams())
    seconds = model.time(result, policy)
    threads = result.config.threads if result.config else 1
    if result.mode == "deterministic":
        mode, policy_name, threads = "DE", "-", threads
    elif result.mode == "sync":
        mode, policy_name = "SYNC", "-"
    else:
        chosen = policy or (result.config.atomicity if result.config else None)
        mode, policy_name = "NE", chosen.value if chosen else "?"
    return TimingRow(
        algorithm=algorithm,
        graph=graph,
        mode=mode,
        policy=policy_name,
        threads=threads,
        iterations=result.num_iterations,
        updates=result.total_updates,
        virtual_seconds=seconds,
    )
