"""Fault tolerance: injection, convergence watchdog, checkpoint/resume.

The paper's Theorem 2 admits algorithms that *never* converge under
nondeterministic execution; real deployments additionally crash, wedge,
and tear writes.  This package provides the production layer the
asynchronous-engine literature (Maiter; delayed asynchronous iterations)
says such engines need:

* :class:`FaultPlan` — seeded, declarative fault injection (crashes,
  stalls, torn writes, lost scatter updates, inflated delays) every
  engine consults at fixed instrumentation points;
* :class:`ConvergenceWatchdog` + :class:`DegradationPolicy` — detect
  stalls, Theorem-2 oscillation, and deadline breaches, then retry,
  escalate atomicity, or fall back to a deterministic engine;
* :func:`supervised_run` — the retry loop gluing both to the barrier
  checkpoints of :mod:`repro.storage.checkpoint`.

``Supervisor``/``supervised_run`` are imported lazily: they depend on
:mod:`repro.storage`, which itself depends on this package's error
types.
"""

from __future__ import annotations

from .errors import (
    CheckpointError,
    ConvergenceFailure,
    InjectedCrash,
    RobustError,
    RunInterrupted,
    WatchdogAlarm,
    WorkerDied,
    WorkerTimeout,
)
from .faults import FAULT_KINDS, Fault, FaultPlan
from .watchdog import (
    ConvergenceWatchdog,
    DegradationPolicy,
    WatchdogVerdict,
    state_digest,
)

__all__ = [
    "RobustError",
    "WorkerTimeout",
    "WorkerDied",
    "InjectedCrash",
    "WatchdogAlarm",
    "ConvergenceFailure",
    "CheckpointError",
    "RunInterrupted",
    "Fault",
    "FaultPlan",
    "FAULT_KINDS",
    "ConvergenceWatchdog",
    "DegradationPolicy",
    "WatchdogVerdict",
    "state_digest",
    "Supervisor",
    "supervised_run",
]

_LAZY = {"Supervisor", "supervised_run"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
