"""Exception vocabulary of the fault-tolerance subsystem.

Kept import-free (stdlib only) so low-level engine modules — notably
:mod:`repro.engine.threads_engine`, which raises :class:`WorkerTimeout`
from its join loop — can depend on it without an import cycle.
"""

from __future__ import annotations

__all__ = [
    "RobustError",
    "WorkerTimeout",
    "WorkerDied",
    "InjectedCrash",
    "WatchdogAlarm",
    "ConvergenceFailure",
    "CheckpointError",
    "RunInterrupted",
]


class RobustError(RuntimeError):
    """Base class of every fault-tolerance error."""


class WorkerTimeout(RobustError):
    """A worker thread failed to reach the iteration barrier in time.

    Raised by the real-thread backend's join loop when
    ``EngineConfig.worker_timeout_s`` elapses with workers still alive —
    the wedged-worker failure mode that previously hung the process on a
    bare ``join()``.
    """

    def __init__(self, message: str, *, iteration: int = -1,
                 stuck: tuple[int, ...] = ()):
        super().__init__(message)
        self.iteration = iteration
        self.stuck = tuple(stuck)


class WorkerDied(WorkerTimeout):
    """An OS worker process of the parallel backend died mid-run.

    Raised by :class:`~repro.engine.nondet_parallel.ParallelEngine` when
    an iteration barrier breaks because a worker crashed (segfault,
    SIGKILL, unhandled exception).  Subclasses :class:`WorkerTimeout` so
    the supervised degradation ladder recovers it with the same
    restart-with-backoff path it already uses for wedged workers — the
    master's state is barrier-consistent at the point of the raise, so a
    memory-token restart is valid.
    """

    def __init__(self, message: str, *, iteration: int = -1,
                 workers: tuple[int, ...] = ()):
        super().__init__(message, iteration=iteration, stuck=workers)
        self.workers = tuple(workers)


class InjectedCrash(RobustError):
    """A :class:`~repro.robust.faults.FaultPlan` crash fault fired.

    Simulates a SIGKILL'd worker/process at a deterministic point; the
    supervised run loop catches it and restarts from the last
    checkpoint.
    """

    def __init__(self, message: str, *, iteration: int = -1,
                 thread: int | None = None):
        super().__init__(message)
        self.iteration = iteration
        self.thread = thread


class WatchdogAlarm(RobustError):
    """The convergence watchdog tripped (stall / oscillation / deadline).

    Carries the :class:`~repro.robust.watchdog.WatchdogVerdict` so the
    degradation policy can choose a recovery action.
    """

    def __init__(self, verdict):
        super().__init__(
            f"convergence watchdog: {verdict.kind} detected at iteration "
            f"{verdict.iteration} ({verdict.detail})"
        )
        self.verdict = verdict


class ConvergenceFailure(RobustError):
    """Every degradation avenue was exhausted without convergence."""


class CheckpointError(RobustError):
    """A checkpoint could not be written, read, or applied."""


class RunInterrupted(RobustError):
    """A run was stopped deliberately at an iteration barrier.

    Raised by :meth:`~repro.robust.supervisor.Supervisor.post_iteration`
    when an ``interrupt=`` callable returns a reason (the service's
    graceful drain and job cancellation).  The raise happens *after* the
    barrier's checkpoint and restart token were taken, so the stopped
    run resumes bit-identically from ``iteration``.  Deliberate, so the
    supervised retry loop lets it propagate instead of restarting.
    """

    def __init__(self, reason: str, *, iteration: int = -1):
        super().__init__(f"run interrupted ({reason}) at iteration {iteration}")
        self.reason = reason
        self.iteration = iteration
