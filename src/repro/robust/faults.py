"""Declarative, seeded fault injection for the execution engines.

A :class:`FaultPlan` is a list of :class:`Fault` records the engines
consult at fixed instrumentation points (via the
:class:`~repro.robust.supervisor.Supervisor` hooks).  Faults are
deterministic functions of ``(plan seed, iteration)`` — independent of
engine internals and call history — so the same plan reproduces the
same corruption on the object engine, the vectorized fast path, and a
resumed run alike.

Fault kinds
-----------
``crash``
    Raise :class:`~repro.robust.errors.InjectedCrash` before the
    iteration starts (engine-level) or inside one worker thread of the
    real-thread backend (``thread=`` targeted) — a SIGKILL stand-in.
``stall``
    ``time.sleep`` for ``seconds`` at the same points — feeds the
    deadline watchdog and the threads backend's join timeout.
``torn_write``
    After the barrier commit, overwrite one edge value with a torn
    bit-mix (:func:`repro.engine.atomicity.tear`) of itself — models a
    non-atomic store that escaped §III's minimal guarantee.
``lost_update``
    Drop a seeded fraction of the freshly scheduled frontier — violates
    the task-generation rule, the failure mode the paper's barrier
    otherwise rules out.
``delay``
    Multiply the propagation delay ``d`` by ``factor`` for that
    iteration only (Definitions 1–3 see a transiently slower machine).

Crash and stall faults fire **once** by default so a restarted run does
not immediately re-crash; value faults (torn/lost/delay) stay armed for
their iteration — re-applying them is bit-identical because their RNG is
derived from ``(seed, iteration)``, not from consumption order.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from .errors import InjectedCrash

__all__ = ["Fault", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = ("crash", "stall", "torn_write", "lost_update", "delay")

#: kinds consumed on first firing unless ``Fault.once`` says otherwise
_ONCE_BY_DEFAULT = frozenset({"crash", "stall"})

_ALIASES = {"torn": "torn_write", "lost": "lost_update"}


@dataclass(frozen=True)
class Fault:
    """One injected fault at one iteration (task index for pure-async)."""

    kind: str
    iteration: int
    thread: int | None = None  #: target worker (real-thread backend); None = engine-level
    seconds: float = 0.5  #: stall duration
    fraction: float = 1.0  #: lost_update: fraction of the new frontier dropped
    factor: float = 2.0  #: delay: multiplier applied to d
    field: str | None = None  #: torn_write: edge field (default: first, sorted)
    eid: int | None = None  #: torn_write: edge id (default: seeded pick)
    once: bool | None = None  #: consume after firing (default: kind-dependent)

    def __post_init__(self) -> None:
        kind = _ALIASES.get(self.kind, self.kind)
        object.__setattr__(self, "kind", kind)
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.iteration < 0:
            raise ValueError(f"fault iteration must be >= 0, got {self.iteration}")
        if self.seconds < 0:
            raise ValueError("stall seconds must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("lost_update fraction must be in (0, 1]")
        if self.factor < 1.0:
            raise ValueError("delay factor must be >= 1")

    @property
    def effective_once(self) -> bool:
        return self.once if self.once is not None else self.kind in _ONCE_BY_DEFAULT


@dataclass
class FaultPlan:
    """A seeded, declarative schedule of injected faults.

    Build one directly from :class:`Fault` records or parse the compact
    string grammar via :meth:`from_spec`::

        crash@3            crash before iteration 3
        crash@3:t1         crash inside worker thread 1 (threads backend)
        stall@2:t0:0.5     worker 0 sleeps 0.5 s in iteration 2
        torn@4             torn write on a seeded edge after barrier 4
        torn@4:weight:e7   torn write on edge 7 of field "weight"
        lost@5:0.5         drop a seeded half of iteration 5's new frontier
        delay@6:x4         quadruple the propagation delay d in iteration 6

    Tokens are separated by ``;`` or ``,``.
    """

    faults: list[Fault] = dc_field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.faults = [f if isinstance(f, Fault) else Fault(**f) for f in self.faults]
        self._consumed: set[int] = set()
        #: diagnostic log of fired faults: dicts with kind/iteration/...
        self.fired: list[dict] = []
        self._by_iter: dict[int, list[int]] = {}
        for i, f in enumerate(self.faults):
            self._by_iter.setdefault(f.iteration, []).append(i)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_spec(cls, spec, *, seed: int = 0) -> "FaultPlan":
        """Coerce ``spec`` (FaultPlan / Fault list / dicts / string) to a plan."""
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, Fault):
            return cls([spec], seed=seed)
        if isinstance(spec, str):
            faults = [cls._parse_token(tok) for tok in
                      spec.replace(",", ";").split(";") if tok.strip()]
            return cls(faults, seed=seed)
        if isinstance(spec, (list, tuple)):
            faults = []
            for item in spec:
                if isinstance(item, Fault):
                    faults.append(item)
                elif isinstance(item, dict):
                    faults.append(Fault(**item))
                elif isinstance(item, str):
                    faults.append(cls._parse_token(item))
                else:
                    raise ValueError(f"cannot interpret fault spec item {item!r}")
            return cls(faults, seed=seed)
        raise ValueError(f"cannot interpret fault spec {spec!r}")

    @staticmethod
    def _parse_token(token: str) -> Fault:
        token = token.strip()
        if "@" not in token:
            raise ValueError(f"bad fault token {token!r}: expected kind@iteration[:opts]")
        kind, _, rest = token.partition("@")
        kind = _ALIASES.get(kind.strip(), kind.strip())
        parts = rest.split(":")
        try:
            iteration = int(parts[0])
        except ValueError:
            raise ValueError(f"bad fault token {token!r}: iteration must be an int") from None
        kwargs: dict = {}
        for opt in parts[1:]:
            opt = opt.strip()
            if not opt:
                continue
            if opt.startswith("t") and opt[1:].isdigit():
                kwargs["thread"] = int(opt[1:])
            elif opt.startswith("x"):
                kwargs["factor"] = float(opt[1:])
            elif opt.startswith("e") and opt[1:].isdigit():
                kwargs["eid"] = int(opt[1:])
            else:
                try:
                    value = float(opt)
                except ValueError:
                    kwargs["field"] = opt
                else:
                    if kind == "stall":
                        kwargs["seconds"] = value
                    elif kind == "lost_update":
                        kwargs["fraction"] = value
                    elif kind == "delay":
                        kwargs["factor"] = value
                    else:
                        raise ValueError(
                            f"bad fault token {token!r}: numeric option {opt!r} "
                            f"has no meaning for kind {kind!r}"
                        )
        return Fault(kind=kind, iteration=iteration, **kwargs)

    # -- querying --------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.faults)

    def matching(self, kind: str, iteration: int):
        """Yield ``(index, fault)`` for un-consumed faults of one kind."""
        for i in self._by_iter.get(iteration, ()):
            if i in self._consumed:
                continue
            f = self.faults[i]
            if f.kind == kind:
                yield i, f

    def fire(self, index: int, **detail) -> None:
        """Record a firing; consume the fault if it is one-shot."""
        f = self.faults[index]
        if f.effective_once:
            self._consumed.add(index)
        self.fired.append(
            {"kind": f.kind, "iteration": f.iteration, "thread": f.thread, **detail}
        )

    def rng_for(self, iteration: int, salt: int) -> np.random.Generator:
        """Deterministic per-(iteration, application) stream — independent
        of engine implementation and of how often the iteration re-ran."""
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, 6, iteration, salt])
        )

    # -- application helpers (called by the Supervisor) ------------------
    def raise_crash(self, index: int, fault: Fault, iteration: int) -> None:
        self.fire(index)
        raise InjectedCrash(
            f"injected crash at iteration {iteration}"
            + (f" (worker {fault.thread})" if fault.thread is not None else ""),
            iteration=iteration,
            thread=fault.thread,
        )

    def delay_factor(self, iteration: int) -> float:
        """Combined delay-inflation factor for one iteration (1.0 = none)."""
        factor = 1.0
        for i, f in self.matching("delay", iteration):
            factor *= f.factor
            self.fire(i, factor=f.factor)
        return factor

    def drop_scatter(self, iteration: int, schedule: np.ndarray) -> np.ndarray:
        """Apply lost-update faults to a sorted vertex-id array."""
        for i, f in self.matching("lost_update", iteration):
            if schedule.size == 0:
                break
            k = max(1, int(np.floor(f.fraction * schedule.size)))
            rng = self.rng_for(iteration, 1000 + i)
            drop = rng.choice(schedule.size, size=k, replace=False)
            keep = np.ones(schedule.size, dtype=bool)
            keep[drop] = False
            self.fire(i, dropped=int(k), kept=int(schedule.size - k))
            schedule = schedule[keep]
        return schedule

    def apply_torn(self, iteration: int, state) -> list[dict]:
        """Apply torn-write faults to the committed edge arrays in place."""
        from ..engine.atomicity import tear

        applied = []
        for i, f in self.matching("torn_write", iteration):
            fields = sorted(state.edge_field_names)
            if not fields:
                break
            field = f.field if f.field is not None else fields[0]
            arr = state.edge(field)
            if arr.size == 0:
                break
            rng = self.rng_for(iteration, 2000 + i)
            eid = f.eid if f.eid is not None else int(rng.integers(0, arr.size))
            old = float(arr[eid])
            other = float(arr[int(rng.integers(0, arr.size))])
            torn = tear(old, other if other != old else old + 1.0, rng)
            arr[eid] = np.asarray(torn).astype(arr.dtype, casting="unsafe")
            info = {"field": field, "eid": eid, "old": old, "torn": float(arr[eid])}
            self.fire(i, **info)
            applied.append(info)
        return applied

    def stall_seconds(self, iteration: int, *, thread: int | None,
                      engine_level: bool) -> float:
        """Total sleep owed at one instrumentation point.

        ``engine_level=True`` matches faults with no thread target (the
        pre-iteration hook); otherwise only faults targeting ``thread``.
        """
        total = 0.0
        for i, f in self.matching("stall", iteration):
            if engine_level:
                if f.thread is not None:
                    continue
            elif f.thread != thread:
                continue
            total += f.seconds
            self.fire(i, seconds=f.seconds, thread=thread)
        return total

    def crash_index(self, iteration: int, *, thread: int | None,
                    engine_level: bool):
        """First matching crash fault as ``(index, fault)``, or ``None``."""
        for i, f in self.matching("crash", iteration):
            if engine_level:
                if f.thread is None:
                    return i, f
            elif f.thread == thread:
                return i, f
        return None
