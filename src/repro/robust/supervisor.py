"""The supervised execution loop: inject, monitor, checkpoint, recover.

Two pieces live here:

* :class:`Supervisor` — the per-run hook object every engine consults at
  its instrumentation points.  A ``None`` supervisor costs the engines
  one pointer check per iteration (the same contract as ``telemetry=``
  and ``record=``); an active one applies :class:`FaultPlan` faults,
  feeds the :class:`ConvergenceWatchdog`, writes barrier checkpoints,
  and maintains the in-memory restart token.

* :func:`supervised_run` — the retry loop around the engines.  Crashes
  and worker timeouts restart from the best restore point (file
  checkpoint > in-memory barrier token > scratch) with exponential
  backoff; watchdog alarms degrade — first escalate the atomicity
  guarantee, then abandon nondeterminism and finish on a deterministic
  engine from the last good barrier state.  Every recovery decision is
  recorded as a ``degradation`` event in the telemetry/recorder traces
  and in ``result.extra["degradations"]``.

Hook protocol (all engines)::

    sup.engine_start(mode, program, config, state=..., frontier=...,
                     rngs={...}, conflicts=log) -> (start_iteration, frontier)
    cfg_i = sup.iteration_config(iteration, config)        # object engines
    dm_i  = sup.iteration_delay_model(iteration, dm)       # vectorized
    sup.pre_iteration(iteration)                           # faults fire
    sup.in_worker(iteration, tid)                          # threads backend
    schedule = sup.post_iteration(iteration, state=state, schedule=schedule)

``post_iteration`` runs at the barrier, *after* the commit and *before*
the telemetry span / observer callback, so every downstream consumer
sees the post-fault schedule.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..engine.atomicity import AtomicityPolicy
from ..engine.config import EngineConfig
from ..engine.delaymodel import DelayModel
from .errors import (
    CheckpointError,
    ConvergenceFailure,
    InjectedCrash,
    RunInterrupted,
    WatchdogAlarm,
    WorkerTimeout,
)
from .faults import FaultPlan
from .watchdog import ConvergenceWatchdog, DegradationPolicy, state_digest

__all__ = ["Supervisor", "supervised_run"]

#: engines whose in-flight state may be inconsistent after a crash
#: (real threads keep zombie daemon workers; pure-async has no barrier)
_NO_MEMORY_RESTART = frozenset({"threads", "pure-async"})


class Supervisor:
    """Per-run hook object consulted by the engines.

    Engines hold it behind a single ``if supervisor is not None`` check,
    so a disabled fault-tolerance layer costs one pointer comparison per
    iteration.
    """

    def __init__(self, *, faults: FaultPlan | None = None,
                 watchdog: ConvergenceWatchdog | None = None,
                 checkpoint_path=None, checkpoint_every: int = 1,
                 telemetry=None, record=None, interrupt=None):
        self.faults = faults
        self.watchdog = watchdog
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = int(checkpoint_every)
        self.telemetry = telemetry
        self.record = record
        #: zero-argument callable polled at every barrier; a truthy
        #: return value (the reason string) stops the run with
        #: :class:`RunInterrupted` *after* the barrier checkpoint
        self.interrupt = interrupt
        #: iteration of the last checkpoint written this run (None = none)
        self.last_checkpoint_iteration: int | None = None
        #: in-memory restart token maintained at every barrier
        self.memory_token: dict | None = None
        #: restore point applied at the next ``engine_start``
        self.pending_resume = None
        self._mode = ""
        self._program_name = ""
        self._config: EngineConfig | None = None
        self._rngs: dict = {}
        self._conflicts = None
        self._fired_seen = 0

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def engine_start(self, mode: str, program, config: EngineConfig, *,
                     state, frontier, rngs: dict | None = None,
                     conflicts=None):
        """Register run context; apply a pending restore point.

        Returns ``(start_iteration, frontier)``; the frontier comes back
        in the same shape it was given (``Frontier`` object or int64
        array).  ``frontier=None`` marks a barrier-free engine
        (pure-async): checkpoint/resume is refused for it.
        """
        self._mode = mode
        self._program_name = type(program).__name__
        self._config = config
        self._rngs = dict(rngs) if rngs else {}
        self._conflicts = conflicts
        if frontier is None:
            if self.checkpoint_path is not None or self.pending_resume is not None:
                raise CheckpointError(
                    "the pure-async engine is barrier-free: there is no "
                    "consistent cut to checkpoint or resume from")
            return 0, None
        resume = self.pending_resume
        self.pending_resume = None
        if resume is None:
            return 0, frontier
        if isinstance(resume, dict):  # in-memory token
            ids = np.asarray(resume["frontier"], dtype=np.int64)
            start = int(resume["iteration"])
            rng_states = resume["rng_states"]
            conflict_data = resume.get("conflicts") or {}
        else:  # file Checkpoint
            if resume.program != self._program_name:
                raise CheckpointError(
                    f"checkpoint was taken for program {resume.program!r}, "
                    f"cannot resume {self._program_name!r}")
            self._apply_arrays(resume, state)
            ids = np.asarray(resume.frontier, dtype=np.int64)
            start = int(resume.iteration)
            rng_states = resume.rng_states
            conflict_data = resume.conflicts or {}
        for name, rng_state in rng_states.items():
            rng = self._rngs.get(name)
            if rng is not None:
                rng.bit_generator.state = rng_state
        if conflicts is not None and conflict_data:
            _restore_conflicts(conflicts, conflict_data)
        return start, _schedule_like(frontier, ids)

    def pre_iteration(self, iteration: int) -> None:
        """Fire engine-level faults before the iteration's updates run.

        For the simulated engines thread-targeted faults fire here too —
        their "threads" are virtual, so the barrier is the only place a
        per-worker fault can act.  The real-thread backend routes those
        through :meth:`in_worker` instead.
        """
        faults = self.faults
        if faults is None or not faults:
            return
        stall = faults.stall_seconds(iteration, thread=None, engine_level=True)
        crash = faults.crash_index(iteration, thread=None, engine_level=True)
        if self._mode != "threads" and self._config is not None:
            for tid in range(self._config.threads):
                stall += faults.stall_seconds(iteration, thread=tid,
                                              engine_level=False)
                if crash is None:
                    crash = faults.crash_index(iteration, thread=tid,
                                               engine_level=False)
        if stall > 0:
            self.drain_fired()
            time.sleep(stall)
        if crash is not None:
            faults.raise_crash(crash[0], crash[1], iteration)

    def in_worker(self, iteration: int, tid: int) -> None:
        """Fire thread-targeted faults inside a real worker thread."""
        faults = self.faults
        if faults is None or not faults:
            return
        stall = faults.stall_seconds(iteration, thread=tid, engine_level=False)
        if stall > 0:
            time.sleep(stall)
        crash = faults.crash_index(iteration, thread=tid, engine_level=False)
        if crash is not None:
            faults.raise_crash(crash[0], crash[1], iteration)

    def iteration_config(self, iteration: int, config: EngineConfig) -> EngineConfig:
        """Per-iteration config override (delay-inflation faults)."""
        faults = self.faults
        if faults is None or not faults:
            return config
        factor = faults.delay_factor(iteration)
        if factor == 1.0:
            return config
        self.drain_fired()
        if config.delay_model is not None:
            return config.with_(delay_model=_scale_delay_model(
                config.delay_model, factor))
        return config.with_(delay=config.delay * factor)

    def iteration_delay_model(self, iteration: int,
                              delay_model: DelayModel) -> DelayModel:
        """Vectorized-path sibling of :meth:`iteration_config`."""
        faults = self.faults
        if faults is None or not faults:
            return delay_model
        factor = faults.delay_factor(iteration)
        if factor == 1.0:
            return delay_model
        self.drain_fired()
        return _scale_delay_model(delay_model, factor)

    def post_iteration(self, iteration: int, *, state, schedule):
        """Barrier hook: value faults, checkpoint, restart token, watchdog.

        Returns the (possibly fault-reduced) schedule in the same shape
        it was given.
        """
        faults = self.faults
        ids = _as_ids(schedule)
        if faults is not None and faults:
            dropped = faults.drop_scatter(iteration, ids)
            if dropped.size != ids.size:
                ids = dropped
                schedule = _schedule_like(schedule, ids)
            faults.apply_torn(iteration, state)
            self.drain_fired()
        if (self.checkpoint_path is not None
                and (iteration + 1) % self.checkpoint_every == 0):
            self._write_checkpoint(iteration + 1, state, ids)
        self.memory_token = {
            "iteration": iteration + 1,
            "frontier": ids.copy(),
            "rng_states": self._rng_states(),
            "conflicts": _capture_conflicts(self._conflicts),
        }
        if self.interrupt is not None:
            # Polled after the checkpoint/token so the stop point is a
            # durable restore point: drain and cancel lose nothing.
            reason = self.interrupt()
            if reason:
                raise RunInterrupted(str(reason), iteration=iteration + 1)
        if self.watchdog is not None:
            digest = (state_digest(state, ids)
                      if self.watchdog.wants_digest else None)
            verdict = self.watchdog.observe(
                iteration, frontier_size=int(ids.size), digest=digest)
            if verdict is not None:
                raise WatchdogAlarm(verdict)
        return schedule

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def drain_fired(self) -> None:
        """Emit newly fired faults as ``fault_injected`` trace events."""
        faults = self.faults
        if faults is None:
            return
        while self._fired_seen < len(faults.fired):
            entry = faults.fired[self._fired_seen]
            self._fired_seen += 1
            if self.telemetry is not None:
                self.telemetry.event("fault_injected", **entry)
            if self.record is not None:
                self.record.event("fault_injected", **entry)

    def _rng_states(self) -> dict:
        return {name: rng.bit_generator.state
                for name, rng in self._rngs.items()}

    def _write_checkpoint(self, iteration: int, state, ids: np.ndarray) -> None:
        from ..storage.checkpoint import Checkpoint, save_checkpoint

        ckpt = Checkpoint(
            iteration=iteration,
            mode=self._mode,
            program=self._program_name,
            config=self._config or EngineConfig(),
            frontier=ids,
            vertex_arrays={f: state.vertex(f)
                           for f in state.vertex_field_names},
            edge_arrays={f: state.edge(f) for f in state.edge_field_names},
            rng_states=self._rng_states(),
            conflicts=_capture_conflicts(self._conflicts),
        )
        save_checkpoint(self.checkpoint_path, ckpt)
        self.last_checkpoint_iteration = iteration

    @staticmethod
    def _apply_arrays(ckpt, state) -> None:
        for name, arr in ckpt.vertex_arrays.items():
            target = state.vertex(name)
            if target.shape != arr.shape:
                raise CheckpointError(
                    f"vertex array {name!r} has shape {arr.shape}, "
                    f"state expects {target.shape}")
            target[:] = arr
        for name, arr in ckpt.edge_arrays.items():
            target = state.edge(name)
            if target.shape != arr.shape:
                raise CheckpointError(
                    f"edge array {name!r} has shape {arr.shape}, "
                    f"state expects {target.shape}")
            target[:] = arr


# ----------------------------------------------------------------------
# schedule/conflict shape adapters
# ----------------------------------------------------------------------
def _as_ids(schedule) -> np.ndarray:
    """Any schedule shape -> sorted int64 vertex-id array."""
    if isinstance(schedule, np.ndarray):
        return schedule.astype(np.int64, copy=False)
    if hasattr(schedule, "sorted_vertices"):  # Frontier
        return schedule.sorted_vertices()
    return np.fromiter(sorted(schedule), dtype=np.int64,
                       count=len(schedule))  # set/iterable


def _schedule_like(template, ids: np.ndarray):
    """Give ``ids`` back in the shape of ``template``."""
    if isinstance(template, np.ndarray):
        return ids
    if hasattr(template, "sorted_vertices"):
        from ..engine.frontier import Frontier

        return Frontier(int(v) for v in ids)
    return {int(v) for v in ids}


def _capture_conflicts(log) -> dict:
    if log is None:
        return {}
    return {
        "read_write": log.read_write,
        "write_write": log.write_write,
        "contended_edges": log.contended_edges,
        "lost_writes": log.lost_writes,
        "stale_reads": log.stale_reads,
        "per_iteration": {str(k): v for k, v in log.per_iteration.items()},
    }


def _restore_conflicts(log, data: dict) -> None:
    log.read_write = int(data.get("read_write", 0))
    log.write_write = int(data.get("write_write", 0))
    log.contended_edges = int(data.get("contended_edges", 0))
    log.lost_writes = int(data.get("lost_writes", 0))
    log.stale_reads = int(data.get("stale_reads", 0))
    log.per_iteration.clear()
    log.per_iteration.update(
        {int(k): v for k, v in (data.get("per_iteration") or {}).items()})


def _scale_delay_model(dm: DelayModel, factor: float) -> DelayModel:
    return DelayModel(intra=dm.intra * factor, inter=dm.inter * factor,
                      group_size=dm.group_size)


# ----------------------------------------------------------------------
# the supervised loop
# ----------------------------------------------------------------------
def _make_state(program, graph):
    """Initial state for ``graph`` — out-of-core aware."""
    from ..storage.shards import ShardStore

    if isinstance(graph, ShardStore):
        return graph.nondet_runner().make_state(program)
    return program.make_state(graph)


def _dispatch(program, graph, *, mode, config, state, observer, vectorized,
              backend, telemetry, record, supervisor):
    """Engine dispatch mirroring :func:`repro.engine.runner.run`."""
    from ..engine.runner import ENGINES
    from ..storage.shards import ShardStore

    if isinstance(graph, ShardStore):
        if mode != "nondeterministic":
            raise ValueError(
                "out-of-core execution (a ShardStore graph) supports "
                "mode='nondeterministic' only — degradation fallback to "
                f"{mode!r} needs an in-memory graph")
        return graph.nondet_runner().run(
            program, config, state=state, observer=observer,
            telemetry=telemetry, record=record, supervisor=supervisor,
            backend=backend)
    if backend == "process":
        if mode != "nondeterministic":
            raise ValueError(
                "backend='process' applies to mode='nondeterministic' only")
        from ..engine.nondet_parallel import ParallelEngine

        return ParallelEngine().run(
            program, graph, config, state=state, observer=observer,
            telemetry=telemetry, record=record, supervisor=supervisor)
    if vectorized:
        if mode != "nondeterministic":
            raise ValueError(
                "vectorized= applies to mode='nondeterministic' only")
        from ..engine.nondet_vectorized import (
            VectorizedNondetEngine,
            fallback_reasons,
        )

        reasons = fallback_reasons(program, config)
        if not reasons:
            return VectorizedNondetEngine().run(
                program, graph, config, state=state, observer=observer,
                telemetry=telemetry, record=record, supervisor=supervisor)
        if vectorized == "require":
            raise ValueError(
                "vectorized='require' but the fast path is not eligible: "
                + "; ".join(reasons))
        if telemetry is not None:
            telemetry.event("vectorized_fallback", reasons=reasons)
    try:
        engine_cls = ENGINES[mode]
    except KeyError:
        raise ValueError(
            f"unknown mode {mode!r}; choose from {sorted(ENGINES)}") from None
    if mode == "threads":
        return engine_cls().run(program, graph, config, state=state,
                                telemetry=telemetry, record=record,
                                supervisor=supervisor)
    return engine_cls().run(program, graph, config, state=state,
                            observer=observer, telemetry=telemetry,
                            record=record, supervisor=supervisor)


def _emit_degradation(telemetry, record, degradations: list, event: dict) -> None:
    degradations.append(event)
    if telemetry is not None:
        telemetry.event("degradation", **event)
    if record is not None:
        record.event("degradation", **event)


def supervised_run(program, graph, *, mode: str = "nondeterministic",
                   config: EngineConfig | None = None, state=None,
                   observer=None, vectorized=False, backend=None,
                   telemetry=None,
                   record=None, faults=None,
                   watchdog: ConvergenceWatchdog | None = None,
                   policy: DegradationPolicy | None = None,
                   checkpoint=None, checkpoint_every: int = 1,
                   resume_from=None, deadline_s: float | None = None,
                   interrupt=None):
    """Run ``program`` under fault injection, monitoring, and recovery.

    This is the engine room behind ``run(..., faults=/watchdog=/
    checkpoint=/resume_from=/deadline_s=)``; see
    :func:`repro.engine.runner.run` for parameter semantics.  When
    ``config`` is ``None`` and ``resume_from`` names a checkpoint, the
    checkpointed configuration is adopted so a bare ``--resume`` replays
    the original run exactly.
    """
    resume_ckpt = None
    if resume_from is not None:
        from ..storage.checkpoint import load_checkpoint

        resume_ckpt = load_checkpoint(resume_from)
        if resume_ckpt.mode != mode:
            raise CheckpointError(
                f"checkpoint was taken in mode {resume_ckpt.mode!r}; "
                f"resume with the same mode (got {mode!r})")
        if config is None:
            config = resume_ckpt.config
    config = config or EngineConfig()
    if faults is not None:
        faults = FaultPlan.from_spec(faults, seed=config.seed)
    policy = policy or DegradationPolicy()
    if deadline_s is not None:
        if watchdog is None:
            watchdog = ConvergenceWatchdog(oscillation=False,
                                           deadline_s=deadline_s)
        else:
            watchdog.deadline_s = float(deadline_s)

    sup = Supervisor(faults=faults, watchdog=watchdog,
                     checkpoint_path=checkpoint,
                     checkpoint_every=checkpoint_every,
                     telemetry=telemetry, record=record,
                     interrupt=interrupt)
    sup.pending_resume = resume_ckpt

    cur_state = state if state is not None else _make_state(program, graph)
    cur_mode, cur_config, cur_vectorized = mode, config, vectorized
    cur_backend = backend
    degradations: list[dict] = []
    restarts = 0
    escalated = False
    fell_back = False

    while True:
        if watchdog is not None:
            watchdog.reset()
        try:
            result = _dispatch(program, graph, mode=cur_mode,
                               config=cur_config, state=cur_state,
                               observer=observer, vectorized=cur_vectorized,
                               backend=cur_backend,
                               telemetry=telemetry, record=record,
                               supervisor=sup)
            break
        except (InjectedCrash, WorkerTimeout) as exc:
            sup.drain_fired()
            restarts += 1
            if restarts > policy.max_restarts:
                raise ConvergenceFailure(
                    f"gave up after {policy.max_restarts} restart(s): {exc}"
                ) from exc
            event = {
                "action": "restart",
                "attempt": restarts,
                "cause": type(exc).__name__,
                "iteration": getattr(exc, "iteration", -1),
                "detail": str(exc),
            }
            file_restore = None
            if checkpoint is not None and os.path.exists(os.fspath(checkpoint)):
                from ..storage.checkpoint import load_checkpoint

                file_restore = load_checkpoint(checkpoint)
            elif resume_ckpt is not None and sup.memory_token is None:
                # crashed before the first barrier of a resumed run
                file_restore = resume_ckpt
            token = (sup.memory_token
                     if cur_mode not in _NO_MEMORY_RESTART else None)
            if token is not None and (file_restore is None
                                      or token["iteration"] >= file_restore.iteration):
                restore = dict(token)
                event["resume_iteration"] = restore["iteration"]
            elif file_restore is not None:
                restore = file_restore
                event["resume_iteration"] = restore.iteration
            else:
                restore = None
                event["resume_iteration"] = 0
            if cur_mode in _NO_MEMORY_RESTART:
                # zombie daemon workers of a timed-out attempt may still
                # be writing to the old arrays — never reuse them
                cur_state = _make_state(program, graph)
            sup.pending_resume = restore
            _emit_degradation(telemetry, record, degradations, event)
            time.sleep(policy.backoff_for(restarts))
        except WatchdogAlarm as exc:
            sup.drain_fired()
            verdict = exc.verdict
            event = {
                "cause": "watchdog",
                "kind": verdict.kind,
                "iteration": verdict.iteration,
                "detail": verdict.detail,
            }
            if (policy.escalate_atomicity and not escalated
                    and cur_config.atomicity in (AtomicityPolicy.ATOMIC_RELAXED,
                                                 AtomicityPolicy.NONE)):
                escalated = True
                cur_config = cur_config.with_(atomicity=AtomicityPolicy.LOCK)
                event["action"] = "escalate-atomicity"
            elif not fell_back:
                fell_back = True
                cur_mode = policy.fallback_mode
                cur_vectorized = False
                cur_backend = None
                event["action"] = f"fallback:{policy.fallback_mode}"
            else:
                event["action"] = "give-up"
                _emit_degradation(telemetry, record, degradations, event)
                raise ConvergenceFailure(
                    f"no degradation avenue left after {verdict.kind} at "
                    f"iteration {verdict.iteration}") from exc
            # the alarmed barrier state is consistent — continue from it
            sup.pending_resume = (dict(sup.memory_token)
                                  if sup.memory_token is not None else None)
            _emit_degradation(telemetry, record, degradations, event)

    result.extra["degradations"] = degradations
    if faults is not None:
        result.extra["faults_fired"] = list(faults.fired)
    if sup.last_checkpoint_iteration is not None:
        result.extra["last_checkpoint_iteration"] = sup.last_checkpoint_iteration
    return result
