"""Convergence watchdog: stall, oscillation, and deadline detection.

Theorem 2 of the paper shows that enumeration-style computations with
write–write conflicts may *never* converge under nondeterministic
execution — the global state revisits itself and the run cycles until
``max_iterations`` is exhausted.  The watchdog detects that signature
(an exact recurrence of the barrier-state digest), plus the two mundane
failure modes around it: a frontier that stops shrinking (stall) and a
wall-clock budget breach (deadline).

The watchdog is passive: :meth:`ConvergenceWatchdog.observe` returns a
:class:`WatchdogVerdict` when it trips and the supervisor converts that
into a :class:`~repro.robust.errors.WatchdogAlarm` plus a degradation
action described by :class:`DegradationPolicy`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "WatchdogVerdict",
    "DegradationPolicy",
    "ConvergenceWatchdog",
    "state_digest",
]


@dataclass(frozen=True)
class WatchdogVerdict:
    """What tripped, where, and why — carried by ``WatchdogAlarm``."""

    kind: str  #: "oscillation" | "stall" | "deadline"
    iteration: int
    detail: str


@dataclass(frozen=True)
class DegradationPolicy:
    """How the supervised loop reacts to crashes and watchdog alarms.

    Crash/timeout recovery retries from the best available restore point
    (file checkpoint > in-memory barrier snapshot > scratch) with
    exponential backoff; watchdog alarms escalate — first strengthen the
    atomicity guarantee (``atomic-relaxed``/``none`` → per-edge locks,
    §III's minimal-guarantee knob), then abandon nondeterminism entirely
    and finish on a deterministic engine from the last good state.
    """

    max_restarts: int = 3
    backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    escalate_atomicity: bool = True
    fallback_mode: str = "chromatic"  #: deterministic engine of last resort

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.fallback_mode not in ("chromatic", "sync", "deterministic"):
            raise ValueError(
                f"fallback_mode must be a deterministic engine "
                f"(chromatic/sync/deterministic), got {self.fallback_mode!r}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff before restart ``attempt`` (1-based), capped."""
        return min(self.backoff_s * (2.0 ** max(0, attempt - 1)),
                   self.max_backoff_s)


def state_digest(state, frontier_ids: np.ndarray) -> bytes:
    """Digest of the full barrier state — vertex + edge fields + frontier.

    Exact recurrence of this digest across iterations means the global
    state revisited itself: because every engine iteration is a
    deterministic function of (state, frontier, iteration-independent
    rng draws... except jitter), a revisit under jitter-free configs is
    a proof of a Theorem-2 cycle, and under jittered configs a very
    strong signal of one.
    """
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(state.vertex_field_names):
        h.update(name.encode())
        h.update(np.ascontiguousarray(state.vertex(name)).tobytes())
    for name in sorted(state.edge_field_names):
        h.update(name.encode())
        h.update(np.ascontiguousarray(state.edge(name)).tobytes())
    h.update(np.ascontiguousarray(
        np.asarray(frontier_ids, dtype=np.int64)).tobytes())
    return h.digest()


class ConvergenceWatchdog:
    """Per-iteration progress monitor fed at the barrier.

    Parameters
    ----------
    oscillation:
        Detect exact state recurrence (the Theorem-2 signature).  The
        supervisor only computes digests when this is on.
    history:
        How many recent digests to retain for recurrence matching.
    stall_window:
        Trip after this many consecutive iterations with no improvement
        of the best-seen frontier size.  ``None`` disables.
    deadline_s:
        Wall-clock budget from the first observation.  ``None`` disables.
    """

    def __init__(self, *, oscillation: bool = True, history: int = 512,
                 stall_window: int | None = None,
                 deadline_s: float | None = None):
        if history <= 0:
            raise ValueError("history must be > 0")
        if stall_window is not None and stall_window <= 0:
            raise ValueError("stall_window must be > 0 (or None)")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None)")
        self.oscillation = oscillation
        self.history = history
        self.stall_window = stall_window
        self.deadline_s = deadline_s
        self.reset()

    def reset(self) -> None:
        """Forget everything (the supervisor calls this between attempts)."""
        self._digests: dict[bytes, int] = {}
        self._best_frontier: int | None = None
        self._no_improve = 0
        self._t0: float | None = None

    @property
    def wants_digest(self) -> bool:
        return self.oscillation

    def observe(self, iteration: int, *, frontier_size: int,
                digest: bytes | None = None) -> WatchdogVerdict | None:
        """Feed one barrier; return a verdict if the watchdog trips."""
        now = time.monotonic()
        if self._t0 is None:
            self._t0 = now
        if self.deadline_s is not None and now - self._t0 > self.deadline_s:
            return WatchdogVerdict(
                "deadline", iteration,
                f"wall clock exceeded {self.deadline_s:g}s budget")

        if self.oscillation and digest is not None:
            first = self._digests.get(digest)
            if first is not None:
                return WatchdogVerdict(
                    "oscillation", iteration,
                    f"barrier state of iteration {iteration} identical to "
                    f"iteration {first} — Theorem-2 cycle of period "
                    f"{iteration - first}")
            self._digests[digest] = iteration
            while len(self._digests) > self.history:
                self._digests.pop(next(iter(self._digests)))

        if self.stall_window is not None:
            if self._best_frontier is None or frontier_size < self._best_frontier:
                self._best_frontier = frontier_size
                self._no_improve = 0
            else:
                self._no_improve += 1
                if self._no_improve >= self.stall_window:
                    return WatchdogVerdict(
                        "stall", iteration,
                        f"frontier stuck at >= {self._best_frontier} for "
                        f"{self._no_improve} iterations")
        return None
