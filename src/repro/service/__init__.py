"""Always-on graph service: standing graphs, supervised jobs, WAL.

The service layer turns the one-shot robustness stack (PR 4's
``supervised_run`` + barrier checkpoints) into a long-running daemon
where **no job outcome is lost to any crash** — worker, job, or the
service process itself:

* :mod:`~repro.service.journal` — write-ahead job journal (fsync per
  append, atomic snapshot compaction, torn-tail tolerance);
* :mod:`~repro.service.jobs` — job specs, lifecycle state machine, and
  the idempotent journal reducer;
* :mod:`~repro.service.graphs` — persistent named-graph registry
  (load once, share read-only across concurrent jobs);
* :mod:`~repro.service.scheduler` — the supervisor pool: admission
  control, per-job resource scoping (shm namespaces, scratch dirs,
  RNG streams), graceful drain, crash recovery + orphan sweeps;
* :mod:`~repro.service.http` / :mod:`~repro.service.client` — the
  stdlib HTTP surface (``repro serve`` / ``repro client``).
"""

from .client import ServiceClient, ServiceError
from .graphs import GraphRegistry
from .jobs import Job, JobSpec, JobState, job_table_state, reduce_records
from .journal import JobJournal, JournalError
from .scheduler import GraphService, ServiceBusy

__all__ = [
    "GraphRegistry",
    "GraphService",
    "Job",
    "JobJournal",
    "JobSpec",
    "JobState",
    "JournalError",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "job_table_state",
    "reduce_records",
]
