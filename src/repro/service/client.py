"""Thin stdlib client for the service HTTP API.

``urllib.request`` wrappers that speak the JSON surface of
:mod:`repro.service.http` — used by ``repro client`` and by the tests;
kept free of anything beyond the stdlib so a client can be vendored
into an experiment harness as a single file.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An API call failed; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Client for one service at ``url`` (e.g. ``http://127.0.0.1:8750``)."""

    def __init__(self, url: str, *, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _call(self, method: str, path: str, payload: dict | None = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                body = resp.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceError(exc.code, detail) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.url}: "
                                  f"{exc.reason}") from None
        return json.loads(body) if body.strip() else None

    # -- API -----------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def metrics(self) -> str:
        req = urllib.request.Request(self.url + "/metrics")
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return resp.read().decode()

    def graphs(self) -> dict:
        return self._call("GET", "/api/graphs")

    def register_graph(self, name: str, spec: dict) -> dict:
        return self._call("POST", "/api/graphs",
                          {"name": name, "spec": spec})

    def submit(self, spec: dict) -> str:
        return self._call("POST", "/api/jobs", spec)["job_id"]

    def jobs(self) -> list[dict]:
        return self._call("GET", "/api/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._call("GET", f"/api/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._call("GET", f"/api/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._call("POST", f"/api/jobs/{job_id}/cancel")

    def gc(self, *, max_age_s: float | None = None,
           max_count: int | None = None) -> dict:
        """Sweep terminal jobs server-side; returns ``{"swept": [...]}``."""
        payload = {}
        if max_age_s is not None:
            payload["max_age_s"] = max_age_s
        if max_count is not None:
            payload["max_count"] = max_count
        return self._call("POST", "/api/gc", payload)

    def trace(self, job_id: str) -> list[dict]:
        req = urllib.request.Request(self.url + f"/api/jobs/{job_id}/trace")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                text = resp.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, exc.read().decode(
                "utf-8", "replace")) from None
        return [json.loads(line) for line in text.splitlines() if line]

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll_s: float = 0.25, on_status=None) -> dict:
        """Poll until the job is terminal; returns the final status.

        ``on_status(status)`` (if given) fires on every poll — the hook
        behind ``repro client watch``.
        """
        from .jobs import JobState

        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if on_status is not None:
                on_status(status)
            if status["state"] in JobState.TERMINAL:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:.0f}s")
            time.sleep(poll_s)
