"""Persistent named graphs: load once, share read-only across jobs.

Maiter-style standing graphs: a service tenant registers a graph under
a name once, and every subsequent job references the name — the service
loads it a single time and hands the *same object* to each concurrent
run.  That sharing is safe because no engine mutates the graph (state
lives in per-run :class:`~repro.engine.state.State` arrays); for a v2
container the arrays are read-only ``np.memmap`` views, so concurrent
jobs additionally share page-cache pages instead of private copies.

A registration is a JSON spec of one of three shapes::

    {"dataset": "web-google-mini", "scale": 10, "seed": 7}   # generator
    {"path": "graphs/web.rprogrf", "mmap": true}             # container
    {"shards": "shards/web-k8", "intervals": 8}              # ShardStore

The registry file (``graphs.json``) is rewritten atomically on every
registration, so a crash never loses or corrupts the name table.
"""

from __future__ import annotations

import json
import os
import re
import threading

from ..storage.checkpoint import fsync_directory

__all__ = ["GraphRegistry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class GraphRegistry:
    """Thread-safe name → graph table backed by ``graphs.json``."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._specs: dict[str, dict] = {}
        self._cache: dict[str, object] = {}
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                self._specs = json.load(fh)

    # -- registration ------------------------------------------------------
    @staticmethod
    def validate_spec(spec: dict) -> None:
        if not isinstance(spec, dict):
            raise ValueError("graph spec must be a dict")
        keys = set(spec)
        if "dataset" in keys:
            extra = keys - {"dataset", "scale", "seed"}
        elif "path" in keys:
            extra = keys - {"path", "mmap"}
        elif "shards" in keys:
            extra = keys - {"shards"}
        else:
            raise ValueError(
                "graph spec needs one of: 'dataset' (generator), "
                "'path' (RPROGRF container), 'shards' (PSW store)")
        if extra:
            raise ValueError(
                f"unsupported graph-spec key(s): {', '.join(sorted(extra))}")

    def register(self, name: str, spec: dict) -> None:
        """Durably bind ``name`` to ``spec`` (idempotent re-register)."""
        if not _NAME_RE.match(name or ""):
            raise ValueError(
                f"invalid graph name {name!r}: need 1-64 chars of "
                "[A-Za-z0-9._-]")
        self.validate_spec(spec)
        with self._lock:
            existing = self._specs.get(name)
            if existing is not None and existing != spec:
                raise ValueError(
                    f"graph {name!r} already registered with a different "
                    f"spec; unregister is deliberately unsupported while "
                    f"jobs may reference it")
            self._specs[name] = spec
            self._save_locked()

    def names(self) -> dict[str, dict]:
        with self._lock:
            return dict(self._specs)

    def _save_locked(self) -> None:
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._specs, fh, sort_keys=True, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        fsync_directory(os.path.dirname(self.path))

    # -- resolution --------------------------------------------------------
    def get(self, ref: str | dict):
        """The standing graph for a name or inline spec (cached by name).

        Inline specs (dicts) are resolved but *not* cached — only named
        graphs are standing; one-off inline graphs die with their job.
        """
        if isinstance(ref, str):
            with self._lock:
                cached = self._cache.get(ref)
                if cached is not None:
                    return cached
                spec = self._specs.get(ref)
            if spec is None:
                raise KeyError(f"no graph registered under {ref!r}")
            graph = self._load(spec)
            with self._lock:
                # Two racers may both load; keep the first, drop ours.
                return self._cache.setdefault(ref, graph)
        self.validate_spec(ref)
        return self._load(ref)

    @staticmethod
    def _load(spec: dict):
        if "dataset" in spec:
            from ..graph.datasets import load_dataset

            return load_dataset(spec["dataset"],
                                scale=int(spec.get("scale", 10)),
                                seed=int(spec.get("seed", 7)))
        if "path" in spec:
            from ..storage.binfmt import load_graph

            graph, _vertex, _edge = load_graph(
                spec["path"], mmap=bool(spec.get("mmap", True)))
            return graph
        from ..storage.shards import ShardStore

        return ShardStore.open(spec["shards"])

    def close(self) -> None:
        """Drop cached graphs (ShardStores get their runners closed)."""
        with self._lock:
            for graph in self._cache.values():
                runner = getattr(graph, "nondet_runner", None)
                closer = (runner().close if callable(runner)
                          else getattr(graph, "close", None))
                if callable(closer):
                    try:
                        closer()
                    except Exception:
                        pass
            self._cache.clear()
