"""Stdlib HTTP front end for the graph service.

A thin, dependency-free JSON API over :class:`~repro.service.scheduler.
GraphService` — ``http.server.ThreadingHTTPServer`` is enough because
every request either reads the in-memory job table under its lock or
enqueues work; no request blocks on a running job.

Routes::

    GET  /healthz                  liveness + job-table summary
    GET  /metrics                  Prometheus text exposition
    GET  /api/graphs               registered graph names -> specs
    POST /api/graphs               {"name": ..., "spec": {...}}
    GET  /api/jobs                 all job statuses
    POST /api/jobs                 submit a JobSpec (job_id optional)
    GET  /api/jobs/<id>            one job's status
    GET  /api/jobs/<id>/result     result summary (409 until done)
    GET  /api/jobs/<id>/trace      telemetry JSONL of the last attempt
    POST /api/jobs/<id>/cancel     request cancellation
    POST /api/gc                   retention sweep of terminal jobs

Error mapping: 400 bad spec, 404 unknown job/graph, 409 result not
ready, 429 admission control (:class:`ServiceBusy`), 500 anything else.

:func:`serve` is the blocking entry point behind ``repro serve``; it
prints ``repro-service listening on http://HOST:PORT`` (so scripts and
CI can bind port 0 and parse the real one) and drains gracefully on
SIGTERM/SIGINT — running jobs stop at their next barrier checkpoint and
resume bit-identically on the next start.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .jobs import JobState
from .scheduler import GraphService, ServiceBusy

__all__ = ["make_server", "serve"]

_MAX_BODY = 1 << 20  # a JobSpec measured in megabytes is an attack


class _Handler(BaseHTTPRequestHandler):
    service: GraphService  # set by make_server on the subclass
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # quiet: the journal is the log
        pass

    def _json(self, status: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY:
            raise ValueError(f"request body length {length} out of range")
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._route_get()
        except (KeyError, LookupError) as exc:
            self._error(404, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, repr(exc))

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._route_post()
        except ServiceBusy as exc:
            self._error(429, str(exc))
        except (KeyError, LookupError) as exc:
            self._error(404, str(exc))
        except (ValueError, TypeError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, repr(exc))

    def _route_get(self) -> None:
        svc = self.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            self._json(200, svc.health())
        elif parts == ["metrics"]:
            body = svc.metrics.to_prometheus().encode()
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif parts == ["api", "graphs"]:
            self._json(200, svc.graphs.names())
        elif parts == ["api", "jobs"]:
            self._json(200, {"jobs": svc.list_jobs()})
        elif len(parts) == 3 and parts[:2] == ["api", "jobs"]:
            self._json(200, svc.status(parts[2]))
        elif len(parts) == 4 and parts[:2] == ["api", "jobs"]:
            job_id, leaf = parts[2], parts[3]
            if leaf == "result":
                status = svc.status(job_id)  # 404 before 409
                if status["state"] != JobState.DONE:
                    self._error(409, f"job {job_id} is {status['state']}, "
                                     "not done")
                else:
                    self._json(200, svc.result(job_id))
            elif leaf == "trace":
                self._stream_trace(job_id)
            else:
                self._error(404, f"unknown endpoint {self.path!r}")
        else:
            self._error(404, f"unknown endpoint {self.path!r}")

    def _route_post(self) -> None:
        svc = self.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["api", "jobs"]:
            job_id = svc.submit(self._body())
            self._json(201, {"job_id": job_id})
        elif parts == ["api", "graphs"]:
            body = self._body()
            svc.graphs.register(body["name"], body["spec"])
            self._json(201, {"name": body["name"]})
        elif (len(parts) == 4 and parts[:2] == ["api", "jobs"]
                and parts[3] == "cancel"):
            self._json(200, svc.cancel(parts[2]))
        elif parts == ["api", "gc"]:
            body = self._body() if int(
                self.headers.get("Content-Length") or 0) > 0 else {}
            unknown = set(body) - {"max_age_s", "max_count"}
            if unknown:
                raise ValueError(
                    f"unknown gc key(s): {', '.join(sorted(unknown))}")
            self._json(200, svc.gc(
                max_age_s=body.get("max_age_s"),
                max_count=body.get("max_count")))
        else:
            self._error(404, f"unknown endpoint {self.path!r}")

    def _stream_trace(self, job_id: str) -> None:
        svc = self.service
        svc.status(job_id)  # raises KeyError -> 404 for unknown jobs
        jdir = svc.job_dir(job_id)
        traces = sorted(
            (f for f in os.listdir(jdir) if f.startswith("trace-"))
            if os.path.isdir(jdir) else [])
        if not traces:
            raise LookupError(f"job {job_id} has no telemetry trace yet")
        path = os.path.join(jdir, traces[-1])
        with open(path, "rb") as fh:
            body = fh.read()
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def make_server(service: GraphService, *, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` serving ``service``.

    ``port=0`` binds an ephemeral port; read ``server.server_address``.
    The caller owns both lifecycles (``service.start()`` /
    ``service.shutdown()`` and ``server.serve_forever()``).
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(data_dir: str, *, host: str = "127.0.0.1", port: int = 8750,
          max_concurrent: int = 2, max_queue: int = 64,
          retain_age_s: float | None = None,
          retain_count: int | None = None) -> int:
    """Blocking entry point behind ``repro serve``.

    Recovers the journal, starts the pool, serves until SIGTERM/SIGINT,
    then drains: running jobs checkpoint at their next barrier and the
    journal is compacted, so the next ``serve`` resumes them losslessly.
    """
    service = GraphService(data_dir, max_concurrent=max_concurrent,
                           max_queue=max_queue, retain_age_s=retain_age_s,
                           retain_count=retain_count)
    service.start()
    server = make_server(service, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro-service listening on http://{bound_host}:{bound_port}",
          flush=True)
    if service.jobs:
        resumed = sum(1 for j in service.jobs.values() if j.resumed)
        print(f"recovered {len(service.jobs)} job(s) from journal "
              f"({resumed} resumed)", flush=True)

    stop = threading.Event()

    def _graceful(signum, frame):  # noqa: ARG001 (signal API)
        stop.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        service.shutdown(drain=True)
    return 0
