"""Job model: specs, lifecycle states, and the journal reducer.

A :class:`JobSpec` is the JSON-able description a client submits; a
:class:`Job` is the scheduler's live view of it — state machine plus
the facts the journal has durably recorded.  :func:`reduce_records`
folds a replayed journal (snapshot state + tail records, see
:mod:`repro.service.journal`) back into the job table; it is a pure,
idempotent reducer, which is what makes snapshot compaction and
crash-between-snapshot-and-truncate replays safe.

Lifecycle::

    PENDING --start--> RUNNING --finish(done)-----> DONE
        \\                 |  \\--finish(failed)---> FAILED
         \\                |  \\--finish(cancelled)-> CANCELLED
          \\               +--(service killed)-----> RUNNING, resumed
           +--finish(cancelled before start)------> CANCELLED

A job found RUNNING during replay was in flight when the service died;
recovery marks it ``resumed`` and re-queues it — its job directory
holds the last barrier checkpoint, so the re-run continues
bit-identically rather than from scratch.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dc_field

__all__ = ["JobState", "JobSpec", "Job", "reduce_records", "job_table_state"]

_JOB_ID_RE = re.compile(r"^j[0-9]{4,}-[0-9a-f]{4}$")

#: Engine-config keys a submission may set (a deliberate allowlist: the
#: spec travels over HTTP, so unknown keys are rejected at admission,
#: not deep inside an engine).
ALLOWED_CONFIG_KEYS = frozenset({
    "threads", "delay", "seed", "max_iterations", "jitter", "atomicity",
    "dispatch", "worker_timeout_s", "direction_alpha", "direction_beta",
})


class JobState:
    """String constants (JSON-friendly) of the job state machine."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})
    ALL = frozenset({PENDING, RUNNING, DONE, FAILED, CANCELLED})


@dataclass(frozen=True)
class JobSpec:
    """What to run: algorithm, graph, engine config, robustness knobs.

    ``graph`` is either a registered graph name (string) or an inline
    spec dict (see :class:`~repro.service.graphs.GraphRegistry`).
    ``throttle_s`` sleeps on the scheduler thread after every iteration
    barrier — a pure pacing knob (wall time only, never semantics) used
    by the chaos tests to pin a job mid-flight, and useful for demos.
    """

    job_id: str
    algorithm: str
    graph: str | dict
    config: dict = dc_field(default_factory=dict)
    mode: str = "nondeterministic"
    vectorized: bool | str = False
    backend: str | None = None
    checkpoint_every: int = 1
    deadline_s: float | None = None
    faults: str | None = None
    record: str | None = None  #: recorder policy name, or None = off
    max_restarts: int = 3
    throttle_s: float = 0.0
    #: delta mode only: seeded mutation-batch spec the service expands
    #: against its graph ({"num_batches": K, "frac": F, "seed": S}) —
    #: a spec rather than edge arrays so the submission stays small and
    #: the draw is reproducible from the journal alone.
    mutations: dict | None = None

    def validate(self) -> None:
        if not _JOB_ID_RE.match(self.job_id):
            raise ValueError(f"malformed job id {self.job_id!r}")
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise ValueError("spec needs an algorithm name")
        if not isinstance(self.graph, (str, dict)) or not self.graph:
            raise ValueError("spec needs a graph name or inline graph spec")
        if not isinstance(self.config, dict):
            raise ValueError("config must be a dict of EngineConfig fields")
        unknown = set(self.config) - ALLOWED_CONFIG_KEYS
        if unknown:
            raise ValueError(
                f"unsupported config key(s): {', '.join(sorted(unknown))}")
        if int(self.checkpoint_every) < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.throttle_s < 0:
            raise ValueError("throttle_s must be >= 0")
        if self.backend not in (None, "process"):
            raise ValueError(f"backend={self.backend!r} not understood")
        if self.record not in (None, "conflicts", "all", "reservoir"):
            raise ValueError(f"record={self.record!r} not a recorder policy")
        if self.mutations is not None:
            if self.mode != "delta":
                raise ValueError("mutations= requires mode='delta'")
            if not isinstance(self.mutations, dict):
                raise ValueError("mutations must be a batch-spec dict")
            unknown = set(self.mutations) - {"num_batches", "frac", "seed"}
            if unknown:
                raise ValueError(
                    f"unknown mutation key(s): {', '.join(sorted(unknown))}")
            if int(self.mutations.get("num_batches", 1)) < 1:
                raise ValueError("mutations.num_batches must be >= 1")
            if not 0 < float(self.mutations.get("frac", 0.001)) <= 1:
                raise ValueError("mutations.frac must be in (0, 1]")
        if self.mode == "delta":
            if self.backend is not None or self.vectorized:
                raise ValueError(
                    "mode='delta' runs the single-process delta engine; "
                    "backend=/vectorized= do not apply")
            if self.faults is not None:
                raise ValueError(
                    "mode='delta' does not compose with fault injection yet")

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "algorithm": self.algorithm,
            "graph": self.graph,
            "config": dict(self.config),
            "mode": self.mode,
            "vectorized": self.vectorized,
            "backend": self.backend,
            "checkpoint_every": self.checkpoint_every,
            "deadline_s": self.deadline_s,
            "faults": self.faults,
            "record": self.record,
            "max_restarts": self.max_restarts,
            "throttle_s": self.throttle_s,
            "mutations": self.mutations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown job-spec field(s): {', '.join(sorted(unknown))}")
        spec = cls(**data)
        spec.validate()
        return spec


@dataclass
class Job:
    """Live view of one job: spec + durably journaled facts."""

    spec: JobSpec
    state: str = JobState.PENDING
    attempts: int = 0  #: number of journaled ``start`` records
    resumed: bool = False  #: recovered from a dead service incarnation
    cancel_requested: bool = False
    draining: bool = False  #: set in memory by graceful shutdown
    iteration: int = -1  #: last journaled barrier iteration
    checkpoint_iteration: int | None = None
    degradations: list = dc_field(default_factory=list)
    result: dict | None = None
    error: str | None = None
    finished_at: float | None = None  #: journaled wall-clock of ``finish``

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    def status(self) -> dict:
        """JSON-able status for the HTTP API / CLI client."""
        out = {
            "job_id": self.job_id,
            "state": self.state,
            "algorithm": self.spec.algorithm,
            "graph": self.spec.graph,
            "attempts": self.attempts,
            "resumed": self.resumed,
            "iteration": self.iteration,
            "checkpoint_iteration": self.checkpoint_iteration,
            "cancel_requested": self.cancel_requested,
        }
        if self.degradations:
            out["degradations"] = list(self.degradations)
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        return out

    def to_state_dict(self) -> dict:
        """Snapshot form (everything the journal would have rebuilt)."""
        return {
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "resumed": self.resumed,
            "cancel_requested": self.cancel_requested,
            "iteration": self.iteration,
            "checkpoint_iteration": self.checkpoint_iteration,
            "degradations": list(self.degradations),
            "result": self.result,
            "error": self.error,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_state_dict(cls, data: dict) -> "Job":
        return cls(
            spec=JobSpec.from_dict(data["spec"]),
            state=data.get("state", JobState.PENDING),
            attempts=int(data.get("attempts", 0)),
            resumed=bool(data.get("resumed", False)),
            cancel_requested=bool(data.get("cancel_requested", False)),
            iteration=int(data.get("iteration", -1)),
            checkpoint_iteration=data.get("checkpoint_iteration"),
            degradations=list(data.get("degradations", ())),
            result=data.get("result"),
            error=data.get("error"),
            finished_at=data.get("finished_at"),
        )


def reduce_records(jobs: dict[str, Job], records) -> dict[str, Job]:
    """Fold journal records into the job table (idempotent; in place).

    Unknown record types pass through untouched — the same
    forward-compatibility stance as the trace readers.
    """
    for rec in records:
        rtype = rec.get("type")
        if rtype == "submit":
            spec = JobSpec.from_dict(rec["spec"])
            if spec.job_id not in jobs:
                jobs[spec.job_id] = Job(spec=spec)
            continue
        job = jobs.get(rec.get("job"))
        if job is None:
            continue
        if rtype == "start":
            job.state = JobState.RUNNING
            job.attempts = max(job.attempts, int(rec.get("attempt", 1)))
        elif rtype == "barrier":
            job.iteration = max(job.iteration, int(rec.get("iteration", -1)))
            ci = rec.get("checkpoint_iteration")
            if ci is not None:
                job.checkpoint_iteration = int(ci)
        elif rtype == "degrade":
            event = rec.get("event", {})
            if event not in job.degradations:
                job.degradations.append(event)
        elif rtype == "cancel":
            job.cancel_requested = True
            if job.state == JobState.PENDING:
                job.state = JobState.CANCELLED
        elif rtype == "finish":
            job.state = rec.get("status", JobState.DONE)
            job.result = rec.get("result")
            job.error = rec.get("error")
            if rec.get("finished_at") is not None:
                job.finished_at = float(rec["finished_at"])
        elif rtype == "forget":
            # Retention GC: the job and its artifacts are gone; replaying
            # a forget for an already-absent job is a no-op (idempotent).
            jobs.pop(job.job_id, None)
    return jobs


def job_table_state(jobs: dict[str, Job]) -> dict:
    """Snapshot payload for :meth:`JobJournal.compact`."""
    return {jid: job.to_state_dict() for jid, job in sorted(jobs.items())}
