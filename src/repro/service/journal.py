"""The write-ahead job journal: no job outcome survives only in RAM.

Every lifecycle transition the scheduler makes — submit, start,
barrier checkpoint, degradation, finish, cancel request — is appended
to ``journal.jsonl`` (one JSON object per line, flushed and fsynced)
*before* the in-memory job table changes.  A SIGKILL'd service replays
the journal on restart and recovers the exact job table the crashed
incarnation had durably reached: finished jobs keep their results,
in-flight jobs come back as resumable work items pointing at their
last barrier checkpoint.

Durability contract
-------------------
* **Append = durable.**  :meth:`JobJournal.append` writes the line,
  flushes, and fsyncs before returning (``fsync=False`` relaxes this
  for tests).  Records carry a monotone ``seq`` so replay order is
  explicit even across compactions.
* **Torn tails are facts, not errors.**  A SIGKILL can land mid-append.
  Replay reuses the telemetry reader's truncated-line idiom
  (:func:`repro.obs.trace.read_trace`): a torn *final* line is dropped
  and reported; a bad line anywhere earlier is corruption and raises.
* **Snapshots are atomic and durable-ordered.**  :meth:`compact` folds
  the replayed state into ``snapshot.json`` via tmp + fsync +
  ``os.replace`` + parent-directory fsync (the same discipline as
  :func:`repro.storage.checkpoint.save_checkpoint`), *then* truncates
  the journal.  A crash between the two leaves snapshot + full journal,
  which replays to the same state — re-applying a record is idempotent
  because the job table reducer is.

The journal stores *what* happened; the job-table reducer that folds
records into :class:`~repro.service.jobs.Job` objects lives with the
job model in :mod:`repro.service.jobs`.
"""

from __future__ import annotations

import json
import os
from typing import Iterator

from ..obs.trace import read_trace
from ..storage.checkpoint import fsync_directory

__all__ = ["JournalError", "JobJournal"]

_SNAPSHOT_VERSION = 1


class JournalError(RuntimeError):
    """The journal is corrupt beyond the tolerated torn tail."""


class JobJournal:
    """Append-only JSONL journal with atomic snapshot compaction.

    Parameters
    ----------
    directory:
        Holds ``journal.jsonl`` (the tail of records since the last
        snapshot) and ``snapshot.json`` (the folded state before them).
        Created if missing.
    fsync:
        Fsync every append (the durability contract).  Tests that
        measure throughput may disable it; the service never does.
    """

    def __init__(self, directory: str | os.PathLike, *, fsync: bool = True):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.journal_path = os.path.join(self.directory, "journal.jsonl")
        self.snapshot_path = os.path.join(self.directory, "snapshot.json")
        self._fsync = bool(fsync)
        self._fh = None
        self._seq = 0
        #: set when the last journal line was torn — the signature of a
        #: service killed mid-append
        self.torn_tail = False
        self._truncate_torn()
        self._recover_seq()

    def _truncate_torn(self) -> None:
        """Physically drop a torn final line before the first append.

        A SIGKILL mid-append leaves a final line with no trailing
        newline; merely *ignoring* it on replay is not enough, because
        the next incarnation's first append would concatenate onto the
        partial line and corrupt a record mid-file.  The torn bytes were
        never durable by the journal's own contract, so truncating them
        is safe.  (A complete record missing only its newline — the kill
        landed between the two writes — is durable: keep it and just
        terminate the line.)
        """
        try:
            fh = open(self.journal_path, "rb+")
        except FileNotFoundError:
            return
        with fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return
            cut = data.rfind(b"\n") + 1
            try:
                json.loads(data[cut:].decode("utf-8"))
                fh.write(b"\n")
            except (ValueError, UnicodeDecodeError):
                fh.truncate(cut)
            fh.flush()
            os.fsync(fh.fileno())
            self.torn_tail = True

    # -- writing -----------------------------------------------------------
    def append(self, record_type: str, **fields) -> dict:
        """Durably append one record; returns it (with its ``seq``)."""
        self._seq += 1
        record = {"seq": self._seq, "type": record_type, **fields}
        if self._fh is None:
            self._fh = open(self.journal_path, "a", encoding="utf-8")
        json.dump(record, self._fh, sort_keys=True, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------------
    def _snapshot(self) -> dict | None:
        if not os.path.exists(self.snapshot_path):
            return None
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as fh:
                snap = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(
                f"{self.snapshot_path}: corrupt snapshot: {exc}") from exc
        if snap.get("version") != _SNAPSHOT_VERSION:
            raise JournalError(
                f"{self.snapshot_path}: unsupported snapshot version "
                f"{snap.get('version')!r}")
        return snap

    def _tail_records(self) -> list[dict]:
        if not os.path.exists(self.journal_path):
            return []
        try:
            records = read_trace(self.journal_path)
        except ValueError as exc:
            raise JournalError(str(exc)) from exc
        if records and records[-1].get("type") == "truncated":
            self.torn_tail = True
            records = records[:-1]
        return records

    def replay(self) -> tuple[dict | None, list[dict]]:
        """``(snapshot, tail)``: folded state plus the records after it.

        The tail is filtered to records with ``seq`` greater than the
        snapshot's high-water mark, so a crash between snapshot rename
        and journal truncation (which leaves both files complete)
        replays each record exactly once.
        """
        snap = self._snapshot()
        tail = self._tail_records()
        if snap is not None:
            floor = int(snap.get("seq", 0))
            tail = [r for r in tail if int(r.get("seq", 0)) > floor]
        return snap, tail

    def records(self) -> Iterator[dict]:
        """Just the tail records (snapshot-unaware); for tests."""
        return iter(self._tail_records())

    def _recover_seq(self) -> None:
        snap = self._snapshot()
        seq = int(snap.get("seq", 0)) if snap else 0
        for rec in self._tail_records():
            seq = max(seq, int(rec.get("seq", 0)))
        self._seq = seq

    # -- compaction --------------------------------------------------------
    def compact(self, state: dict) -> None:
        """Atomically persist ``state`` as the snapshot; truncate the tail.

        ``state`` is the caller's folded job table (anything JSON-able).
        The write is crash-safe at every step: tmp + fsync + rename +
        directory fsync, then a fresh (empty, fsynced) journal.
        """
        self.close()
        snap = {"version": _SNAPSHOT_VERSION, "seq": self._seq, "state": state}
        tmp = f"{self.snapshot_path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(snap, fh, sort_keys=True, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
            fsync_directory(self.directory)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise JournalError(
                f"cannot write snapshot {self.snapshot_path}: {exc}") from exc
        # Truncate only after the snapshot is durable; a crash in between
        # leaves snapshot + stale tail, which replay() deduplicates by seq.
        with open(self.journal_path, "w", encoding="utf-8") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        self.torn_tail = False

    def sweep_tmp_files(self) -> list[str]:
        """Remove orphaned ``*.tmp.<pid>`` files a killed compaction left."""
        removed = []
        for name in sorted(os.listdir(self.directory)):
            if ".tmp." in name:
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed.append(name)
                except OSError:
                    pass
        return removed
