"""The supervisor pool: concurrent supervised jobs with WAL recovery.

:class:`GraphService` owns a data directory and runs jobs against
standing graphs under the full robustness stack:

* every lifecycle transition hits the :class:`~repro.service.journal.
  JobJournal` *before* the in-memory table changes (write-ahead), so a
  SIGKILL'd service recovers every job durably reached;
* each job runs under :func:`~repro.robust.supervised_run` with its own
  checkpoint file, degradation policy, deadline, and recorder — the
  PR-4 primitives, now load-bearing under concurrency;
* each job is resource-scoped: its shared-memory segments carry the
  ``<service>-<job id>`` namespace (:func:`~repro.storage.shm.
  segment_namespace`), its traces/checkpoints/results live under
  ``jobs/<job id>/``, and startup sweeps orphans of dead incarnations;
* graceful shutdown *drains*: running jobs stop at their next barrier
  checkpoint (via the supervisor ``interrupt`` hook) and resume
  bit-identically on the next start.

Data directory layout::

    data_dir/
      journal/journal.jsonl     WAL tail (fsync per append)
      journal/snapshot.json     compacted job table
      graphs.json               named-graph registry
      jobs/<job id>/state.ckpt  last barrier checkpoint (atomic)
      jobs/<job id>/trace-<k>.jsonl   telemetry of service incarnation k
      jobs/<job id>/record-<k>.jsonl  recorder provenance (if enabled)
      jobs/<job id>/result.npy  final per-vertex output (bit-exact)
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import secrets
import threading
import time

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import Telemetry
from ..robust.errors import RunInterrupted
from ..robust.watchdog import DegradationPolicy
from ..storage.checkpoint import config_from_dict
from ..storage.shm import segment_namespace, sweep_orphaned_segments
from .graphs import GraphRegistry
from .jobs import Job, JobSpec, JobState, job_table_state, reduce_records
from .journal import JobJournal

__all__ = ["GraphService", "ServiceBusy", "resolve_algorithm"]

#: journal tail length that triggers snapshot compaction at startup
_COMPACT_THRESHOLD = 4096


class ServiceBusy(RuntimeError):
    """Admission control rejected a submission (queue at capacity)."""


def resolve_algorithm(name: str):
    """Algorithm factory by CLI name (lazy: avoids a cli import cycle)."""
    from ..cli import ALGORITHMS

    factory = ALGORITHMS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from "
            f"{', '.join(sorted(ALGORITHMS))}")
    return factory


def _service_namespace(data_dir: str) -> str:
    digest = hashlib.sha256(os.path.abspath(data_dir).encode()).hexdigest()
    return "svc" + digest[:8]


class GraphService:
    """Crash-safe multi-job scheduler around ``supervised_run``.

    Parameters
    ----------
    data_dir:
        Everything durable lives here; two services must not share one.
    max_concurrent:
        Worker threads, i.e. jobs running at once.
    max_queue:
        Admission control: submissions beyond this many non-terminal
        jobs raise :class:`ServiceBusy` (HTTP 429).
    fsync:
        Journal durability (disable only in throughput tests).
    """

    def __init__(self, data_dir: str | os.PathLike, *, max_concurrent: int = 2,
                 max_queue: int = 64, fsync: bool = True,
                 retain_age_s: float | None = None,
                 retain_count: int | None = None):
        self.data_dir = os.fspath(data_dir)
        self.retain_age_s = retain_age_s
        self.retain_count = retain_count
        os.makedirs(self.data_dir, exist_ok=True)
        self.namespace = _service_namespace(self.data_dir)
        self.journal = JobJournal(os.path.join(self.data_dir, "journal"),
                                  fsync=fsync)
        self.graphs = GraphRegistry(os.path.join(self.data_dir, "graphs.json"))
        self.metrics = MetricsRegistry()
        self.max_concurrent = int(max_concurrent)
        self.max_queue = int(max_queue)
        self.jobs: dict[str, Job] = {}
        self.swept_segments: list[str] = []
        self._queue: queue.Queue[str] = queue.Queue()
        self._lock = threading.RLock()
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = False
        self._started = False
        self._seq = 0
        self._running = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover from the journal, sweep orphans, start the pool."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self.recover()
        for w in range(self.max_concurrent):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"repro-service-worker-{w}",
                                 daemon=True)
            t.start()
            self._workers.append(t)

    def recover(self) -> None:
        """Rebuild the job table from snapshot + WAL; requeue survivors."""
        snap, tail = self.journal.replay()
        jobs: dict[str, Job] = {}
        if snap is not None:
            for data in snap.get("state", {}).values():
                job = Job.from_state_dict(data)
                jobs[job.job_id] = job
        reduce_records(jobs, tail)
        if self.journal.torn_tail:
            self.journal.append("recovered", note="torn journal tail dropped")
        self._seq = max(
            (int(jid[1:jid.index("-")]) for jid in jobs), default=0)
        requeued = 0
        for job in sorted(jobs.values(), key=lambda j: j.job_id):
            if job.state == JobState.RUNNING:
                # In flight when the previous incarnation died: resume
                # from its last barrier checkpoint (or scratch if the
                # death predated the first checkpoint).
                job.resumed = True
                self.metrics.counter("service_jobs_resumed_total").inc()
            if job.cancel_requested and job.state not in JobState.TERMINAL:
                job.state = JobState.CANCELLED
                self.journal.append("finish", job=job.job_id,
                                    status=JobState.CANCELLED)
                continue
            if job.state in (JobState.PENDING, JobState.RUNNING):
                self._queue.put(job.job_id)
                requeued += 1
        self.jobs = jobs
        # Resource sweep: segments and scratch of dead incarnations.
        # Nothing is running yet, so no namespace is live.
        self.swept_segments = sweep_orphaned_segments(self.namespace)
        if self.swept_segments:
            self.metrics.counter("service_segments_swept_total").inc(
                len(self.swept_segments))
        swept_files = self.journal.sweep_tmp_files()
        swept_files += self._sweep_job_scratch()
        if self.swept_segments or swept_files or requeued:
            self.journal.append(
                "recovery_sweep", segments=self.swept_segments,
                files=swept_files, requeued=requeued)
        if self.retain_age_s is not None or self.retain_count is not None:
            self.gc(max_age_s=self.retain_age_s, max_count=self.retain_count)
        if len(tail) > _COMPACT_THRESHOLD:
            self.journal.compact(job_table_state(self.jobs))

    def _sweep_job_scratch(self) -> list[str]:
        """Remove ``*.tmp.<pid>`` litter a killed checkpoint write left."""
        removed = []
        jobs_root = os.path.join(self.data_dir, "jobs")
        if not os.path.isdir(jobs_root):
            return removed
        for jid in sorted(os.listdir(jobs_root)):
            jdir = os.path.join(jobs_root, jid)
            if not os.path.isdir(jdir):
                continue
            for name in sorted(os.listdir(jdir)):
                if ".tmp." in name:
                    try:
                        os.unlink(os.path.join(jdir, name))
                        removed.append(f"{jid}/{name}")
                    except OSError:
                        pass
        return removed

    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool; with ``drain`` jobs stop at their next barrier.

        Drained jobs stay ``running`` in the journal — exactly the state
        a crash would leave — so the next :meth:`start` resumes them
        from the checkpoint their drain wrote.  Queued jobs stay
        ``pending``.  The job table is compacted on the way out.
        """
        self._draining = bool(drain)
        self._stop.set()
        deadline = time.monotonic() + timeout
        for t in self._workers:
            t.join(max(0.0, deadline - time.monotonic()))
        self._workers = []
        with self._lock:
            self.journal.compact(job_table_state(self.jobs))
            self.journal.close()
        self.graphs.close()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(self, spec: dict | JobSpec) -> str:
        """Admit a job: validate, journal ``submit``, enqueue."""
        if isinstance(spec, JobSpec):
            data = spec.to_dict()
        else:
            data = dict(spec)
        if not data.get("job_id"):
            with self._lock:
                self._seq += 1
                data["job_id"] = f"j{self._seq:04d}-{secrets.token_hex(2)}"
        job_spec = JobSpec.from_dict(data)
        if job_spec.mode == "pure-async":
            raise ValueError(
                "pure-async is barrier-free: no consistent cut to "
                "checkpoint, so the service cannot make it crash-safe")
        resolve_algorithm(job_spec.algorithm)  # fail fast on bad names
        if isinstance(job_spec.graph, str):
            if job_spec.graph not in self.graphs.names():
                raise KeyError(
                    f"no graph registered under {job_spec.graph!r}")
        else:
            self.graphs.validate_spec(job_spec.graph)
        with self._lock:
            active = sum(1 for j in self.jobs.values()
                         if j.state not in JobState.TERMINAL)
            if active >= self.max_queue:
                raise ServiceBusy(
                    f"{active} jobs queued or running (limit "
                    f"{self.max_queue}); retry later")
            if job_spec.job_id in self.jobs:
                raise ValueError(f"job id {job_spec.job_id!r} already exists")
            self.journal.append("submit", job=job_spec.job_id,
                                spec=job_spec.to_dict())
            self.jobs[job_spec.job_id] = Job(spec=job_spec)
            self.metrics.counter("service_jobs_submitted_total").inc()
        self._queue.put(job_spec.job_id)
        return job_spec.job_id

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; running jobs stop at the next barrier."""
        with self._lock:
            job = self._get(job_id)
            if job.state in JobState.TERMINAL:
                return job.status()
            self.journal.append("cancel", job=job_id)
            job.cancel_requested = True
            if job.state == JobState.PENDING:
                job.state = JobState.CANCELLED
                self.journal.append("finish", job=job_id,
                                    status=JobState.CANCELLED)
            return job.status()

    def status(self, job_id: str) -> dict:
        with self._lock:
            return self._get(job_id).status()

    def list_jobs(self) -> list[dict]:
        with self._lock:
            return [self.jobs[jid].status() for jid in sorted(self.jobs)]

    def result(self, job_id: str) -> dict:
        with self._lock:
            job = self._get(job_id)
            if job.state != JobState.DONE or job.result is None:
                raise LookupError(
                    f"job {job_id} has no result (state: {job.state})")
            return dict(job.result)

    def result_array(self, job_id: str) -> np.ndarray:
        path = os.path.join(self.job_dir(job_id), "result.npy")
        return np.load(path)

    def health(self) -> dict:
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self.jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "ok": True,
            "namespace": self.namespace,
            "jobs": by_state,
            "queue_depth": self._queue.qsize(),
            "max_concurrent": self.max_concurrent,
            "graphs": sorted(self.graphs.names()),
            "draining": self._draining,
        }

    def gc(self, *, max_age_s: float | None = None,
           max_count: int | None = None) -> dict:
        """Retention sweep: forget terminal jobs and delete their artifacts.

        ``max_age_s`` sweeps terminal jobs that finished more than that
        many seconds ago; ``max_count`` keeps only the newest that many
        terminal jobs.  Both criteria compose (a job is swept if either
        says so).  Each sweep journals a ``forget`` record *before*
        removing ``jobs/<id>/`` — replaying a forget for an already-gone
        job is a no-op, so a crash mid-sweep is safe — and the table is
        compacted afterwards so forgotten jobs do not linger in the
        snapshot.  Running and pending jobs are never touched.
        """
        import shutil

        now = time.time()

        def finished(job: Job) -> float:
            if job.finished_at is not None:
                return job.finished_at
            # Jobs journaled before finished_at existed: fall back to
            # the artifact directory's mtime, else treat as ancient.
            try:
                return os.path.getmtime(self.job_dir(job.job_id))
            except OSError:
                return 0.0

        with self._lock:
            terminal = sorted(
                (j for j in self.jobs.values()
                 if j.state in JobState.TERMINAL),
                key=lambda j: (-finished(j), j.job_id))
            victims = []
            for rank, job in enumerate(terminal):
                too_old = (max_age_s is not None
                           and now - finished(job) > max_age_s)
                overflow = max_count is not None and rank >= max_count
                if too_old or overflow:
                    victims.append(job)
            for job in victims:
                self.journal.append("forget", job=job.job_id)
                self.jobs.pop(job.job_id, None)
                shutil.rmtree(self.job_dir(job.job_id), ignore_errors=True)
            if victims:
                self.journal.compact(job_table_state(self.jobs))
                self.metrics.counter("service_jobs_forgotten_total").inc(
                    len(victims))
            return {"swept": [j.job_id for j in victims],
                    "kept": len(terminal) - len(victims)}

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.data_dir, "jobs", job_id)

    def _get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"no such job {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # the workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            with self._lock:
                job = self.jobs.get(job_id)
                if job is None or job.state in JobState.TERMINAL:
                    continue
            gauge = self.metrics.gauge("service_jobs_running")
            with self._lock:
                self._running += 1
                gauge.set(self._running)
            try:
                self._run_job(job)
            except Exception as exc:  # defensive: a worker never dies
                self._finish(job, JobState.FAILED, error=repr(exc))
            finally:
                with self._lock:
                    self._running -= 1
                    gauge.set(self._running)
                self.metrics.gauge("service_queue_depth").set(
                    self._queue.qsize())

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        jdir = self.job_dir(job.job_id)
        os.makedirs(jdir, exist_ok=True)
        ckpt_path = os.path.join(jdir, "state.ckpt")
        with self._lock:
            job.state = JobState.RUNNING
            attempt = job.attempts + 1
            job.attempts = attempt
            self.journal.append("start", job=job.job_id, attempt=attempt,
                                resumed=job.resumed)
        resume_from = ckpt_path if (job.resumed
                                    and os.path.exists(ckpt_path)) else None
        program = resolve_algorithm(spec.algorithm)()
        graph = self.graphs.get(spec.graph)
        config = config_from_dict(spec.config) if spec.config else None

        every = int(spec.checkpoint_every)

        def on_iteration(span) -> None:
            # Runs after post_iteration: the barrier's checkpoint (if
            # due) is already durable on disk, so journaling a record
            # that references it preserves the WAL ordering invariant.
            ckpt_iter = (span.iteration + 1
                         if (span.iteration + 1) % every == 0 else None)
            with self._lock:
                job.iteration = span.iteration
                if ckpt_iter is not None:
                    job.checkpoint_iteration = ckpt_iter
                self.journal.append(
                    "barrier", job=job.job_id, iteration=span.iteration,
                    frontier=span.frontier_size,
                    checkpoint_iteration=ckpt_iter)
            if spec.throttle_s > 0:
                time.sleep(spec.throttle_s)

        def interrupt() -> str | None:
            if job.cancel_requested:
                return "cancel"
            if self._draining and self._stop.is_set():
                return "drain"
            return None

        sink = Telemetry(
            trace_path=os.path.join(jdir, f"trace-{attempt}.jsonl"),
            on_iteration=on_iteration)
        recorder = None
        if spec.record is not None:
            from ..obs.recorder import Recorder

            recorder = Recorder(
                policy=spec.record,
                trace_path=os.path.join(jdir, f"record-{attempt}.jsonl"))

        from ..robust.supervisor import supervised_run

        t0 = time.monotonic()
        try:
            if spec.mode == "delta":
                # The delta engine has no barrier checkpoints yet: a
                # killed or drained delta job re-runs from scratch on
                # the next incarnation (journaled barriers still drive
                # progress reporting; cancel/drain interrupt cleanly).
                from ..engine.runner import run as engine_run
                from ..graph.mutations import generate_batches

                batches = None
                if spec.mutations is not None:
                    m = spec.mutations
                    batches = generate_batches(
                        graph, int(m.get("num_batches", 3)),
                        float(m.get("frac", 0.001)), int(m.get("seed", 7)))
                result = engine_run(
                    program, graph, mode="delta", config=config,
                    telemetry=sink, record=recorder,
                    mutations=batches, interrupt=interrupt)
            else:
                with segment_namespace(f"{self.namespace}-{job.job_id}"):
                    result = supervised_run(
                        program, graph, mode=spec.mode, config=config,
                        vectorized=spec.vectorized, backend=spec.backend,
                        telemetry=sink, record=recorder, faults=spec.faults,
                        policy=DegradationPolicy(
                            max_restarts=spec.max_restarts),
                        checkpoint=ckpt_path,
                        checkpoint_every=spec.checkpoint_every,
                        resume_from=resume_from, deadline_s=spec.deadline_s,
                        interrupt=interrupt,
                    )
        except RunInterrupted as stop:
            sink.close()
            if stop.reason == "cancel":
                self._finish(job, JobState.CANCELLED)
            else:
                # Drain: journal nothing terminal — the job is exactly
                # where a crash would leave it, and the WAL already
                # records the barrier its checkpoint covers.
                with self._lock:
                    self.journal.append("drain", job=job.job_id,
                                        iteration=stop.iteration)
            return
        except Exception as exc:
            sink.close()
            self._finish(job, JobState.FAILED, error=repr(exc))
            return

        arr = np.ascontiguousarray(result.result())
        np.save(os.path.join(jdir, "result.npy"), arr)
        summary = {
            "converged": bool(result.converged),
            "iterations": int(result.num_iterations),
            "state_sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
            "conflicts": result.conflicts.summary(),
            "resumed": resume_from is not None,
            "attempts": attempt,
            "wall_s": round(time.monotonic() - t0, 6),
        }
        if spec.mode == "delta":
            summary["delta"] = result.extra.get("delta")
            if "mutations" in result.extra:
                summary["mutations"] = [
                    {k: v for k, v in m.items() if k != "seeds"}
                    for m in result.extra["mutations"]]
        degradations = result.extra.get("degradations")
        if degradations:
            summary["degradations"] = degradations
            with self._lock:
                for event in degradations:
                    self.journal.append("degrade", job=job.job_id, event=event)
        self.metrics.histogram("service_job_seconds").observe(
            summary["wall_s"])
        self._finish(job, JobState.DONE, result=summary)

    def _finish(self, job: Job, status: str, *, result: dict | None = None,
                error: str | None = None) -> None:
        with self._lock:
            finished_at = time.time()
            record: dict = {"job": job.job_id, "status": status,
                            "finished_at": finished_at}
            if result is not None:
                record["result"] = result
            if error is not None:
                record["error"] = error
            self.journal.append("finish", **record)
            job.state = status
            job.result = result
            job.error = error
            job.finished_at = finished_at
            self.metrics.counter("service_jobs_finished_total",
                                 status=status).inc()
