"""On-disk graph storage: binary containers, PSW shards, and checkpoints."""

from .binfmt import load_graph, save_graph
from .checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from .shards import IOStats, OutOfCoreRunner, Shard, ShardedGraph

__all__ = [
    "load_graph",
    "save_graph",
    "Checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "IOStats",
    "OutOfCoreRunner",
    "Shard",
    "ShardedGraph",
]
