"""Graph storage substrates: binary containers, PSW shards, checkpoints,
and shared-memory array pools for the multi-process backend."""

from .binfmt import load_graph, save_graph
from .checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from .shards import (
    IOStats,
    OutOfCoreRunner,
    Shard,
    ShardStore,
    ShardedGraph,
    StoreGraphView,
)
from .shm import ArrayLayout, SharedArrayPool

__all__ = [
    "load_graph",
    "save_graph",
    "ArrayLayout",
    "SharedArrayPool",
    "Checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "IOStats",
    "OutOfCoreRunner",
    "Shard",
    "ShardStore",
    "ShardedGraph",
    "StoreGraphView",
]
