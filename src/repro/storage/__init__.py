"""On-disk graph storage: binary containers and GraphChi-style PSW shards."""

from .binfmt import load_graph, save_graph
from .shards import IOStats, OutOfCoreRunner, Shard, ShardedGraph

__all__ = [
    "load_graph",
    "save_graph",
    "IOStats",
    "OutOfCoreRunner",
    "Shard",
    "ShardedGraph",
]
