"""Compact binary graph format.

GraphChi preprocesses text edge lists into binary shards once and then
reuses them; this module provides the equivalent first stage — a
single-file binary container for a :class:`~repro.graph.DiGraph` plus
optional named per-edge and per-vertex value arrays.

Layout (little-endian)::

    magic   8 bytes   b"RPROGRF1"
    header  3 x u64   num_vertices, num_edges, num_arrays
    src     E x i64
    dst     E x i64
    arrays  repeated: name_len u16, name utf-8,
                      kind u8 (0 = vertex, 1 = edge),
                      dtype_len u16, dtype str, raw data

The format is intentionally simple and self-describing so tests can
byte-poke corruption scenarios.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..graph import DiGraph

__all__ = ["save_graph", "load_graph", "MAGIC"]

MAGIC = b"RPROGRF1"
_KIND_VERTEX = 0
_KIND_EDGE = 1


def save_graph(
    graph: DiGraph,
    path: str | os.PathLike,
    *,
    vertex_arrays: dict[str, np.ndarray] | None = None,
    edge_arrays: dict[str, np.ndarray] | None = None,
) -> None:
    """Serialize ``graph`` (and optional value arrays) to ``path``."""
    vertex_arrays = vertex_arrays or {}
    edge_arrays = edge_arrays or {}
    for name, arr in vertex_arrays.items():
        if arr.shape != (graph.num_vertices,):
            raise ValueError(f"vertex array {name!r} has shape {arr.shape}")
    for name, arr in edge_arrays.items():
        if arr.shape != (graph.num_edges,):
            raise ValueError(f"edge array {name!r} has shape {arr.shape}")

    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(
            struct.pack(
                "<QQQ",
                graph.num_vertices,
                graph.num_edges,
                len(vertex_arrays) + len(edge_arrays),
            )
        )
        fh.write(graph.edge_src.astype("<i8").tobytes())
        fh.write(graph.edge_dst.astype("<i8").tobytes())
        for kind, arrays in ((_KIND_VERTEX, vertex_arrays), (_KIND_EDGE, edge_arrays)):
            for name, arr in arrays.items():
                name_b = name.encode("utf-8")
                dtype_b = arr.dtype.str.encode("ascii")
                fh.write(struct.pack("<H", len(name_b)))
                fh.write(name_b)
                fh.write(struct.pack("<B", kind))
                fh.write(struct.pack("<H", len(dtype_b)))
                fh.write(dtype_b)
                fh.write(np.ascontiguousarray(arr).tobytes())


def load_graph(
    path: str | os.PathLike,
) -> tuple[DiGraph, dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Load a graph container; returns ``(graph, vertex_arrays, edge_arrays)``."""
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path}: not a repro graph file (bad magic {magic!r})")
        n, m, num_arrays = struct.unpack("<QQQ", fh.read(24))
        src = np.frombuffer(fh.read(8 * m), dtype="<i8")
        dst = np.frombuffer(fh.read(8 * m), dtype="<i8")
        if src.size != m or dst.size != m:
            raise ValueError(f"{path}: truncated edge section")
        graph = DiGraph(n, src, dst)
        vertex_arrays: dict[str, np.ndarray] = {}
        edge_arrays: dict[str, np.ndarray] = {}
        for _ in range(num_arrays):
            (name_len,) = struct.unpack("<H", fh.read(2))
            name = fh.read(name_len).decode("utf-8")
            (kind,) = struct.unpack("<B", fh.read(1))
            (dtype_len,) = struct.unpack("<H", fh.read(2))
            dtype = np.dtype(fh.read(dtype_len).decode("ascii"))
            count = n if kind == _KIND_VERTEX else m
            raw = fh.read(dtype.itemsize * count)
            arr = np.frombuffer(raw, dtype=dtype)
            if arr.size != count:
                raise ValueError(f"{path}: truncated array {name!r}")
            if kind == _KIND_VERTEX:
                vertex_arrays[name] = arr.copy()
            elif kind == _KIND_EDGE:
                edge_arrays[name] = arr.copy()
            else:
                raise ValueError(f"{path}: unknown array kind {kind}")
    return graph, vertex_arrays, edge_arrays
