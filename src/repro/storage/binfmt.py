"""Compact binary graph containers.

GraphChi preprocesses text edge lists into binary shards once and then
reuses them; this module provides the equivalent first stage — a
single-file binary container for a :class:`~repro.graph.DiGraph` plus
optional named per-edge and per-vertex value arrays.

Two on-disk versions exist:

Version 1 (legacy, still readable; write with ``version=1``)::

    magic   8 bytes   b"RPROGRF1"
    header  3 x u64   num_vertices, num_edges, num_arrays
    src     E x i64
    dst     E x i64
    arrays  repeated: name_len u16, name utf-8,
                      kind u8 (0 = vertex, 1 = edge),
                      dtype_len u16, dtype str, raw data

Version 2 (default) adds a table of contents and page-aligned blocks so
:func:`load_graph` can hand back zero-copy ``np.memmap`` views::

    magic   8 bytes   b"RPROGRF2"
    header  4 x u64   num_vertices, num_edges, num_arrays, toc_bytes
    toc     repeated: name_len u16, name utf-8, kind u8,
                      dtype_len u16, dtype str, count u64, offset u64
    blocks  raw array data, each starting at an offset that is a
            multiple of ``mmap.ALLOCATIONGRANULARITY``

Version-2 kinds extend the v1 set: 2/3 carry the canonical edge-source
and edge-destination topology and 4 is an arbitrary-length metadata
block (used by the PSW shard store for interval indexes).  The format
stays self-describing and byte-pokeable so tests can exercise
corruption scenarios, including a torn header (a file that ends inside
the fixed header or the TOC).
"""

from __future__ import annotations

import mmap as _mmap
import os
import struct

import numpy as np

from ..graph import DiGraph

__all__ = [
    "save_graph",
    "load_graph",
    "write_container",
    "open_container",
    "MAGIC",
    "MAGIC2",
    "KIND_VERTEX",
    "KIND_EDGE",
    "KIND_TOPO_SRC",
    "KIND_TOPO_DST",
    "KIND_META",
]

MAGIC = b"RPROGRF1"
MAGIC2 = b"RPROGRF2"

KIND_VERTEX = 0
KIND_EDGE = 1
KIND_TOPO_SRC = 2
KIND_TOPO_DST = 3
KIND_META = 4

_V1_HEADER = struct.Struct("<QQQ")
_V2_HEADER = struct.Struct("<QQQQ")
_ALIGN = _mmap.ALLOCATIONGRANULARITY


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------------
# low-level v2 container
# ---------------------------------------------------------------------------

def write_container(
    path: str | os.PathLike,
    *,
    num_vertices: int,
    num_edges: int,
    arrays: list[tuple[str, int, np.ndarray]],
) -> None:
    """Write a v2 container holding ``(name, kind, array)`` blocks.

    Every block is 1-D and starts page-aligned so a reader can map it
    zero-copy.  ``KIND_VERTEX``/``KIND_EDGE`` blocks must match the
    vertex/edge counts; ``KIND_META`` blocks may have any length.
    """
    prepared: list[tuple[bytes, int, bytes, np.ndarray]] = []
    for name, kind, arr in arrays:
        arr = np.ascontiguousarray(arr)
        if arr.ndim != 1:
            raise ValueError(f"container array {name!r} must be 1-D, got shape {arr.shape}")
        if kind == KIND_VERTEX and arr.size != num_vertices:
            raise ValueError(f"vertex array {name!r} has shape {arr.shape}")
        if kind in (KIND_EDGE, KIND_TOPO_SRC, KIND_TOPO_DST) and arr.size != num_edges:
            raise ValueError(f"edge array {name!r} has shape {arr.shape}")
        prepared.append((name.encode("utf-8"), int(kind), arr.dtype.str.encode("ascii"), arr))

    toc_bytes = sum(2 + len(nb) + 1 + 2 + len(db) + 16 for nb, _, db, _ in prepared)
    offset = _align(len(MAGIC2) + _V2_HEADER.size + toc_bytes)
    offsets: list[int] = []
    for _, _, _, arr in prepared:
        offsets.append(offset)
        offset = _align(offset + arr.nbytes)

    with open(path, "wb") as fh:
        fh.write(MAGIC2)
        fh.write(_V2_HEADER.pack(num_vertices, num_edges, len(prepared), toc_bytes))
        for (nb, kind, db, arr), off in zip(prepared, offsets):
            fh.write(struct.pack("<H", len(nb)))
            fh.write(nb)
            fh.write(struct.pack("<B", kind))
            fh.write(struct.pack("<H", len(db)))
            fh.write(db)
            fh.write(struct.pack("<QQ", arr.size, off))
        for (_, _, _, arr), off in zip(prepared, offsets):
            pad = off - fh.tell()
            if pad:
                fh.write(b"\x00" * pad)
            fh.write(arr.tobytes())


def open_container(
    path: str | os.PathLike,
    *,
    mmap: bool = False,
) -> tuple[int, int, list[tuple[str, int, np.ndarray]]]:
    """Open a v2 container; returns ``(n, m, [(name, kind, array), ...])``.

    With ``mmap=True`` every array is a read-only zero-copy
    :class:`np.memmap` view; otherwise arrays are private writable
    copies.  Raises :class:`ValueError` on a torn header (file ends
    inside the fixed header or the TOC) or a truncated block.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC2))
        if magic != MAGIC2:
            raise ValueError(f"{path}: not a v2 container (bad magic {magic!r})")
        head = fh.read(_V2_HEADER.size)
        if len(head) != _V2_HEADER.size:
            raise ValueError(f"{path}: torn header (file ends inside the fixed header)")
        n, m, num_arrays, toc_bytes = _V2_HEADER.unpack(head)
        if size < len(MAGIC2) + _V2_HEADER.size + toc_bytes:
            raise ValueError(f"{path}: torn header (file ends inside the TOC)")
        toc = fh.read(toc_bytes)

        entries: list[tuple[str, int, np.dtype, int, int]] = []
        pos = 0

        def take(k: int) -> bytes:
            nonlocal pos
            if pos + k > len(toc):
                raise ValueError(f"{path}: torn header (TOC entry overruns toc_bytes)")
            piece = toc[pos:pos + k]
            pos += k
            return piece

        for _ in range(num_arrays):
            (name_len,) = struct.unpack("<H", take(2))
            name = take(name_len).decode("utf-8")
            (kind,) = struct.unpack("<B", take(1))
            (dtype_len,) = struct.unpack("<H", take(2))
            dtype = np.dtype(take(dtype_len).decode("ascii"))
            count, offset = struct.unpack("<QQ", take(16))
            entries.append((name, kind, dtype, count, offset))

        out: list[tuple[str, int, np.ndarray]] = []
        for name, kind, dtype, count, offset in entries:
            nbytes = dtype.itemsize * count
            if offset + nbytes > size:
                raise ValueError(f"{path}: truncated block {name!r}")
            if count == 0:
                arr: np.ndarray = np.empty(0, dtype=dtype)
            elif mmap:
                arr = np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=(count,))
            else:
                fh.seek(offset)
                raw = fh.read(nbytes)
                if len(raw) != nbytes:
                    raise ValueError(f"{path}: truncated block {name!r}")
                arr = np.frombuffer(raw, dtype=dtype).copy()
            out.append((name, kind, arr))
    return int(n), int(m), out


# ---------------------------------------------------------------------------
# graph-level API
# ---------------------------------------------------------------------------

def save_graph(
    graph: DiGraph,
    path: str | os.PathLike,
    *,
    vertex_arrays: dict[str, np.ndarray] | None = None,
    edge_arrays: dict[str, np.ndarray] | None = None,
    version: int = 2,
) -> None:
    """Serialize ``graph`` (and optional value arrays) to ``path``."""
    vertex_arrays = vertex_arrays or {}
    edge_arrays = edge_arrays or {}
    for name, arr in vertex_arrays.items():
        if arr.shape != (graph.num_vertices,):
            raise ValueError(f"vertex array {name!r} has shape {arr.shape}")
    for name, arr in edge_arrays.items():
        if arr.shape != (graph.num_edges,):
            raise ValueError(f"edge array {name!r} has shape {arr.shape}")

    if version == 1:
        _save_graph_v1(graph, path, vertex_arrays, edge_arrays)
        return
    if version != 2:
        raise ValueError(f"unknown container version {version}")

    arrays: list[tuple[str, int, np.ndarray]] = [
        ("src", KIND_TOPO_SRC, graph.edge_src.astype("<i8")),
        ("dst", KIND_TOPO_DST, graph.edge_dst.astype("<i8")),
    ]
    for name, arr in vertex_arrays.items():
        arrays.append((name, KIND_VERTEX, arr))
    for name, arr in edge_arrays.items():
        arrays.append((name, KIND_EDGE, arr))
    write_container(
        path, num_vertices=graph.num_vertices, num_edges=graph.num_edges, arrays=arrays
    )


def load_graph(
    path: str | os.PathLike,
    *,
    mmap: bool = False,
) -> tuple[DiGraph, dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Load a graph container; returns ``(graph, vertex_arrays, edge_arrays)``.

    ``mmap=True`` (v2 containers only) returns the value arrays as
    read-only zero-copy ``np.memmap`` views of page-aligned blocks.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
    if magic == MAGIC:
        if mmap:
            raise ValueError(f"{path}: mmap=True requires a v2 (RPROGRF2) container")
        return _load_graph_v1(path)
    if magic != MAGIC2:
        raise ValueError(f"{path}: not a repro graph file (bad magic {magic!r})")

    n, m, blocks = open_container(path, mmap=mmap)
    src = dst = None
    vertex_arrays: dict[str, np.ndarray] = {}
    edge_arrays: dict[str, np.ndarray] = {}
    for name, kind, arr in blocks:
        if kind == KIND_TOPO_SRC:
            src = arr
        elif kind == KIND_TOPO_DST:
            dst = arr
        elif kind == KIND_VERTEX:
            if arr.size != n:
                raise ValueError(f"{path}: truncated array {name!r}")
            vertex_arrays[name] = arr
        elif kind == KIND_EDGE:
            if arr.size != m:
                raise ValueError(f"{path}: truncated array {name!r}")
            edge_arrays[name] = arr
        elif kind == KIND_META:
            continue  # interval indexes etc.; read via open_container
        else:
            raise ValueError(f"{path}: unknown array kind {kind}")
    if src is None or dst is None or src.size != m or dst.size != m:
        raise ValueError(f"{path}: truncated edge section")
    graph = DiGraph(n, src, dst)
    return graph, vertex_arrays, edge_arrays


# ---------------------------------------------------------------------------
# v1 (legacy)
# ---------------------------------------------------------------------------

def _save_graph_v1(graph, path, vertex_arrays, edge_arrays) -> None:
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(
            _V1_HEADER.pack(
                graph.num_vertices,
                graph.num_edges,
                len(vertex_arrays) + len(edge_arrays),
            )
        )
        fh.write(graph.edge_src.astype("<i8").tobytes())
        fh.write(graph.edge_dst.astype("<i8").tobytes())
        for kind, arrays in ((KIND_VERTEX, vertex_arrays), (KIND_EDGE, edge_arrays)):
            for name, arr in arrays.items():
                name_b = name.encode("utf-8")
                dtype_b = arr.dtype.str.encode("ascii")
                fh.write(struct.pack("<H", len(name_b)))
                fh.write(name_b)
                fh.write(struct.pack("<B", kind))
                fh.write(struct.pack("<H", len(dtype_b)))
                fh.write(dtype_b)
                fh.write(np.ascontiguousarray(arr).tobytes())


def _load_graph_v1(path):
    with open(path, "rb") as fh:
        fh.read(len(MAGIC))
        n, m, num_arrays = _V1_HEADER.unpack(fh.read(_V1_HEADER.size))
        src = np.frombuffer(fh.read(8 * m), dtype="<i8")
        dst = np.frombuffer(fh.read(8 * m), dtype="<i8")
        if src.size != m or dst.size != m:
            raise ValueError(f"{path}: truncated edge section")
        graph = DiGraph(n, src, dst)
        vertex_arrays: dict[str, np.ndarray] = {}
        edge_arrays: dict[str, np.ndarray] = {}
        for _ in range(num_arrays):
            (name_len,) = struct.unpack("<H", fh.read(2))
            name = fh.read(name_len).decode("utf-8")
            (kind,) = struct.unpack("<B", fh.read(1))
            (dtype_len,) = struct.unpack("<H", fh.read(2))
            dtype = np.dtype(fh.read(dtype_len).decode("ascii"))
            count = n if kind == KIND_VERTEX else m
            raw = fh.read(dtype.itemsize * count)
            arr = np.frombuffer(raw, dtype=dtype)
            if arr.size != count:
                raise ValueError(f"{path}: truncated array {name!r}")
            if kind == KIND_VERTEX:
                vertex_arrays[name] = arr.copy()
            elif kind == KIND_EDGE:
                edge_arrays[name] = arr.copy()
            else:
                raise ValueError(f"{path}: unknown array kind {kind}")
    return graph, vertex_arrays, edge_arrays
