"""Versioned barrier checkpoints: kill a run, resume it bit-identically.

A checkpoint captures everything an iteration barrier defines: the
committed vertex/edge value arrays, the active set scheduled for the
next iteration, the exact RNG generator states (fp-noise, jitter, torn,
whatever the engine draws from), and the conflict counters — so a
resumed run replays the remaining iterations with byte-for-byte the
same draws and commits as the uninterrupted run.

Layout (little-endian), mirroring :mod:`repro.storage.binfmt`::

    magic      8 bytes  b"RPROCKP1"
    version    u32      (currently 1)
    meta_len   u64
    meta       JSON     iteration, mode, program, n, m, config,
                        rng_states, conflicts, frontier_size,
                        arrays manifest [{name, kind, dtype}], extra
    frontier   F x i64
    arrays     raw data in manifest order

Writes go through a temp file + ``os.replace`` so a crash mid-write
leaves the previous checkpoint intact — the property the supervised
run loop depends on.  The data is fsynced before the rename and the
parent *directory* is fsynced after it, so once :func:`save_checkpoint`
returns, the rename itself is durable: a journal record appended
afterwards can never reference a checkpoint a power loss would take
back (the durable-ordering invariant the service's write-ahead job
journal relies on).
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
from dataclasses import dataclass, field as dc_field

import numpy as np

from ..engine.atomicity import AtomicityPolicy
from ..engine.config import EngineConfig
from ..engine.delaymodel import DelayModel
from ..engine.dispatch import DispatchPolicy
from ..robust.errors import CheckpointError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "fsync_directory",
    "save_checkpoint",
    "load_checkpoint",
    "config_to_dict",
    "config_from_dict",
]

CHECKPOINT_MAGIC = b"RPROCKP1"
CHECKPOINT_VERSION = 1


def fsync_directory(dirname: str) -> None:
    """Fsync a directory so a completed rename inside it is durable.

    ``os.replace`` makes the swap atomic but not persistent: until the
    directory entry itself reaches disk, a power loss can roll the
    rename back.  Callers that *journal* the existence of the renamed
    file (the service's WAL) must order this fsync before the journal
    append.  Filesystems that refuse ``fsync`` on a directory fd (some
    network mounts) are tolerated — atomicity still holds there, only
    the power-loss ordering guarantee degrades to the mount's own.
    """
    fd = os.open(dirname or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs-dependent
        pass
    finally:
        os.close(fd)

_KIND_VERTEX = 0
_KIND_EDGE = 1


def config_to_dict(config: EngineConfig) -> dict:
    """JSON-able dict of an :class:`EngineConfig` (enums → values)."""
    out: dict = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, DelayModel):
            value = {"intra": value.intra, "inter": value.inter,
                     "group_size": value.group_size}
        elif isinstance(value, (AtomicityPolicy, DispatchPolicy)):
            value = value.value
        out[f.name] = value
    return out


def config_from_dict(data: dict) -> EngineConfig:
    """Inverse of :func:`config_to_dict`."""
    kwargs = dict(data)
    if kwargs.get("delay_model") is not None:
        kwargs["delay_model"] = DelayModel(**kwargs["delay_model"])
    if "atomicity" in kwargs:
        kwargs["atomicity"] = AtomicityPolicy(kwargs["atomicity"])
    if "dispatch" in kwargs:
        kwargs["dispatch"] = DispatchPolicy(kwargs["dispatch"])
    known = {f.name for f in dataclasses.fields(EngineConfig)}
    return EngineConfig(**{k: v for k, v in kwargs.items() if k in known})


@dataclass
class Checkpoint:
    """One barrier's full restore point."""

    iteration: int  #: iterations completed; resume starts here
    mode: str
    program: str  #: program class name (sanity-checked on resume)
    config: EngineConfig
    frontier: np.ndarray  #: sorted vertex ids scheduled next
    vertex_arrays: dict[str, np.ndarray]
    edge_arrays: dict[str, np.ndarray]
    rng_states: dict[str, dict] = dc_field(default_factory=dict)
    conflicts: dict = dc_field(default_factory=dict)
    extra: dict = dc_field(default_factory=dict)


def save_checkpoint(path: str | os.PathLike, ckpt: Checkpoint) -> None:
    """Atomically write ``ckpt`` to ``path`` (temp file + rename)."""
    manifest = []
    blobs: list[bytes] = []
    for kind, arrays in ((_KIND_VERTEX, ckpt.vertex_arrays),
                         (_KIND_EDGE, ckpt.edge_arrays)):
        for name in sorted(arrays):
            arr = np.ascontiguousarray(arrays[name])
            manifest.append({"name": name, "kind": kind,
                             "dtype": arr.dtype.str, "size": int(arr.size)})
            blobs.append(arr.tobytes())

    frontier = np.ascontiguousarray(np.asarray(ckpt.frontier, dtype="<i8"))
    meta = {
        "iteration": int(ckpt.iteration),
        "mode": ckpt.mode,
        "program": ckpt.program,
        "config": config_to_dict(ckpt.config),
        "rng_states": ckpt.rng_states,
        "conflicts": ckpt.conflicts,
        "frontier_size": int(frontier.size),
        "arrays": manifest,
        "extra": ckpt.extra,
    }
    meta_b = json.dumps(meta, sort_keys=True).encode("utf-8")

    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(CHECKPOINT_MAGIC)
            fh.write(struct.pack("<IQ", CHECKPOINT_VERSION, len(meta_b)))
            fh.write(meta_b)
            fh.write(frontier.tobytes())
            for blob in blobs:
                fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_directory(os.path.dirname(path))
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc


def load_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(CHECKPOINT_MAGIC))
            if magic != CHECKPOINT_MAGIC:
                raise CheckpointError(
                    f"{path}: not a repro checkpoint (bad magic {magic!r})")
            version, meta_len = struct.unpack("<IQ", fh.read(12))
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"{path}: unsupported checkpoint version {version}")
            try:
                meta = json.loads(fh.read(meta_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointError(f"{path}: corrupt metadata: {exc}") from exc
            frontier = np.frombuffer(
                fh.read(8 * meta["frontier_size"]), dtype="<i8").copy()
            if frontier.size != meta["frontier_size"]:
                raise CheckpointError(f"{path}: truncated frontier section")
            vertex_arrays: dict[str, np.ndarray] = {}
            edge_arrays: dict[str, np.ndarray] = {}
            for entry in meta["arrays"]:
                dtype = np.dtype(entry["dtype"])
                raw = fh.read(dtype.itemsize * entry["size"])
                arr = np.frombuffer(raw, dtype=dtype)
                if arr.size != entry["size"]:
                    raise CheckpointError(
                        f"{path}: truncated array {entry['name']!r}")
                target = vertex_arrays if entry["kind"] == _KIND_VERTEX else edge_arrays
                target[entry["name"]] = arr.copy()
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint {path} does not exist") from exc
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc

    return Checkpoint(
        iteration=int(meta["iteration"]),
        mode=meta["mode"],
        program=meta["program"],
        config=config_from_dict(meta["config"]),
        frontier=frontier,
        vertex_arrays=vertex_arrays,
        edge_arrays=edge_arrays,
        rng_states=meta.get("rng_states", {}),
        conflicts=meta.get("conflicts", {}),
        extra=meta.get("extra", {}),
    )
